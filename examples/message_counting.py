"""The Section 4.1 message-counting argument, measured live.

Regenerates the paper's headline comparison: the synchronous solver of
Figure 6 costs ``2n + 6`` messages per processor per iteration on causal
memory versus "at least ``3n + 5``" on a comparable atomic DSM.  The
measured causal numbers land on the formula *exactly*; the atomic
baseline (which also pays invalidation acks and handshake-bit
invalidations the paper's bound omits) lands above its lower bound.

Also sweeps the polling period to show what the idealised ("oracle")
accounting hides: real busy-wait polling pays extra message pairs per
retry.

Run:
    python examples/message_counting.py
"""

from repro.analysis import (
    Table,
    atomic_messages_lower_bound,
    causal_messages_per_processor,
    crossover_analysis,
)
from repro.apps import LinearSystem, SynchronousSolver


def measured_table() -> None:
    table = Table(
        ["n", "causal", "2n+6", "atomic", "3n+5 (LB)", "central"],
        title="Measured messages per processor per iteration (oracle waits)",
    )
    for n in (2, 4, 8, 12, 16):
        system = LinearSystem.random(n, seed=9)
        row = [n]
        for protocol in ("causal", "atomic", "central"):
            result = SynchronousSolver(
                system, protocol=protocol, iterations=8, seed=1
            ).run()
            row.append(result.steady_messages_per_processor)
            if protocol == "causal":
                row.append(causal_messages_per_processor(n))
            elif protocol == "atomic":
                row.append(atomic_messages_lower_bound(n))
        table.add_row(*row)
    print(table.render())


def analytic_table() -> None:
    table = Table(
        ["n", "causal 2n+6", "atomic >= 3n+5", "savings", "ratio"],
        title="The paper's analytic comparison (no crossover: causal always wins)",
    )
    for row in crossover_analysis((2, 4, 8, 16, 32, 64, 128)):
        table.add_row(
            row.n, row.causal, row.atomic_bound, row.savings_vs_bound,
            row.ratio,
        )
    print(table.render())


def polling_sweep(n: int = 6) -> None:
    system = LinearSystem.random(n, seed=9)
    table = Table(
        ["wait mode", "msgs/proc/iter", "sim time"],
        title=f"What oracle accounting hides: polling overhead (n={n})",
    )
    oracle = SynchronousSolver(
        system, protocol="causal", iterations=8, seed=1, wait_mode="oracle"
    ).run()
    table.add_row("oracle (paper's count)", oracle.steady_messages_per_processor,
                  oracle.elapsed_sim_time)
    for period in (8.0, 4.0, 2.0, 1.0):
        result = SynchronousSolver(
            system, protocol="causal", iterations=8, seed=1,
            wait_mode="polling", poll_period=period,
        ).run()
        table.add_row(f"polling, period={period}",
                      result.steady_messages_per_processor,
                      result.elapsed_sim_time)
    print(table.render())
    print(
        "\nShorter polling periods finish sooner but burn extra "
        "discard+read pairs per retry; the paper's 2n+6 is the floor."
    )


def main() -> None:
    analytic_table()
    print()
    measured_table()
    print()
    polling_sweep()


if __name__ == "__main__":
    main()
