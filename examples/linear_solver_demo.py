"""The paper's Section 4.1 workload: the synchronous linear solver.

Runs the *same* Figure 6 program on causal DSM, the atomic (coherent)
DSM baseline and a central server, verifying the solution against
``numpy.linalg.solve`` and printing the measured messages per processor
per iteration next to the paper's analytic formulas (2n+6 vs >= 3n+5).
Then runs the asynchronous (chaotic relaxation) variant that drops the
handshakes entirely.

Run:
    python examples/linear_solver_demo.py [n]
"""

import sys

from repro.analysis import Table, atomic_messages_lower_bound, causal_messages_per_processor
from repro.apps import AsynchronousSolver, LinearSystem, SynchronousSolver


def main(n: int = 8) -> None:
    system = LinearSystem.random(n, seed=2026)
    print(f"solving a random strictly diagonally dominant {n}x{n} system\n")

    table = Table(
        ["memory", "max error", "msgs/proc/iter", "paper formula"],
        title="Figure 6 solver on three memory models (10 iterations)",
    )
    for protocol in ("causal", "atomic", "central"):
        result = SynchronousSolver(
            system, protocol=protocol, iterations=10, seed=1
        ).run()
        formula = {
            "causal": f"2n+6 = {causal_messages_per_processor(n)}",
            "atomic": f">= 3n+5 = {atomic_messages_lower_bound(n)}",
            "central": "(no caching at all)",
        }[protocol]
        table.add_row(
            protocol,
            result.max_error,
            result.steady_messages_per_processor,
            formula,
        )
    print(table.render())

    print("\nasynchronous variant (no handshakes, discard-driven refresh):")
    for refresh in (1, 4):
        result = AsynchronousSolver(
            system, iterations=60, refresh=refresh, seed=1
        ).run()
        print(
            f"  refresh={refresh}: max error {result.max_error:.2e}, "
            f"{result.steady_messages_per_processor:.1f} msgs/proc/iter"
        )

    print(
        "\nshape check: causal beats atomic by "
        f"~{atomic_messages_lower_bound(n) - causal_messages_per_processor(n)}"
        " messages/processor/iteration (growing with n), with identical "
        "numerical results — the paper's Section 4.1 claim."
    )


if __name__ == "__main__":
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    main(size)
