"""Page-granularity sharing — the paper's Section 3.2 enhancement.

The basic Figure 4 protocol shares single locations; "the basic
implementation algorithm can be improved in several ways.  These include
scaling the unit of sharing to a page ...".  This example runs an
array-scan workload at several page sizes and shows the trade:

* cold-fetch traffic falls as 2*ceil(N/P) — one miss pulls a whole page;
* invalidation coarsens — one stale element takes its whole page down.

Run:
    python examples/page_granularity.py
"""

from repro.analysis import Table
from repro.harness.experiments import exp_page_granularity
from repro.memory import Namespace, location_array
from repro.protocols.base import DSMCluster
from repro.sim.tasks import sleep


def demo_one_page_fetch() -> None:
    """Walk through one paged read miss, narrated."""
    base = Namespace.array_paged(2, page_size=4)
    namespace = Namespace(2, owner_fn=lambda unit: 0, unit_fn=base._unit_fn)
    cluster = DSMCluster(
        2, protocol="causal", namespace=namespace, trace_messages=True
    )

    def owner(api):
        for i in range(8):
            yield api.write(location_array("v", i), i * 10)

    def reader(api):
        yield sleep(cluster.sim, 5.0)
        values = []
        for i in range(8):
            values.append((yield api.read(location_array("v", i))))
        return values

    cluster.spawn(0, owner)
    task = cluster.spawn(1, reader)
    cluster.run()

    print("array of 8 locations, page size 4:")
    print(f"  values read : {task.result()}")
    print(f"  messages    : {cluster.network.trace.summarize()}")
    print("  (two misses fetched two pages; six reads were free)")


def main() -> None:
    demo_one_page_fetch()
    print()
    report = exp_page_granularity()
    print(report.text)


if __name__ == "__main__":
    main()
