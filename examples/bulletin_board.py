"""A causal bulletin board — reply threads that never dangle.

Three users post and reply over causal DSM.  The invariant causal
memory buys: a reader who sees an announcement always sees the post
body, and a reader who sees a reply always sees its parent — with no
synchronization anywhere.  The same program with unsafe write-behind
(experiment E13's hazard) produces dangling announcements.

Run:
    python examples/bulletin_board.py
"""

from repro.apps.bulletin import BulletinBoard
from repro.checker import check_causal
from repro.sim.tasks import sleep


def main() -> None:
    board = BulletinBoard(n=3, seed=11)
    sim = board.cluster.sim
    log = []

    def alice(api):
        root = yield from board.post(api, "Anyone read the new DSM paper?")
        log.append(("alice", f"posted {root}"))
        yield sleep(sim, 30.0)
        view = yield from board.read_board(api)
        log.append(("alice", f"final view: {len(view.posts)} posts, "
                             f"{len(view.dangling)} dangling"))

    def bob(api):
        yield sleep(sim, 10.0)
        view = yield from board.read_board(api)
        root = view.posts[0].post_id if view.posts else None
        reply = yield from board.post(
            api, "Yes — causal memory looks practical.", reply_to=root
        )
        log.append(("bob", f"replied {reply} -> {root}"))

    def carol(api):
        yield sleep(sim, 20.0)
        view = yield from board.read_board(api)
        log.append(("carol", f"sees {[p.post_id for p in view.posts]}"))
        missing = view.missing_parents()
        log.append(("carol", f"missing parents: {missing}"))
        assert not missing, "causal memory forbids orphaned replies"
        assert not view.dangling
        replies = [p for p in view.posts if p.reply_to]
        if replies:
            yield from board.post(
                api, "+1", reply_to=replies[0].post_id
            )
            log.append(("carol", "added +1"))

    board.spawn(0, alice, name="alice")
    board.spawn(1, bob, name="bob")
    board.spawn(2, carol, name="carol")
    board.run()

    print("event log:")
    for who, what in log:
        print(f"  {who:6s} {what}")
    print(f"\nmessages exchanged: {board.stats.total}")
    print(
        "recorded history satisfies causal memory: "
        f"{check_causal(board.history()).ok}"
    )
    print(
        "\nThe body-then-announce pattern is safe because causal memory "
        "orders the two writes for every observer; see experiment E13 "
        "(python -m repro write-behind) for what happens without it."
    )


if __name__ == "__main__":
    main()
