"""The distributed dictionary of Section 4.2, end to end.

Demonstrates:

1. synchronization-free inserts, lookups and deletes across processes;
2. the knowledge-monotonicity effect of causal memory (reading one item
   pulls the writer's whole causal past into the reader's view);
3. the stale-delete race and why the owner-favoured resolution policy
   is what keeps the dictionary correct (run with last-writer-wins to
   see the anomaly);
4. eventual convergence of all views after quiescence, via the paper's
   ``discard``.

Run:
    python examples/dictionary_demo.py
"""

from repro.apps import DictionaryCluster
from repro.checker import check_causal
from repro.harness.scenarios import run_dictionary_delete_race
from repro.protocols.policies import LastWriterWins, OwnerFavoured
from repro.sim.tasks import sleep


def main() -> None:
    dictionary = DictionaryCluster(n=3, m=4, seed=7)
    sim = dictionary.cluster.sim
    log = []

    def alice(api):
        yield from dictionary.insert(api, "apple")
        yield from dictionary.insert(api, "avocado")
        log.append(("alice", "inserted apple, avocado"))
        yield sleep(sim, 20.0)
        dictionary.refresh(api)
        view = yield from dictionary.view(api)
        log.append(("alice", f"final view: {sorted(view.items)}"))

    def bob(api):
        yield sleep(sim, 5.0)
        dictionary.refresh(api)
        found = yield from dictionary.lookup(api, "apple")
        log.append(("bob", f"sees apple: {found}"))
        yield from dictionary.insert(api, "banana")
        yield from dictionary.delete(api, "avocado")
        log.append(("bob", "inserted banana, deleted avocado"))
        yield sleep(sim, 20.0)
        dictionary.refresh(api)
        view = yield from dictionary.view(api)
        log.append(("bob", f"final view: {sorted(view.items)}"))

    def carol(api):
        yield sleep(sim, 12.0)
        dictionary.refresh(api)
        view = yield from dictionary.view(api)
        log.append(("carol", f"mid-run view: {sorted(view.items)}"))
        yield sleep(sim, 20.0)
        dictionary.refresh(api)
        view = yield from dictionary.view(api)
        log.append(("carol", f"final view: {sorted(view.items)}"))

    dictionary.spawn(0, alice, name="alice")
    dictionary.spawn(1, bob, name="bob")
    dictionary.spawn(2, carol, name="carol")
    dictionary.run()

    print("event log:")
    for who, what in log:
        print(f"  {who:6s} {what}")
    print(f"\nauthoritative contents: {sorted(dictionary.authoritative_items())}")
    print(f"messages exchanged: {dictionary.stats.total}")
    print(
        "recorded history satisfies causal memory: "
        f"{check_causal(dictionary.history()).ok}"
    )

    print("\n--- the stale-delete race (Section 4.2) ---")
    for policy in (OwnerFavoured(), LastWriterWins()):
        outcome = run_dictionary_delete_race(policy)
        verdict = (
            "newer insert SURVIVED (correct)"
            if outcome.new_item_survived
            else "newer insert DESTROYED (the anomaly)"
        )
        print(
            f"  {outcome.policy:15s} survivors={sorted(outcome.survivor_items)}"
            f"  -> {verdict}"
        )
    print(
        "\nThe paper's rule — 'writes by the owner are always favored when "
        "resolving concurrent writes' — is exactly what protects the newer "
        "insert from the stale delete."
    )


if __name__ == "__main__":
    main()
