"""The consistency zoo: the paper's figures under five checkers.

Every example execution from the paper (and a few classics) is run
through the causal-memory checker (Definition 2), the sequential-
consistency checker, the PRAM checker, the slow-memory checker (the
authors' prior model, the paper's citation [10]) and the per-location
coherence checker, mapping out where causal memory sits:

    SC  =>  causal  =>  PRAM  =>  slow     (each strictly)
    causal and coherence are incomparable

Run:
    python examples/consistency_zoo.py
"""

from repro.analysis import Table
from repro.checker import (
    History,
    check_causal,
    check_coherence,
    check_pram,
    check_sequential,
    check_slow,
)

EXECUTIONS = {
    "Figure 1 (causal relations)": """
        P1: w(x)1 w(y)2 r(y)2 r(x)1
        P2: w(z)1 r(y)2 r(x)1
    """,
    "Figure 2 (correct on causal)": """
        P1: w(x)2 w(y)2 w(y)3 r(z)5 w(x)4
        P2: w(x)1 r(y)3 w(x)7 w(z)5 r(x)4 r(x)9
        P3: r(z)5 w(x)9
    """,
    "Figure 3 (broadcast anomaly)": """
        P1: w(x)5 w(y)3
        P2: w(x)2 r(y)3 r(x)5 w(z)4
        P3: r(z)4 r(x)2
    """,
    "Figure 5 (weakly consistent)": """
        P1: r(y)0 w(x)1 r(y)0
        P2: r(x)0 w(y)1 r(x)0
    """,
    "causal, not coherent": """
        P1: w(x)1
        P2: w(x)2
        P3: r(x)1 r(x)2
        P4: r(x)2 r(x)1
    """,
    "coherent, not causal": """
        P1: w(x)1
        P2: r(x)1 w(y)2
        P3: r(y)2 r(x)0
    """,
    "PRAM, not causal": """
        P1: w(x)1
        P2: r(x)1 w(x)2
        P3: r(x)2 r(x)1
    """,
    "sequentially consistent": """
        P1: w(x)1 r(y)2
        P2: w(y)2 r(x)1
    """,
}


def main() -> None:
    table = Table(
        ["execution", "SC", "causal", "PRAM", "slow", "coherent"],
        title="The consistency zoo (checkers on the paper's executions)",
    )
    for name, text in EXECUTIONS.items():
        history = History.parse(text)
        table.add_row(
            name,
            "yes" if check_sequential(history, want_witness=False).ok else "no",
            "yes" if check_causal(history).ok else "no",
            "yes" if check_pram(history).ok else "no",
            "yes" if check_slow(history).ok else "no",
            "yes" if check_coherence(history).ok else "no",
        )
    print(table.render())
    print()
    print("Live-set detail for Figure 2 (matches the paper's worked example):")
    result = check_causal(History.parse(EXECUTIONS["Figure 2 (correct on causal)"]))
    for verdict in result.verdicts:
        print("  " + verdict.explain())


if __name__ == "__main__":
    main()
