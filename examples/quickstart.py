"""Quickstart: a tiny causal DSM program, checked against the paper's semantics.

Builds a three-node causal DSM (the Figure 4 owner protocol), runs a
producer/consumer/observer program, prints the message trace, and
verifies the recorded execution against Definition 2 with the causal
checker.

Run:
    python examples/quickstart.py
"""

from repro import DSMCluster, Namespace, check_causal


def producer(api):
    """Writes a config value, then a flag announcing it (after a pause)."""
    from repro.sim.tasks import sleep

    yield sleep(api.sim, 5.0)  # let the consumer cache the stale config
    yield api.write("config", 42)
    yield api.write("flag", True)
    return "producer done"


def consumer(api):
    """Caches the stale config, polls the flag, then re-reads config.

    This is the heart of causal memory: the write of ``config``
    causally precedes the write of ``flag``, so once this process reads
    the flag as set it can never read the stale config — the protocol's
    invalidation sweep evicted the cached copy the moment the flag
    value was introduced.
    """
    stale = yield api.read("config")  # reads the initial 0, now cached
    while True:
        flag = yield api.read("flag")
        if flag:
            break
        api.discard("flag")  # the paper's liveness mechanism
    config = yield api.read("config")
    assert config == 42, "causal memory forbids seeing the stale config"
    return (stale, config)


def observer(api):
    """Reads both locations with no synchronization at all."""
    config = yield api.read("config")
    flag = yield api.read("flag")
    return (config, flag)


def main() -> None:
    # The producer owns both locations; the others cache them.
    namespace = Namespace.explicit(3, {"config": 0, "flag": 0})
    cluster = DSMCluster(
        n_nodes=3, protocol="causal", seed=42,
        namespace=namespace, trace_messages=True,
    )
    tasks = [
        cluster.spawn(0, producer, name="producer"),
        cluster.spawn(1, consumer, name="consumer"),
        cluster.spawn(2, observer, name="observer"),
    ]
    cluster.run()

    print("results:")
    for task in tasks:
        print(f"  {task.name}: {task.result()!r}")

    print(f"\nnetwork: {cluster.network.trace.summarize()}")
    for record in cluster.network.trace:
        print(
            f"  t={record.sent_at:5.1f} -> {record.delivered_at:5.1f}  "
            f"{record.src} -> {record.dst}  {record.kind}"
        )

    result = check_causal(cluster.history())
    print(f"\nexecution satisfies causal memory (Definition 2): {result.ok}")
    print("\nper-read live sets:")
    for verdict in result.verdicts:
        print(f"  {verdict.explain()}")


if __name__ == "__main__":
    main()
