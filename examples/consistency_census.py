"""A census of random executions across the consistency hierarchy.

Generates many random histories (arbitrary reads-from assignments, so
most are inconsistent under the stronger models) and tabulates what
fraction each model admits — an empirical picture of how much freedom
each weakening buys:

    sequential  <  causal  <  PRAM  <  slow

The census also cross-checks the hierarchy: any history admitted by a
stronger model must be admitted by every weaker one.

Run:
    python examples/consistency_census.py [count]
"""

import sys

from repro.analysis import Table
from repro.checker import (
    check_causal,
    check_pram,
    check_sequential,
    check_slow,
    random_history,
)


def main(count: int = 300) -> None:
    admitted = {"sequential": 0, "causal": 0, "PRAM": 0, "slow": 0}
    hierarchy_violations = 0
    for seed in range(count):
        history = random_history(
            seed=seed, n_procs=3, n_locations=2, ops_per_proc=5,
            read_fraction=0.55,
        )
        sc = check_sequential(history, want_witness=False).ok
        causal = check_causal(history).ok
        pram = check_pram(history).ok
        slow = check_slow(history).ok
        admitted["sequential"] += sc
        admitted["causal"] += causal
        admitted["PRAM"] += pram
        admitted["slow"] += slow
        if (sc and not causal) or (causal and not pram) or (pram and not slow):
            hierarchy_violations += 1

    table = Table(
        ["model", "admitted", "fraction"],
        title=f"Consistency census over {count} random histories",
    )
    for model in ("sequential", "causal", "PRAM", "slow"):
        table.add_row(model, admitted[model], admitted[model] / count)
    print(table.render())
    print(f"\nhierarchy violations observed: {hierarchy_violations} "
          "(must be 0)")
    assert hierarchy_violations == 0
    print(
        "\nEach weakening admits strictly more executions — the freedom "
        "the owner protocol exploits to avoid global synchronization."
    )


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 300
    main(n)
