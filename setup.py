"""Legacy setup shim.

The environment this reproduction targets may lack the ``wheel`` package,
which PEP 660 editable installs require; with this shim ``pip install -e .``
falls back to the classic ``setup.py develop`` path.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
