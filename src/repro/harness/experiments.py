"""The experiment registry: every paper artefact, regenerated.

Each function ``exp_*`` reproduces one figure/table/claim (E-numbers per
DESIGN.md Section 5) and returns an :class:`ExperimentReport` holding a
human-readable text block, a machine-checkable ``data`` dict, and a
``passed`` flag asserting the paper's claim held in this run.  The
pytest benchmark suite, the CLI, and EXPERIMENTS.md generation all call
these same functions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Sequence

from repro.analysis.message_model import (
    atomic_messages_lower_bound,
    causal_messages_per_processor,
)
from repro.analysis.tables import Table
from repro.apps.async_solver import AsynchronousSolver
from repro.apps.dictionary import run_random_dictionary
from repro.apps.linear_solver import LinearSystem, SynchronousSolver
from repro.apps.workload import WorkloadConfig, run_random_execution
from repro.checker import (
    CausalOrder,
    History,
    check_causal,
    check_coherence,
    check_pram,
    check_sequential,
)
from repro.harness.scenarios import (
    run_dictionary_delete_race,
    run_discard_liveness,
    run_figure3_on_broadcast,
    run_figure5_on_causal,
    run_write_behind_race,
)
from repro.protocols.policies import LastWriterWins, OwnerFavoured

__all__ = ["ExperimentReport", "EXPERIMENTS", "run_experiment"]

FIGURE_1 = """
P1: w(x)1 w(y)2 r(y)2 r(x)1
P2: w(z)1 r(y)2 r(x)1
"""

FIGURE_2 = """
P1: w(x)2 w(y)2 w(y)3 r(z)5 w(x)4
P2: w(x)1 r(y)3 w(x)7 w(z)5 r(x)4 r(x)9
P3: r(z)5 w(x)9
"""

FIGURE_3 = """
P1: w(x)5 w(y)3
P2: w(x)2 r(y)3 r(x)5 w(z)4
P3: r(z)4 r(x)2
"""

FIGURE_5 = """
P1: r(y)0 w(x)1 r(y)0
P2: r(x)0 w(y)1 r(x)0
"""


@dataclass
class ExperimentReport:
    """One reproduced artefact: text for humans, data for assertions."""

    exp_id: str
    title: str
    text: str
    data: Dict[str, Any] = field(default_factory=dict)
    passed: bool = True

    def __str__(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        return f"[{self.exp_id}] {self.title} — {status}\n{self.text}"


# ----------------------------------------------------------------------
# E1: Figure 1 — example of causal relations
# ----------------------------------------------------------------------
def exp_fig1() -> ExperimentReport:
    """Causal relations of Figure 1: concurrency and transitivity."""
    history = History.parse(FIGURE_1)
    order = CausalOrder(history)
    w_x = history.op(0, 0)   # w1(x)1
    w_z = history.op(1, 0)   # w2(z)1
    r1_y = history.op(0, 2)  # r1(y)2 — confirms program order
    r2_y = history.op(1, 1)  # r2(y)2 — establishes causality
    r1_x = history.op(0, 3)  # r1(x)1
    concurrent = order.concurrent(w_x, w_z)
    transitive = order.precedes(w_x, r1_y)
    establishes = order.precedes(history.op(0, 1), r2_y)  # w(y)2 *-> r2(y)2
    confirms = order.precedes(w_x, r1_x)
    result = check_causal(history)
    passed = concurrent and transitive and establishes and confirms and result.ok
    lines = [
        history.to_text(),
        "",
        f"w1(x)1 concurrent with w2(z)1 : {concurrent}  (paper: concurrent)",
        f"w1(x)1 *-> r1(y)2            : {transitive}  (paper: holds)",
        f"r2(y)2 establishes causality from w1(y)2 : {establishes}",
        f"r1(x)1 confirms program-order causality  : {confirms}",
        f"execution is causal          : {result.ok}",
    ]
    return ExperimentReport(
        exp_id="E1",
        title="Figure 1 — example of causal relations",
        text="\n".join(lines),
        data={
            "concurrent": concurrent,
            "transitive": transitive,
            "causal": result.ok,
        },
        passed=passed,
    )


# ----------------------------------------------------------------------
# E2: Figure 2 — a correct execution on causal memory
# ----------------------------------------------------------------------
def exp_fig2() -> ExperimentReport:
    """Figure 2 verifies, with the paper's exact live sets."""
    history = History.parse(FIGURE_2)
    result = check_causal(history)
    alpha_z = result.alpha(0, 3)   # r1(z)5
    alpha_y = result.alpha(1, 1)   # r2(y)3
    alpha_x4 = result.alpha(1, 4)  # r2(x)4
    alpha_x9 = result.alpha(1, 5)  # r2(x)9
    expected = {
        "alpha(r1(z)5)": ({0, 5}, alpha_z),
        "alpha(r2(y)3)": ({0, 2, 3}, alpha_y),
        "alpha(r2(x)4)": ({4, 7, 9}, alpha_x4),
        "alpha(r2(x)9)": ({4, 9}, alpha_x9),
    }
    passed = result.ok and all(want == got for want, got in expected.values())
    lines = [history.to_text(), ""]
    for name, (want, got) in expected.items():
        lines.append(f"{name} = {sorted(got)}  (paper: {sorted(want)})")
    lines.append(f"execution is causal: {result.ok}")
    return ExperimentReport(
        exp_id="E2",
        title="Figure 2 — a correct execution on causal memory",
        text="\n".join(lines),
        data={name: got for name, (_, got) in expected.items()},
        passed=passed,
    )


# ----------------------------------------------------------------------
# E3: Figure 3 — causal broadcasting is not causal memory
# ----------------------------------------------------------------------
def exp_fig3() -> ExperimentReport:
    """The broadcast memory produces Figure 3; the checker rejects it."""
    parsed = History.parse(FIGURE_3)
    parsed_result = check_causal(parsed)
    produced = run_figure3_on_broadcast()
    produced_result = check_causal(produced)
    same_shape = produced.to_text() == parsed.to_text()
    passed = (not parsed_result.ok) and (not produced_result.ok) and same_shape
    lines = [
        "History as written in the paper:",
        parsed.to_text(),
        f"  causal checker verdict: {'causal' if parsed_result.ok else 'NOT causal'}",
        "",
        "History produced live by the ISIS-style causal-broadcast memory:",
        produced.to_text(),
        f"  identical to Figure 3: {same_shape}",
        f"  causal checker verdict: {'causal' if produced_result.ok else 'NOT causal'}",
        "",
        "Violating read analysis:",
    ]
    for verdict in produced_result.violations:
        lines.append("  " + verdict.explain())
    return ExperimentReport(
        exp_id="E3",
        title="Figure 3 — causal broadcasting is not causal memory",
        text="\n".join(lines),
        data={
            "parsed_causal": parsed_result.ok,
            "produced_causal": produced_result.ok,
            "same_shape": same_shape,
        },
        passed=passed,
    )


# ----------------------------------------------------------------------
# E4: Figure 4 — protocol safety on random executions
# ----------------------------------------------------------------------
def exp_fig4(seeds: Sequence[int] = range(20)) -> ExperimentReport:
    """Every random execution of the owner protocol is causal."""
    checked = 0
    violations = 0
    total_messages = 0
    for seed in seeds:
        outcome = run_random_execution(
            WorkloadConfig(n_nodes=4, n_locations=5, ops_per_proc=25, seed=seed)
        )
        checked += 1
        total_messages += outcome.total_messages
        if not check_causal(outcome.history).ok:
            violations += 1
    passed = violations == 0
    text = (
        f"{checked} seeded random executions (4 nodes, 25 ops each) run "
        f"through the Figure 4 protocol under jittered latency;\n"
        f"causal-memory violations: {violations}\n"
        f"total messages observed: {total_messages} "
        f"(every remote read/write is exactly one request/reply pair)"
    )
    return ExperimentReport(
        exp_id="E4",
        title="Figure 4 — owner protocol safety (fuzzed)",
        text=text,
        data={"checked": checked, "violations": violations},
        passed=passed,
    )


# ----------------------------------------------------------------------
# E5: Figure 5 — a weakly consistent execution
# ----------------------------------------------------------------------
def exp_fig5() -> ExperimentReport:
    """The protocol produces Figure 5; causal yes, SC no."""
    parsed = History.parse(FIGURE_5)
    produced = run_figure5_on_causal()
    same_shape = produced.to_text() == parsed.to_text()
    causal_ok = check_causal(produced).ok
    sc = check_sequential(produced, want_witness=False)
    pram_ok = check_pram(produced).ok
    coherent_ok = check_coherence(produced).ok
    passed = same_shape and causal_ok and not sc.ok
    lines = [
        "Owner protocol run with owner(x)=P1, owner(y)=P2:",
        produced.to_text(),
        f"  identical to Figure 5: {same_shape}",
        f"  causal memory: {causal_ok}   (paper: allowed)",
        f"  sequentially consistent: {sc.ok}   (paper: not allowed by "
        "strongly consistent memories)",
        f"  PRAM: {pram_ok}   coherent: {coherent_ok}",
    ]
    return ExperimentReport(
        exp_id="E5",
        title="Figure 5 — weakly consistent execution admitted by the protocol",
        text="\n".join(lines),
        data={
            "same_shape": same_shape,
            "causal": causal_ok,
            "sequential": sc.ok,
        },
        passed=passed,
    )


# ----------------------------------------------------------------------
# E6: the headline message-count comparison (Section 4.1)
# ----------------------------------------------------------------------
def exp_solver_table(
    ns: Sequence[int] = (2, 4, 8, 12),
    iterations: int = 8,
) -> ExperimentReport:
    """Measured messages/processor/iteration vs the paper's formulas."""
    table = Table(
        [
            "n",
            "causal (meas)",
            "2n+6 (paper)",
            "atomic (meas)",
            "3n+5 (paper LB)",
            "central (meas)",
            "savings",
        ],
        title="Synchronous solver: messages per processor per iteration",
    )
    rows: List[Dict[str, float]] = []
    shape_ok = True
    for n in ns:
        system = LinearSystem.random(n, seed=7)
        measured: Dict[str, float] = {}
        for protocol in ("causal", "atomic", "central"):
            result = SynchronousSolver(
                system, protocol=protocol, iterations=iterations, seed=1
            ).run()
            measured[protocol] = result.steady_messages_per_processor
        paper_causal = causal_messages_per_processor(n)
        paper_atomic = atomic_messages_lower_bound(n)
        exact_causal = abs(measured["causal"] - paper_causal) < 1e-9
        bound_holds = measured["atomic"] >= paper_atomic
        causal_wins = measured["causal"] < measured["atomic"] < measured["central"]
        shape_ok = shape_ok and exact_causal and bound_holds and causal_wins
        table.add_row(
            n,
            measured["causal"],
            paper_causal,
            measured["atomic"],
            paper_atomic,
            measured["central"],
            measured["atomic"] - measured["causal"],
        )
        rows.append(
            {
                "n": n,
                "causal": measured["causal"],
                "atomic": measured["atomic"],
                "central": measured["central"],
                "paper_causal": paper_causal,
                "paper_atomic": paper_atomic,
            }
        )
    gaps = [row["atomic"] - row["causal"] for row in rows]
    gap_grows = all(later > earlier for earlier, later in zip(gaps, gaps[1:]))
    lines = [
        table.render(),
        "",
        "Shape checks: causal measured == 2n+6 exactly (oracle polling); "
        "atomic measured >= 3n+5; causal < atomic < central at every n; "
        f"gap grows with n: {gap_grows}.",
    ]
    return ExperimentReport(
        exp_id="E6",
        title="Section 4.1 message-count comparison (the headline table)",
        text="\n".join(lines),
        data={"rows": rows, "gap_grows": gap_grows},
        passed=shape_ok and gap_grows,
    )


# ----------------------------------------------------------------------
# E7: solver correctness on every memory model
# ----------------------------------------------------------------------
def exp_solver_convergence(
    n: int = 6, iterations: int = 25
) -> ExperimentReport:
    """The unchanged program converges on causal, atomic and central."""
    system = LinearSystem.random(n, seed=11)
    table = Table(
        ["protocol", "max |x - x*|", "residual", "messages"],
        title=f"Solver convergence, n={n}, {iterations} iterations",
    )
    errors: Dict[str, float] = {}
    for protocol in ("causal", "atomic", "central"):
        result = SynchronousSolver(
            system, protocol=protocol, iterations=iterations, seed=3
        ).run()
        errors[protocol] = result.max_error
        table.add_row(
            protocol, result.max_error, result.residual, result.total_messages
        )
    tolerance = 1e-6
    passed = all(err < tolerance for err in errors.values())
    agree = (
        max(errors.values()) - min(errors.values()) < tolerance
    )
    text = table.render() + (
        f"\n\nAll protocols reach max error < {tolerance:g}: {passed}; "
        f"solutions agree across memories: {agree} "
        "(the paper's 'similar code may be used ... on both atomic and "
        "causal memories')."
    )
    return ExperimentReport(
        exp_id="E7",
        title="Solver correctness on causal vs strongly consistent memory",
        text=text,
        data={"errors": errors},
        passed=passed and agree,
    )


# ----------------------------------------------------------------------
# E8: read-only inputs ablation (footnote 2)
# ----------------------------------------------------------------------
def exp_ablation_readonly(n: int = 6, iterations: int = 8) -> ExperimentReport:
    """Without the A/b exemption, sweeps evict the inputs every phase."""
    system = LinearSystem.random(n, seed=5)
    with_exemption = SynchronousSolver(
        system, protocol="causal", iterations=iterations, seed=1,
        read_only_inputs=True,
    ).run()
    without_exemption = SynchronousSolver(
        system, protocol="causal", iterations=iterations, seed=1,
        read_only_inputs=False,
    ).run()
    expected_refetch = 2 * (n + 1)  # n row entries + b_i, 2 messages each
    measured_extra = (
        without_exemption.steady_messages_per_processor
        - with_exemption.steady_messages_per_processor
    )
    passed = (
        with_exemption.steady_messages_per_processor
        == causal_messages_per_processor(n)
        and measured_extra >= expected_refetch - 1e-9
    )
    table = Table(
        ["configuration", "msgs/proc/iter", "max error"],
        title=f"Read-only input exemption ablation, n={n}",
    )
    table.add_row(
        "A,b read-only (paper footnote 2)",
        with_exemption.steady_messages_per_processor,
        with_exemption.max_error,
    )
    table.add_row(
        "no exemption (ablation)",
        without_exemption.steady_messages_per_processor,
        without_exemption.max_error,
    )
    text = table.render() + (
        f"\n\nEvicting the constant inputs costs ~{expected_refetch} extra "
        f"messages/processor/iteration (measured {measured_extra:.1f})."
    )
    return ExperimentReport(
        exp_id="E8",
        title="Ablation: avoiding invalidation of the constant inputs A, b",
        text=text,
        data={
            "with": with_exemption.steady_messages_per_processor,
            "without": without_exemption.steady_messages_per_processor,
        },
        passed=passed,
    )


# ----------------------------------------------------------------------
# E9: asynchronous solver
# ----------------------------------------------------------------------
def exp_async_solver(n: int = 6) -> ExperimentReport:
    """Chaotic relaxation: no synchronization, fewer messages."""
    system = LinearSystem.random(n, seed=13)
    sync = SynchronousSolver(
        system, protocol="causal", iterations=20, seed=2
    ).run()
    async_fresh = AsynchronousSolver(
        system, iterations=40, refresh=1, seed=2
    ).run()
    # Lazy refresh iterates on stale values between refreshes, so it
    # needs more iterations to reach the same accuracy — that is the
    # messages-versus-staleness trade-off this experiment quantifies.
    async_lazy = AsynchronousSolver(
        system, iterations=80, refresh=4, seed=2
    ).run()
    table = Table(
        ["solver", "iterations", "max error", "msgs/proc/iter"],
        title=f"Synchronous vs asynchronous solver, n={n}",
    )
    table.add_row("synchronous (Fig. 6)", sync.iterations, sync.max_error,
                  sync.steady_messages_per_processor)
    table.add_row("async, refresh=1", async_fresh.iterations,
                  async_fresh.max_error,
                  async_fresh.steady_messages_per_processor)
    table.add_row("async, refresh=4", async_lazy.iterations,
                  async_lazy.max_error,
                  async_lazy.steady_messages_per_processor)
    tolerance = 1e-6
    passed = (
        async_fresh.max_error < tolerance
        and async_lazy.max_error < tolerance
        and async_fresh.steady_messages_per_processor
        < sync.steady_messages_per_processor
        and async_lazy.steady_messages_per_processor
        < async_fresh.steady_messages_per_processor
    )
    text = table.render() + (
        "\n\nThe asynchronous variant eliminates the 8 handshake messages "
        "per iteration; lazier refresh trades messages for staleness "
        "(Chazan–Miranker guarantees convergence either way)."
    )
    return ExperimentReport(
        exp_id="E9",
        title="Asynchronous solver (the TR [4] extension)",
        text=text,
        data={
            "sync_msgs": sync.steady_messages_per_processor,
            "async_msgs": async_fresh.steady_messages_per_processor,
            "async_error": async_fresh.max_error,
        },
        passed=passed,
    )


# ----------------------------------------------------------------------
# E10: the distributed dictionary
# ----------------------------------------------------------------------
def exp_dictionary() -> ExperimentReport:
    """Random dictionary runs converge; the delete race resolves safely."""
    random_run = run_random_dictionary(n=4, m=6, ops_per_proc=12, seed=3)
    race_owner = run_dictionary_delete_race(OwnerFavoured())
    race_lww = run_dictionary_delete_race(LastWriterWins())
    passed = (
        random_run.converged
        and bool(random_run.history_is_causal)
        and race_owner.new_item_survived
        and race_owner.delete_was_rejected
        and not race_lww.new_item_survived
    )
    lines = [
        "Random workload (4 processes, 12 ops each, owner-favoured):",
        f"  inserts={random_run.inserts} deletes={random_run.deletes} "
        f"lookups={random_run.lookups} messages={random_run.total_messages}",
        f"  all views converged to owner state: {random_run.converged}",
        f"  recorded history is causal: {random_run.history_is_causal}",
        "",
        "Stale-delete race (Section 4.2):",
        f"  owner-favoured: survivors={sorted(race_owner.survivor_items)} "
        f"(new item survived: {race_owner.new_item_survived}, "
        f"stale delete rejected: {race_owner.delete_was_rejected})",
        f"  last-writer-wins: survivors={sorted(race_lww.survivor_items)} "
        f"(anomaly: the stale delete destroyed the newer insert)",
    ]
    return ExperimentReport(
        exp_id="E10",
        title="Section 4.2 — the distributed dictionary",
        text="\n".join(lines),
        data={
            "converged": random_run.converged,
            "owner_favoured_safe": race_owner.new_item_survived,
            "lww_anomaly": not race_lww.new_item_survived,
        },
        passed=passed,
    )


# ----------------------------------------------------------------------
# E11: discard provides liveness
# ----------------------------------------------------------------------
def exp_discard_liveness() -> ExperimentReport:
    """Without discard, cached readers never see new values."""
    frozen = run_discard_liveness(with_discard=False)
    live = run_discard_liveness(with_discard=True)
    passed = (
        frozen.messages_after_warmup == 0
        and not frozen.observed_fresh_values
        and live.observed_fresh_values
        and live.messages_after_warmup > 0
    )
    lines = [
        "Two nodes, each owning one location, reading the other's:",
        f"  without discard: {frozen.messages_after_warmup} messages after "
        f"warm-up; final observed {frozen.final_observed} vs authoritative "
        f"{frozen.final_authoritative}  (frozen views, zero communication)",
        f"  with discard:    {live.messages_after_warmup} messages after "
        f"warm-up; final observed {live.final_observed} vs authoritative "
        f"{live.final_authoritative}  (fresh views every round)",
    ]
    return ExperimentReport(
        exp_id="E11",
        title="Section 3.1 — discard ensures eventual communication",
        text="\n".join(lines),
        data={
            "frozen_messages": frozen.messages_after_warmup,
            "live_fresh": live.observed_fresh_values,
        },
        passed=passed,
    )


# ----------------------------------------------------------------------
# E12: no-cache reads give atomic (strong) correctness
# ----------------------------------------------------------------------
def exp_nocache_atomicity(seeds: Sequence[int] = range(12)) -> ExperimentReport:
    """Section 3.2: a request to the owner on every read is atomic."""
    failures = 0
    for seed in seeds:
        outcome = run_random_execution(
            WorkloadConfig(
                n_nodes=3, n_locations=3, ops_per_proc=14,
                seed=seed, no_cache=True,
            )
        )
        if not check_sequential(outcome.history, want_witness=False).ok:
            failures += 1
    passed = failures == 0
    text = (
        f"{len(list(seeds))} random executions with caching disabled "
        f"(every read is a request to the owner);\n"
        f"sequential-consistency violations: {failures}\n"
        "(paper Section 3.2: 'this strategy results in a memory that "
        "satisfies atomic correctness, not just causal correctness')"
    )
    return ExperimentReport(
        exp_id="E12",
        title="Section 3.2 — no-cache reads yield strong consistency",
        text=text,
        data={"failures": failures},
        passed=passed,
    )


# ----------------------------------------------------------------------
# E13: why writes block (the "reducing blocking" enhancement, done wrong)
# ----------------------------------------------------------------------
def exp_write_behind() -> ExperimentReport:
    """Non-blocking writes break causal memory; blocking ones don't."""
    safe = run_write_behind_race(unsafe=False)
    unsafe = run_write_behind_race(unsafe=True)
    safe_result = check_causal(safe)
    unsafe_result = check_causal(unsafe)
    passed = safe_result.ok and not unsafe_result.ok
    lines = [
        "Writer pipeline: w(x)1 to a slow owner, then w(y)2 to a fast one;",
        "an observer reads y's new value and then x.",
        "",
        "Blocking writes (Figure 4):",
        safe.to_text(),
        f"  causal: {safe_result.ok}",
        "",
        "Write-behind (unsafe 'reduced blocking'):",
        unsafe.to_text(),
        f"  causal: {unsafe_result.ok}",
    ]
    for verdict in unsafe_result.violations:
        lines.append("  " + verdict.explain())
    lines.append(
        "\nThe later write overtook the earlier in-flight one, so the "
        "observer saw w(y)2 without w(x)1 — exactly the hazard that "
        "makes Figure 4's writes block until certification."
    )
    return ExperimentReport(
        exp_id="E13",
        title="Why writes block: the write-behind hazard",
        text="\n".join(lines),
        data={"safe": safe_result.ok, "unsafe": unsafe_result.ok},
        passed=passed,
    )


# ----------------------------------------------------------------------
# E14: page granularity (the "scaling the unit of sharing" enhancement)
# ----------------------------------------------------------------------
def exp_page_granularity(
    array_len: int = 32, page_sizes: Sequence[int] = (1, 2, 4, 8, 16)
) -> ExperimentReport:
    """Larger pages amortize cold misses: 2*ceil(N/P) messages a scan."""
    from repro.memory import Namespace, location_array
    from repro.protocols.base import DSMCluster
    from repro.sim.tasks import sleep

    table = Table(
        ["page size", "cold-scan msgs", "model 2*ceil(N/P)",
         "rescan msgs", "invalidated"],
        title=f"Page-granularity sweep, array of {array_len} locations",
    )
    passed = True
    rows = []
    for page_size in page_sizes:
        base = Namespace.array_paged(2, page_size=page_size)
        namespace = Namespace(
            2, owner_fn=lambda unit: 0, unit_fn=base._unit_fn
        )
        cluster = DSMCluster(
            2, protocol="causal", namespace=namespace, record_history=False
        )
        marks: Dict[str, int] = {}

        def owner(api):
            for i in range(array_len):
                yield api.write(location_array("v", i), i)
            yield sleep(cluster.sim, 100.0)
            yield api.write(location_array("v", 0), 999)
            yield api.write("flag", 1)

        def reader(api):
            yield sleep(cluster.sim, 50.0)
            before = cluster.stats.total
            for i in range(array_len):
                yield api.read(location_array("v", i))
            marks["cold"] = cluster.stats.total - before
            yield sleep(cluster.sim, 100.0)
            api.discard("flag")
            yield api.read("flag")  # introduces the update, sweeps pages
            marks["invalidated"] = api.store.invalidation_count
            before = cluster.stats.total
            for i in range(array_len):
                yield api.read(location_array("v", i))
            marks["rescan"] = cluster.stats.total - before

        cluster.spawn(0, owner)
        cluster.spawn(1, reader)
        cluster.run()
        import math

        model = 2 * math.ceil(array_len / page_size)
        passed = passed and marks["cold"] == model and marks["rescan"] == model
        table.add_row(
            page_size, marks["cold"], model, marks["rescan"],
            marks["invalidated"],
        )
        rows.append(dict(page_size=page_size, **marks))
    text = table.render() + (
        "\n\nFetch traffic falls as 2*ceil(N/P) with page size P (the "
        "paper's 'scaling the unit of sharing to a page'); the "
        "invalidation sweep still conservatively drops every stale page."
    )
    return ExperimentReport(
        exp_id="E14",
        title="Page granularity: fetch amortization",
        text=text,
        data={"rows": rows},
        passed=passed,
    )


# ----------------------------------------------------------------------
# E15: caching pays — locality vs hit rate vs traffic
# ----------------------------------------------------------------------
def exp_locality(ops: int = 120) -> ExperimentReport:
    """Skewed access patterns raise hit rates and cut message traffic."""
    from repro.protocols.base import DSMCluster

    table = Table(
        ["workload", "read hit rate", "messages"],
        title=f"Access locality vs caching, 3 nodes x {ops} reads",
    )
    results: Dict[str, Dict[str, float]] = {}
    for label, hot_fraction in (("uniform", 0.0), ("80/20", 0.8),
                                ("95/5", 0.95)):
        cluster = DSMCluster(3, protocol="causal", record_history=False,
                             seed=17)
        n_locations = 20
        hot_set = max(1, n_locations // 10)

        def reader(api, me):
            rng = cluster.sim.derived_rng(f"loc-{me}-{label}")
            for _ in range(ops):
                if rng.random() < hot_fraction:
                    index = rng.randrange(hot_set)
                else:
                    index = rng.randrange(n_locations)
                yield api.read(f"shared{index}")

        for node in range(3):
            cluster.spawn(node, reader, node)
        cluster.run()
        reads = sum(n.stats.reads for n in cluster.nodes)
        hits = sum(n.stats.local_read_hits for n in cluster.nodes)
        hit_rate = hits / reads if reads else 0.0
        results[label] = {
            "hit_rate": hit_rate, "messages": cluster.stats.total,
        }
        table.add_row(label, hit_rate, cluster.stats.total)
    passed = (
        results["95/5"]["hit_rate"] > results["80/20"]["hit_rate"]
        > results["uniform"]["hit_rate"]
        and results["95/5"]["messages"] < results["uniform"]["messages"]
    )
    text = table.render() + (
        "\n\nCaching is what the protocol buys with weak consistency: "
        "the more skewed the access pattern, the more reads are free — "
        "a coherent DSM pays invalidations to keep the same caches."
    )
    return ExperimentReport(
        exp_id="E15",
        title="Locality ablation: what the cache is worth",
        text=text,
        data=results,
        passed=passed,
    )


# ----------------------------------------------------------------------
# E16: blocking time vs latency (the intro's motivation)
# ----------------------------------------------------------------------
def exp_latency_blocking(
    latencies: Sequence[float] = (1.0, 4.0, 16.0)
) -> ExperimentReport:
    """Causal memory blocks less than atomic as latency grows."""
    from repro.sim.latency import ConstantLatency

    table = Table(
        ["latency", "causal blocked", "atomic blocked", "ratio"],
        title="Total processor blocked time, solver n=4, 6 iterations",
    )
    passed = True
    ratios = []
    for latency in latencies:
        blocked: Dict[str, float] = {}
        for protocol in ("causal", "atomic"):
            system = LinearSystem.random(4, seed=7)
            solver = SynchronousSolver(
                system, protocol=protocol, iterations=6, seed=1,
                latency=ConstantLatency(latency),
            )
            solver.run()
            blocked[protocol] = sum(
                node.stats.blocked_time for node in solver.cluster.nodes
            )
        ratio = blocked["atomic"] / blocked["causal"]
        ratios.append(ratio)
        passed = passed and blocked["atomic"] > blocked["causal"]
        table.add_row(latency, blocked["causal"], blocked["atomic"], ratio)
    text = table.render() + (
        "\n\nEvery message the atomic protocol adds is a round trip some "
        "processor waits for; the blocking gap scales with latency — "
        "the paper's motivation that coherence protocols 'perform poorly "
        "in high latency distributed systems'."
    )
    return ExperimentReport(
        exp_id="E16",
        title="Blocking time vs network latency",
        text=text,
        data={"ratios": ratios},
        passed=passed,
    )


# ----------------------------------------------------------------------
# E17: ownership migration (Li's actual dynamic distributed manager)
# ----------------------------------------------------------------------
def exp_ownership_migration(rounds: int = 12) -> ExperimentReport:
    """Migrating ownership rewards write locality; causal still wins."""
    from repro.memory import Namespace
    from repro.protocols.base import DSMCluster

    table = Table(
        ["protocol", "write-local msgs", "ping-pong msgs"],
        title=f"Write locality: {rounds} writes per pattern",
    )
    results: Dict[str, Dict[str, int]] = {}
    for protocol in ("atomic", "li", "causal"):
        measured: Dict[str, int] = {}
        # Pattern 1: one remote node hammers one location.
        cluster = DSMCluster(
            2, protocol=protocol,
            namespace=Namespace.explicit(2, {"x": 0}),
        )

        def hammer(api):
            for i in range(rounds):
                yield api.write("x", i)

        cluster.spawn(1, hammer)
        cluster.run()
        measured["local"] = cluster.stats.total
        # Pattern 2: two nodes alternate writes (ping-pong).
        cluster = DSMCluster(
            3, protocol=protocol,
            namespace=Namespace.explicit(3, {"x": 0}),
        )

        def ping(api, me):
            from repro.sim.tasks import sleep

            for i in range(rounds // 2):
                yield api.write("x", (me, i))
                yield sleep(cluster.sim, 10.0)

        cluster.spawn(1, ping, 1)
        cluster.spawn(2, ping, 2)
        cluster.run()
        measured["pingpong"] = cluster.stats.total
        results[protocol] = measured
        table.add_row(protocol, measured["local"], measured["pingpong"])
    passed = (
        # Migration wins the write-local pattern outright...
        results["li"]["local"] < results["atomic"]["local"]
        and results["li"]["local"] < results["causal"]["local"]
        # ...but thrashes under ping-pong sharing, where causal stays
        # cheapest and even the fixed-owner atomic baseline beats it.
        and results["causal"]["pingpong"] < results["li"]["pingpong"]
        and results["causal"]["pingpong"] <= results["atomic"]["pingpong"]
    )
    text = table.render() + (
        "\n\nLi's dynamic manager amortizes repeated writes by migrating "
        "ownership to the writer (one transfer, then locality) and wins "
        "the write-local pattern; under ping-pong sharing ownership "
        "thrashes (grant + invalidation per write) and the causal "
        "protocol's two-message certified writes stay cheapest — the "
        "trade-off behind the paper's owner-based comparison."
    )
    return ExperimentReport(
        exp_id="E17",
        title="Ownership migration (Li-Hudak dynamic manager) vs causal",
        text=text,
        data=results,
        passed=passed,
    )


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
EXPERIMENTS: Dict[str, Callable[[], ExperimentReport]] = {
    "fig1": exp_fig1,
    "fig2": exp_fig2,
    "fig3": exp_fig3,
    "fig4": exp_fig4,
    "fig5": exp_fig5,
    "solver-table": exp_solver_table,
    "solver-convergence": exp_solver_convergence,
    "ablation-readonly": exp_ablation_readonly,
    "async-solver": exp_async_solver,
    "dictionary": exp_dictionary,
    "discard-liveness": exp_discard_liveness,
    "nocache-atomicity": exp_nocache_atomicity,
    "write-behind": exp_write_behind,
    "page-granularity": exp_page_granularity,
    "locality": exp_locality,
    "latency-blocking": exp_latency_blocking,
    "ownership-migration": exp_ownership_migration,
}


#: What the paper reports for each experiment, quoted for EXPERIMENTS.md.
PAPER_CLAIMS: Dict[str, str] = {
    "fig1": "w(x)1 and w(z)1 are concurrent; w(x)1 *-> r1(y)2; reads may "
            "establish or merely confirm causality.",
    "fig2": "The execution is correct on causal memory, with "
            "alpha(r1(z)5)={0,5}, alpha(r2(y)3)={0,2,3}, "
            "alpha(r2(x)4)={4,7,9}; after r(x)4, P2 may read only 4 or 9.",
    "fig3": "The execution 'is not allowed by causal memory but is "
            "possible when writes are treated as causal broadcasts' "
            "(2 is not in alpha(r(x)2)).",
    "fig4": "The owner protocol implements causal memory (proof in the "
            "companion TR GIT-CC-90/49).",
    "fig5": "The weakly consistent execution 'is allowed both by causal "
            "memory correctness and by our implementation if P1 is the "
            "owner of x and P2 is the owner of y' — and by no strongly "
            "consistent memory.",
    "solver-table": "Causal memory: 2n+6 messages per processor per "
                    "iteration; atomic memory: at least 3n+5 — 'a "
                    "substantial savings'.",
    "solver-convergence": "The Figure 6 code 'correctly solves the system "
                          "Ax = b on both atomic and causal memory'.",
    "ablation-readonly": "Footnote 2: 'a simple enhancement to the basic "
                         "algorithm can be used to avoid invalidations of "
                         "A and b'.",
    "async-solver": "'It is possible to eliminate the synchronization "
                    "entirely by using an asynchronous algorithm [4].'",
    "dictionary": "The dictionary needs no synchronization; 'writes by "
                  "the owner are always favored when resolving concurrent "
                  "writes', so a stale concurrent delete is rejected and "
                  "'the dictionary remains correct'.",
    "discard-liveness": "'Without discard two processors that initially "
                        "cache all locations and only write locations "
                        "owned by them need never communicate.'",
    "nocache-atomicity": "'A simple strategy ... is to force a request to "
                         "the owner on every read.  This strategy results "
                         "in a memory that satisfies atomic correctness.'",
    "write-behind": "Section 3.2 lists 'reducing the blocking of "
                    "processors' among possible improvements [4]; this "
                    "experiment shows the naive version (write-behind) is "
                    "unsafe, i.e. why Figure 4's writes block.",
    "page-granularity": "Section 3.2: improvements include 'scaling the "
                        "unit of sharing to a page'.",
    "locality": "Section 3.2: 'we lose all the benefits of caching' "
                "without cached reads — this quantifies those benefits.",
    "latency-blocking": "Introduction: coherence algorithms 'perform "
                        "poorly in high latency distributed systems'; "
                        "weakly consistent memories suit high latencies.",
    "ownership-migration": "Section 4.1 cites Li [15] as 'a "
                           "representative atomic DSM'; this implements "
                           "Li's actual dynamic distributed manager "
                           "(migrating ownership) and maps where it wins "
                           "and loses against the causal protocol.",
}


def generate_markdown_report() -> str:
    """Run every experiment and render EXPERIMENTS.md's body."""
    lines = [
        "# EXPERIMENTS — paper claims vs. measured reproduction",
        "",
        "Generated by `python -m repro report`.  Every experiment re-runs",
        "the full simulation/checker pipeline; the PASS flags are asserted",
        "by `tests/test_experiments.py` and `pytest benchmarks/`.",
        "",
    ]
    reports = [(name, EXPERIMENTS[name]()) for name in EXPERIMENTS]
    reports.sort(key=lambda pair: int(pair[1].exp_id.lstrip("E")))
    for name, report in reports:
        status = "PASS" if report.passed else "FAIL"
        lines.append(f"## {report.exp_id} ({name}) — {report.title}")
        lines.append("")
        lines.append(f"*Status:* **{status}**")
        lines.append("")
        claim = PAPER_CLAIMS.get(name)
        if claim:
            lines.append(f"*Paper claim:* {claim}")
            lines.append("")
        lines.append("*Measured in this reproduction:*")
        lines.append("")
        lines.append("```")
        lines.append(report.text)
        lines.append("```")
        lines.append("")
    return "\n".join(lines)


def run_experiment(name: str) -> ExperimentReport:
    """Run one experiment by registry name."""
    try:
        factory = EXPERIMENTS[name]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(f"unknown experiment {name!r}; known: {known}") from None
    return factory()
