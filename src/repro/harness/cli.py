"""Command-line interface: ``repro`` / ``python -m repro``.

Subcommands map one-to-one onto the experiment registry, plus ``all`` to
run the full reproduction and ``list`` to enumerate experiments.

Examples
--------
::

    repro list
    repro fig2
    repro solver-table
    repro all
    repro trace --scenario fig4 --format chrome -o fig4.trace.json
    repro bench --profile --label pr8
    repro top --scenario workload --ops 100
    repro live --scenario fig3 --flight-recorder fig3.cex.json
    repro report --bench
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.harness.experiments import EXPERIMENTS, run_experiment

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction harness for 'Implementing and Programming Causal "
            "Distributed Shared Memory' (ICDCS 1991).  Each subcommand "
            "regenerates one figure/table of the paper."
        ),
    )
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("list", help="list available experiments")
    sub.add_parser(
        "explore",
        help="explore protocol schedule spaces (forwards to repro.mc)",
        add_help=False,
    )
    sub.add_parser(
        "bench",
        help="benchmark the simulation substrate (forwards to repro.bench; "
        "see repro bench --help, notably --profile and --smoke)",
        add_help=False,
    )
    all_parser = sub.add_parser("all", help="run every experiment")
    all_parser.add_argument(
        "--save",
        metavar="PATH",
        default=None,
        help="write a JSON results store (see repro.analysis.results)",
    )
    all_parser.add_argument(
        "--baseline",
        metavar="PATH",
        default=None,
        help="compare against a previously saved results store",
    )
    report = sub.add_parser(
        "report",
        help="run every experiment and print EXPERIMENTS.md markdown "
        "(--bench: render the benchmark trajectory instead)",
    )
    report.add_argument(
        "--bench",
        metavar="PATH",
        nargs="?",
        const="BENCH_substrate.json",
        default=None,
        help="render the BENCH_substrate.json trajectory (any schema "
        "v1-v8) as a markdown table across appended runs instead of "
        "running the experiments (default path: BENCH_substrate.json)",
    )
    trace = sub.add_parser(
        "trace",
        help="run a traced scenario and export its causal trace",
    )
    trace.add_argument(
        "--scenario",
        default="fig4",
        choices=["fig3", "fig4"],
        help="which paper scenario to run with tracing on (default: fig4)",
    )
    trace.add_argument(
        "--format",
        default="chrome",
        choices=["chrome", "dot", "json", "timeline"],
        help=(
            "chrome: Chrome trace_event JSON (chrome://tracing, Perfetto); "
            "dot: causal DAG as Graphviz; json: raw event records; "
            "timeline: human-readable per-node timeline (default: chrome)"
        ),
    )
    trace.add_argument(
        "--output", "-o",
        metavar="PATH",
        default=None,
        help="write to this file instead of stdout",
    )
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument(
        "--limit",
        type=int,
        default=None,
        help="timeline format: show at most this many events",
    )
    monitor = sub.add_parser(
        "monitor",
        help="stream a scenario (or a trace file) through the online "
        "causal-consistency monitor",
    )
    monitor.add_argument(
        "--scenario",
        default="fig4",
        choices=["fig3", "fig4"],
        help="live-attach: run this traced scenario with the monitor "
        "subscribed (default: fig4; ignored with --from-trace)",
    )
    monitor.add_argument(
        "--from-trace",
        metavar="PATH",
        default=None,
        help="replay an exported trace (repro trace --format json) "
        "through the monitor instead of running a scenario",
    )
    monitor.add_argument(
        "--procs",
        type=int,
        default=3,
        help="--from-trace: number of processes in the trace (default: 3)",
    )
    monitor.add_argument("--seed", type=int, default=0)
    monitor.add_argument(
        "--gc-interval",
        type=int,
        default=64,
        help="processed-op period of dominated-prefix GC (default: 64)",
    )
    monitor.add_argument(
        "--expect-violation",
        action="store_true",
        help="exit 0 iff the monitor flags a violation (CI: fig3 must "
        "flag, fig4 must pass)",
    )
    monitor.add_argument(
        "--counterexample",
        metavar="PATH",
        default=None,
        help="on violation, shrink the monitor's window to a replayable "
        "counterexample and write it here (live scenarios only)",
    )
    live = sub.add_parser(
        "live",
        help="run a scenario or workload on the live asyncio/socket "
        "runtime — same engines, real transport — and check it",
    )
    live.add_argument(
        "--scenario",
        default="fig3",
        choices=["fig3", "fig4", "fig5", "workload"],
        help="paper scenario, or 'workload' for the random Zipfian mix "
        "(default: fig3)",
    )
    live.add_argument(
        "--transport",
        default="uds",
        choices=["uds", "tcp"],
        help="Unix-domain sockets or localhost TCP (default: uds)",
    )
    live.add_argument(
        "--differential",
        action="store_true",
        help="scenarios: also run under the simulator and compare "
        "checker + monitor verdicts (exit 1 on disagreement)",
    )
    live.add_argument(
        "--delta-stamps",
        action="store_true",
        help="frame messages through the wire codec (delta writestamps, "
        "full-stamp resync on reconnect)",
    )
    live.add_argument("--seed", type=int, default=0)
    live.add_argument(
        "--protocol",
        default="causal",
        help="workload only: protocol under test (default: causal)",
    )
    live.add_argument(
        "--nodes", type=int, default=3, help="workload only (default: 3)"
    )
    live.add_argument(
        "--ops", type=int, default=20,
        help="workload only: ops per process (default: 20)",
    )
    live.add_argument(
        "--locations", type=int, default=4,
        help="workload only: distinct locations (default: 4)",
    )
    live.add_argument(
        "--zipf", type=float, default=0.0,
        help="workload only: Zipf exponent for location choice "
        "(0 = uniform; default: 0)",
    )
    live.add_argument(
        "--timeout", type=float, default=30.0,
        help="wall-clock deadline for the run (default: 30s)",
    )
    live.add_argument(
        "--plane",
        action="store_true",
        help="attach the telemetry plane: per-node shards streaming "
        "over the sideband, monitor riding the aggregated stream",
    )
    live.add_argument(
        "--flight-recorder",
        metavar="PATH",
        default=None,
        help="arm the flight recorder (implies --plane); on timeout/"
        "crash/monitor violation, dump a replayable counterexample here",
    )
    top = sub.add_parser(
        "top",
        help="live terminal dashboard: run a scenario or workload on the "
        "asyncio runtime with the telemetry plane attached and repaint "
        "ops/s, per-link bytes, queue depths, monitor verdict, latency",
    )
    top.add_argument(
        "--scenario",
        default="workload",
        choices=["fig3", "fig4", "fig5", "workload"],
        help="what to run under the dashboard (default: workload)",
    )
    top.add_argument(
        "--transport", default="uds", choices=["uds", "tcp"],
    )
    top.add_argument("--seed", type=int, default=0)
    top.add_argument(
        "--protocol", default="causal",
        help="workload only: protocol under test (default: causal)",
    )
    top.add_argument(
        "--nodes", type=int, default=3, help="workload only (default: 3)"
    )
    top.add_argument(
        "--ops", type=int, default=50,
        help="workload only: ops per process (default: 50)",
    )
    top.add_argument(
        "--locations", type=int, default=4,
        help="workload only: distinct locations (default: 4)",
    )
    top.add_argument(
        "--zipf", type=float, default=0.0,
        help="workload only: Zipf exponent for location choice",
    )
    top.add_argument(
        "--interval", type=float, default=0.2,
        help="repaint period in seconds (default: 0.2)",
    )
    top.add_argument(
        "--plain",
        action="store_true",
        help="append panels instead of ANSI repaint (CI logs, pipes)",
    )
    top.add_argument(
        "--timeout", type=float, default=60.0,
        help="wall-clock deadline for the run (default: 60s)",
    )
    for name, factory in sorted(EXPERIMENTS.items()):
        doc = (factory.__doc__ or "").strip().splitlines()
        help_text = doc[0] if doc else name
        sub.add_parser(name, help=help_text)
    return parser


def _run_one(name: str, store=None) -> bool:
    started = time.perf_counter()
    report = run_experiment(name)
    elapsed = time.perf_counter() - started
    status = "PASS" if report.passed else "FAIL"
    print(f"[{report.exp_id}] {report.title}")
    print(f"status: {status}  ({elapsed:.2f}s)")
    print()
    print(report.text)
    print()
    if store is not None:
        store.record(name, report.passed, report.data)
    return report.passed


def _cmd_trace(args) -> int:
    """Run one traced scenario and export its trace in the chosen format."""
    import json
    from pathlib import Path

    from repro.obs import (
        SCENARIOS,
        format_timeline,
        to_causal_dag,
        to_chrome_trace,
        to_dot,
        validate_chrome_trace,
    )

    run = SCENARIOS[args.scenario](seed=args.seed)
    events = list(run.collector)
    if args.format == "chrome":
        payload = to_chrome_trace(events)
        validate_chrome_trace(payload)
        text = json.dumps(payload, indent=2, sort_keys=True)
    elif args.format == "dot":
        text = to_dot(to_causal_dag(events))
    elif args.format == "json":
        text = json.dumps(run.collector.to_jsonable(), indent=2)
    else:
        text = format_timeline(events, limit=args.limit)
    if args.output:
        Path(args.output).write_text(text + "\n")
        print(
            f"{args.scenario}: {len(events)} events "
            f"({args.format}) -> {args.output}"
        )
    else:
        print(text)
    return 0


def _cmd_monitor(args) -> int:
    """Stream a scenario or trace through the online monitor."""
    from repro.monitor import CausalStreamMonitor, feed_trace
    from repro.obs.collector import TraceCollector

    if args.from_trace:
        monitor = CausalStreamMonitor(
            args.procs, gc_interval=args.gc_interval
        )
        result = feed_trace(monitor, args.from_trace)
        source = args.from_trace
        protocol = None
    else:
        from repro.obs.runs import SCENARIOS

        collector = TraceCollector()
        monitor = CausalStreamMonitor(
            3, metrics=collector.metrics, gc_interval=args.gc_interval
        )
        collector.subscribe(monitor.observe, category="proto", name="op.commit")
        run = SCENARIOS[args.scenario](seed=args.seed, collector=collector)
        result = monitor.result()
        source = f"scenario {args.scenario}"
        protocol = run.protocol
    status = "CAUSAL" if result.ok else "VIOLATION"
    print(f"{source}: {status}")
    print(
        f"  {result.reads_checked} reads checked over "
        f"{result.ops_processed} ops; window peaked at "
        f"{result.max_window} ops, {result.gc_retired} GC-retired"
    )
    if not result.ok:
        print("  " + result.explain().replace("\n", "\n  "))
    if args.counterexample and not result.ok:
        if protocol is None:
            print("--counterexample needs a live scenario (window replay)")
            return 2
        from pathlib import Path

        from repro.monitor import violation_counterexample

        cex = violation_counterexample(monitor, protocol=protocol, seed=args.seed)
        if cex is None:
            print("counterexample search exhausted its budget")
            return 2
        cex.save(args.counterexample)
        print(
            f"counterexample ({cex.n_ops} ops, format v2) -> "
            f"{args.counterexample}"
        )
    if args.expect_violation:
        return 0 if not result.ok else 1
    return 0 if result.ok else 1


def _print_live_stats(outcome) -> None:
    print(
        f"  {outcome.total_messages} messages in {outcome.elapsed:.3f}s "
        f"({outcome.dropped_messages} dropped, {outcome.resyncs} resyncs)"
    )
    print(
        f"  bytes: {outcome.model_bytes} wire-model, "
        f"{outcome.socket_bytes} on the socket"
    )


def _print_plane_stats(plane) -> None:
    agg = plane.aggregator
    print(
        f"  telemetry: {agg.events_merged} events over "
        f"{agg.frames_merged} frames merged "
        f"({agg.events_lost} events / {agg.frames_lost} frames lost)"
    )
    for gap in agg.gaps[-3:]:
        print(f"    gap: {gap}")


def _dump_flight(plane, path) -> None:
    """Dump the first recorded incident as a replayable counterexample."""
    flight = plane.flight
    if flight is None or not flight.triggered:
        return
    reason, detail, _ring = flight.incidents[0]
    cex = flight.dump_to(path)
    if cex is None:
        print(
            f"  flight recorder: {reason} incident recorded, but the "
            f"reproduction search exhausted its budget"
        )
    else:
        print(
            f"  flight recorder: {reason} ({detail}) -> {path} "
            f"({cex.n_ops} ops, format v2, replayable)"
        )


def _cmd_live(args) -> int:
    """Run a scenario/workload on the asyncio runtime; check the result."""
    from repro.checker import check_causal
    from repro.runtime import run_workload_live
    from repro.runtime.differential import (
        compare_live_verdicts,
        run_differential,
    )

    plane = None
    want_flight = bool(args.flight_recorder)
    if args.plane or want_flight:
        from repro.obs.plane import TelemetryPlane

        plane = TelemetryPlane()

    if args.scenario == "workload":
        from repro.apps.workload import WorkloadConfig

        config = WorkloadConfig(
            protocol=args.protocol,
            n_nodes=args.nodes,
            n_locations=args.locations,
            ops_per_proc=args.ops,
            seed=args.seed,
            delta_stamps=args.delta_stamps,
        )
        try:
            outcome = run_workload_live(
                config, zipf=args.zipf, transport=args.transport,
                monitor=True, timeout=args.timeout,
                plane=plane, flight=want_flight,
            )
        except Exception as error:
            if plane is None:
                raise
            print(f"workload live run failed: {error}")
            _print_plane_stats(plane)
            if want_flight:
                _dump_flight(plane, args.flight_recorder)
            return 1
        offline = check_causal(outcome.history)
        status = "CAUSAL" if offline.ok else "VIOLATION"
        print(
            f"workload ({args.protocol}, {args.nodes} nodes x {args.ops} "
            f"ops, zipf={args.zipf}, {args.transport}): {status}"
        )
        _print_live_stats(outcome)
        if plane is not None:
            _print_plane_stats(plane)
            if want_flight:
                _dump_flight(plane, args.flight_recorder)
        mismatches: List[str] = []
        compare_live_verdicts(
            outcome.history, outcome.monitor_result,
            outcome.online_verdicts, mismatches,
        )
        if mismatches:
            print("  monitor/checker DISAGREEMENT:")
            for item in mismatches:
                print(f"    - {item}")
            return 1
        print("  online monitor agrees with the offline checker")
        if args.protocol == "causal" and not offline.ok:
            print("  " + offline.explain().replace("\n", "\n  "))
            return 1
        return 0

    if args.differential:
        result = run_differential(
            args.scenario, seed=args.seed, transport=args.transport,
            delta_stamps=args.delta_stamps, timeout=args.timeout,
        )
        print(result.explain())
        _print_live_stats(result.live_outcome)
        return 0 if result.equivalent else 1

    from repro.runtime import run_scenario_live

    try:
        outcome = run_scenario_live(
            args.scenario, seed=args.seed, transport=args.transport,
            delta_stamps=args.delta_stamps, monitor=True,
            timeout=args.timeout, plane=plane, flight=want_flight,
        )
    except Exception as error:
        if plane is None:
            raise
        print(f"{args.scenario} live run failed: {error}")
        _print_plane_stats(plane)
        if want_flight:
            _dump_flight(plane, args.flight_recorder)
        return 1
    offline = check_causal(outcome.history)
    status = "CAUSAL" if offline.ok else "VIOLATION"
    print(f"{args.scenario} live ({args.transport}): {status}")
    _print_live_stats(outcome)
    if plane is not None:
        _print_plane_stats(plane)
        if want_flight:
            _dump_flight(plane, args.flight_recorder)
    if not offline.ok:
        print("  " + offline.explain().replace("\n", "\n  "))
    from repro.runtime import SCENARIOS

    expected = SCENARIOS[args.scenario].expect_causal
    return 0 if offline.ok == expected else 1


def _cmd_top(args) -> int:
    """Live dashboard: run under the telemetry plane, repaint, verdict."""
    from repro.checker import check_causal
    from repro.obs.plane import Dashboard, TelemetryPlane
    from repro.runtime import run_scenario_live, run_workload_live

    plane = TelemetryPlane()
    plane.dashboard = Dashboard(interval=args.interval, plain=args.plain)
    if args.scenario == "workload":
        from repro.apps.workload import WorkloadConfig

        config = WorkloadConfig(
            protocol=args.protocol,
            n_nodes=args.nodes,
            n_locations=args.locations,
            ops_per_proc=args.ops,
            seed=args.seed,
            delta_stamps=True,
        )
        outcome = run_workload_live(
            config, zipf=args.zipf, transport=args.transport,
            monitor=True, timeout=args.timeout,
            sample_latencies=True, plane=plane,
        )
    else:
        outcome = run_scenario_live(
            args.scenario, seed=args.seed, transport=args.transport,
            monitor=True, timeout=args.timeout, plane=plane,
        )
    offline = check_causal(outcome.history)
    status = "CAUSAL" if offline.ok else "VIOLATION"
    print(f"\n{args.scenario} ({args.transport}): {status}")
    _print_live_stats(outcome)
    _print_plane_stats(plane)
    expect_ok = True
    if args.scenario != "workload":
        from repro.runtime import SCENARIOS

        expect_ok = SCENARIOS[args.scenario].expect_causal
    return 0 if offline.ok == expect_ok else 1


def _cmd_report_bench(path: str) -> int:
    """Render the benchmark trajectory file as a markdown table."""
    from repro.analysis import BenchTrajectory, bench_trajectory_table
    from repro.errors import ReproError

    try:
        trajectory = BenchTrajectory.load(path)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    if not trajectory.runs:
        print(f"no benchmark runs recorded in {path}")
        return 0
    table = bench_trajectory_table(
        trajectory, title=f"Benchmark trajectory ({path})"
    )
    print(table.to_markdown())
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "explore":
        # Forwarded verbatim: repro.mc owns the flag set, and argparse's
        # REMAINDER cannot pass through leading `--options` faithfully.
        from repro.mc.__main__ import main as mc_main

        return mc_main(["explore", *argv[1:]])
    if argv and argv[0] == "bench":
        # Forwarded verbatim for the same reason as `explore`.
        from repro.bench import main as bench_main

        return bench_main(argv[1:])
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command in (None, "list"):
        print("available experiments:")
        for name, factory in sorted(EXPERIMENTS.items()):
            doc = (factory.__doc__ or "").strip().splitlines()
            summary = doc[0] if doc else ""
            print(f"  {name:20s} {summary}")
        print("  all                  run every experiment")
        return 0
    if args.command == "report":
        if args.bench:
            return _cmd_report_bench(args.bench)
        from repro.harness.experiments import generate_markdown_report

        print(generate_markdown_report())
        return 0
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "monitor":
        return _cmd_monitor(args)
    if args.command == "live":
        return _cmd_live(args)
    if args.command == "top":
        return _cmd_top(args)
    if args.command == "all":
        from repro.analysis.results import ResultsStore

        store = ResultsStore()
        failures = [
            name
            for name in sorted(EXPERIMENTS)
            if not _run_one(name, store=store)
        ]
        if args.save:
            store.save(args.save)
            print(f"results written to {args.save}")
        if args.baseline:
            deltas = store.compare(ResultsStore.load(args.baseline))
            if deltas:
                print(f"{len(deltas)} drift(s) vs baseline:")
                for delta in deltas:
                    print(f"  {delta}")
            else:
                print("no drift vs baseline")
        if failures:
            print(f"FAILED experiments: {', '.join(failures)}")
            return 1
        print("all experiments passed")
        return 0
    return 0 if _run_one(args.command) else 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
