"""Experiment registry and command-line interface.

Every figure and quantitative claim in the paper maps to one experiment
function here (the E-numbers follow DESIGN.md's experiment index).  The
same functions back the pytest benchmarks, the ``repro`` CLI, and the
generation of EXPERIMENTS.md.
"""

from repro.harness.experiments import (
    EXPERIMENTS,
    ExperimentReport,
    run_experiment,
)

__all__ = ["EXPERIMENTS", "ExperimentReport", "run_experiment"]
