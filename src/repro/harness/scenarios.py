"""Deterministic scenario runs reproducing the paper's figures live.

The checker validates the figures as *written histories*; the functions
here go one step further and make the *protocols* produce (or refuse to
produce) those histories in the simulator:

* :func:`run_figure3_on_broadcast` — drives the causal-broadcast memory
  into exactly the Figure 3 execution, demonstrating that ISIS-style
  causal broadcasting is not causal memory;
* :func:`run_figure5_on_causal` — the owner protocol (P1 owning ``x``,
  P2 owning ``y``) naturally yields Figure 5's weakly consistent
  execution, which no strongly consistent memory admits;
* :func:`run_dictionary_delete_race` — the Section 4.2 race: a stale
  concurrent delete against an owner's newer insert, with either
  resolution policy;
* :func:`run_discard_liveness` — the Section 3.1 remark that without
  ``discard`` two self-owning writers never communicate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, FrozenSet, List, Optional, Tuple

from repro.apps.dictionary import FREE, DictionaryCluster
from repro.checker.history import History
from repro.memory import Namespace
from repro.protocols.base import DSMCluster
from repro.protocols.policies import ConflictPolicy
from repro.sim.tasks import sleep

__all__ = [
    "run_figure3_on_broadcast",
    "run_figure5_on_causal",
    "run_dictionary_delete_race",
    "run_discard_liveness",
    "run_write_behind_race",
    "DeleteRaceOutcome",
    "LivenessOutcome",
]


def run_figure3_on_broadcast(seed: int = 0) -> History:
    """Drive causal-broadcast memory into the Figure 3 execution.

    P1 writes ``x=5`` then ``y=3``; P2 writes the concurrent ``x=2``,
    then reads ``y=3`` and ``x`` (P1's 5 overwrote its own 2 on
    delivery), then writes ``z=4``; P3 waits for ``z=4`` and then reads
    ``x`` — seeing 2, because P2's concurrent ``x=2`` was delivered at
    P3 *after* P1's ``x=5``.  The returned history is exactly Figure 3,
    and ``check_causal`` rejects it.
    """
    cluster = DSMCluster(n_nodes=3, protocol="broadcast", seed=seed)

    def p1(api):
        yield api.write("x", 5)
        yield api.write("y", 3)

    def p2(api):
        yield api.write("x", 2)
        yield api.watch("y", lambda v: v == 3)
        yield api.read("y")
        yield api.read("x")
        yield api.write("z", 4)

    def p3(api):
        yield api.watch("z", lambda v: v == 4)
        yield api.read("z")
        yield api.read("x")

    cluster.spawn(0, p1, name="P1")
    cluster.spawn(1, p2, name="P2")
    cluster.spawn(2, p3, name="P3")
    cluster.run()
    return cluster.history()


def run_figure5_on_causal(seed: int = 0) -> History:
    """The owner protocol produces Figure 5's weakly consistent execution.

    With P1 owning ``x`` and P2 owning ``y`` (the paper's assignment),
    both processes read the other's flag (miss, returns the initial 0),
    write their own flag locally, and re-read the other's flag from
    their now-stale cache — yielding ``r(y)0 w(x)1 r(y)0`` against
    ``r(x)0 w(y)1 r(x)0``, which is causal but not sequentially
    consistent.
    """
    namespace = Namespace.explicit(2, {"x": 0, "y": 1})
    cluster = DSMCluster(
        n_nodes=2, protocol="causal", seed=seed, namespace=namespace
    )

    def p1(api):
        yield api.read("y")
        yield api.write("x", 1)
        yield api.read("y")

    def p2(api):
        yield api.read("x")
        yield api.write("y", 1)
        yield api.read("x")

    cluster.spawn(0, p1, name="P1")
    cluster.spawn(1, p2, name="P2")
    cluster.run()
    return cluster.history()


def run_write_behind_race(unsafe: bool, seed: int = 0) -> History:
    """Why Figure 4's writes block ("reducing the blocking of processors").

    P1 writes ``x`` (owned by P0, over a slow link) and then ``y``
    (owned by P2, fast link).  P2 sees ``y``'s new value and reads
    ``x``.  With blocking writes the write of ``x`` completed before
    ``y`` was even issued, so P2's read fetches the new ``x``.  With
    write-behind (``unsafe=True``) the write of ``y`` overtakes the
    in-flight write of ``x`` and P2 observes::

        P2: r(y)2 r(x)0

    even though ``w(x)1 *-> w(y)2`` — the initial value of ``x`` is no
    longer live, a causal-memory violation the checker catches.
    """
    from repro.sim.latency import PerLinkLatency

    latency = PerLinkLatency(default=1.0, links={(1, 0): 25.0})
    namespace = Namespace.explicit(3, {"x": 0, "y": 2})
    cluster = DSMCluster(
        3,
        protocol="causal",
        seed=seed,
        latency=latency,
        namespace=namespace,
        unsafe_write_behind=unsafe,
    )

    def writer(api):
        yield api.write("x", 1)   # slow certification at P0
        yield api.write("y", 2)   # fast certification at P2

    def observer(api):
        yield cluster.watch("y", lambda v: v == 2)
        yield api.read("y")
        yield api.read("x")

    cluster.spawn(1, writer, name="writer")
    cluster.spawn(2, observer, name="observer")
    cluster.run()
    return cluster.history()


@dataclass(frozen=True)
class DeleteRaceOutcome:
    """Result of the Section 4.2 concurrent-delete scenario."""

    policy: str
    survivor_items: FrozenSet[Any]
    new_item_survived: bool
    delete_was_rejected: bool
    history_is_causal: bool


def run_dictionary_delete_race(
    policy: Optional[ConflictPolicy] = None, seed: int = 0
) -> DeleteRaceOutcome:
    """The stale-delete race of Section 4.2, under a chosen policy.

    Timeline (simulated time):

    * t=0  — P0 inserts ``"x"`` into slot (0,0) of its own row;
    * t=5  — P1 refreshes and looks up ``"x"`` (caches slot (0,0));
    * t=10 — P0 deletes ``"x"`` and inserts ``"y"``, reusing slot (0,0);
    * t=15 — P1, still holding the stale cached slot, deletes ``"x"`` —
      its write of the free marker reaches the owner *concurrent* with
      the owner's insert of ``"y"``.

    With the paper's owner-favoured policy the delete is rejected and
    ``"y"`` survives; with last-writer-wins the stale delete destroys
    ``"y"`` — the anomaly the policy exists to prevent.
    """
    dictionary = DictionaryCluster(n=2, m=3, seed=seed, policy=policy)
    sim = dictionary.cluster.sim

    def p0(api):
        yield from dictionary.insert(api, "x")
        yield sleep(sim, 10.0)
        yield from dictionary.delete(api, "x")
        yield from dictionary.insert(api, "y")

    def p1(api):
        yield sleep(sim, 5.0)
        dictionary.refresh(api)
        found = yield from dictionary.lookup(api, "x")
        assert found, "P1 must observe the insert before the race"
        yield sleep(sim, 10.0)
        # Stale view: the cached slot still holds "x"; delete it.
        yield from dictionary.delete(api, "x")

    dictionary.spawn(0, p0, name="P0")
    dictionary.spawn(1, p1, name="P1")
    dictionary.run()

    survivors = dictionary.authoritative_items()
    rejected = sum(
        node.stats.rejected_writes for node in dictionary.cluster.nodes
    )
    from repro.checker import check_causal

    return DeleteRaceOutcome(
        policy=dictionary.policy.describe(),
        survivor_items=survivors,
        new_item_survived="y" in survivors,
        delete_was_rejected=rejected > 0,
        history_is_causal=check_causal(dictionary.history()).ok,
    )


@dataclass(frozen=True)
class LivenessOutcome:
    """Result of the discard-liveness demonstration (Section 3.1)."""

    with_discard: bool
    rounds: int
    messages_after_warmup: int
    final_observed: Tuple[Any, Any]
    final_authoritative: Tuple[Any, Any]

    @property
    def observed_fresh_values(self) -> bool:
        """Did each node ever see the other's final value?"""
        return self.final_observed == self.final_authoritative


def run_discard_liveness(
    with_discard: bool, rounds: int = 10, seed: int = 0
) -> LivenessOutcome:
    """Two nodes, each owning one location, caching the other's.

    Each node repeatedly writes its own location (a counter) and reads
    the other's.  After the initial fetch, *all* its reads hit the
    cache: "without discard two processors that initially cache all
    locations and only write locations owned by them need never
    communicate" (Section 3.1) — so each observes the other frozen at
    the first value.  With a discard before each read, every round
    fetches fresh values at two messages a round.
    """
    namespace = Namespace.explicit(2, {"a": 0, "b": 1})
    cluster = DSMCluster(
        n_nodes=2, protocol="causal", seed=seed, namespace=namespace
    )
    observed: dict = {}

    def node(api, me: int, mine: str, theirs: str):
        yield api.read(theirs)  # warm the cache
        last = None
        for round_no in range(rounds):
            yield api.write(mine, round_no + 1)
            if with_discard:
                api.discard(theirs)
            last = yield api.read(theirs)
            yield sleep(cluster.sim, 1.0)
        observed[me] = last

    cluster.spawn(0, node, 0, "a", "b", name="N0")
    cluster.spawn(1, node, 1, "b", "a", name="N1")
    warmup_snapshot_total = 4  # two initial fetches, 2 messages each
    cluster.run()
    authoritative = (
        cluster.nodes[1].store.get("b").value,  # what N0 should see
        cluster.nodes[0].store.get("a").value,  # what N1 should see
    )
    return LivenessOutcome(
        with_discard=with_discard,
        rounds=rounds,
        messages_after_warmup=cluster.stats.total - warmup_snapshot_total,
        final_observed=(observed[0], observed[1]),
        final_authoritative=authoritative,
    )
