"""``python -m repro`` — dispatch to the CLI."""

import sys

from repro.harness.cli import main

sys.exit(main())
