"""Per-node memories and the shared namespace.

The paper partitions the shared causal memory among processors: "the
locations assigned to a processor are owned by that processor" and other
locations may be cached, with the distinguished value ``bottom`` marking an
invalid (not cached) location (Section 3.1).

:mod:`repro.memory.namespace`
    Maps locations to owners and (optionally) groups locations into pages —
    the paper's "scaling the unit of sharing to a page" enhancement.
:mod:`repro.memory.local_store`
    The local memory ``M_i`` of a node: value/writestamp/writer triples,
    the cached set ``C_i``, and the invalidation rule used by the protocol.
"""

from repro.memory.local_store import LocalStore, MemoryEntry
from repro.memory.namespace import Namespace, location_array

__all__ = ["Namespace", "location_array", "LocalStore", "MemoryEntry"]
