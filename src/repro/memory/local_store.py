"""The local memory ``M_i`` of one processor.

Each processor ``P_i`` has a local memory indexed by location names.  Owned
locations are always present (the owner holds the current value); other
locations may hold cached copies or the distinguished value ``bottom``
(modelled here as *absence* of an entry), meaning invalid/not cached
(paper, Section 3.1).  ``C_i`` — the set of currently cached locations — is
exactly :meth:`LocalStore.cached_locations`.

Every entry is a ``(value, writestamp, writer)`` triple.  The writer id is
an extension over the paper's ``(value, VT)`` pair, needed by the
owner-favoured conflict-resolution policy of the dictionary application
(Section 4.2): the owner must recognise that the stored concurrent value
was written by itself.

The store also enforces the paper's invariant that "the locations owned by
a processor can never be invalidated by that processor".

Performance notes (the invalidation sweep runs on every value install):

* ``C_i`` and a per-unit membership index are maintained incrementally,
  so :meth:`cached_locations` is a set copy (no ownership re-derivation)
  and the sweep never rescans the whole store to find a doomed unit's
  members.  Ownership and read-only verdicts per location are immutable,
  so they are memoised.
* A *sweep watermark* records the last swept stamp for which the store is
  known to hold no cached, invalidatable entry strictly older than it.
  A sweep whose stamp does not advance past the watermark is provably a
  no-op (everything it could invalidate is already gone) and is skipped
  in O(n) — the owner protocol issues exactly such redundant sweeps when
  serviced writes do not advance its clock.  Any install into the cache
  clears the guarantee, so the skip never changes observable contents
  (see ``tests/test_prop_local_store.py`` for the equivalence property).
* Sweep candidates mirror their writestamps into a
  :class:`~repro.clocks.arena.ClockArena` (DESIGN.md §4.9): the sweep's
  per-line ``VectorClock.compare`` loop becomes **one** batched
  strictly-older mask over the arena rows.  ``MemoryEntry`` keeps its
  immutable ``VectorClock`` — the arena row is a write-through mirror,
  synchronised on the single install/removal paths, and the
  ``backend`` constructor argument (or ``REPRO_ARENA_BACKEND``) selects
  the numpy or pure-Python implementation.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Set

from repro.clocks import EQUAL, VectorClock, make_arena
from repro.errors import MemoryError_
from repro.memory.namespace import Namespace

__all__ = ["MemoryEntry", "LocalStore", "INITIAL_WRITER"]

#: Writer id used for the distinguished initial writes that, per the paper,
#: "precede all operations in any process sequence".
INITIAL_WRITER = -1

#: Below this many sweep candidates the batched arena mask loses to the
#: plain per-entry stamp compares (numpy call overhead dominates).
_VEC_MIN = 8


class MemoryEntry:
    """One location's value, its writestamp, and who wrote it.

    A plain slotted record (one allocation, no ``__dict__``) rather than
    a dataclass: entries are the highest-churn objects of the protocol
    hot path.  Equality and hashing match the old frozen-dataclass
    semantics.  Fields are writable so the store can refresh a
    writestamp in place (:meth:`LocalStore.restamp`) when it already
    owns the entry — but all mutation must go through the store, which
    keeps the arena mirror and sweep watermark coherent.
    """

    __slots__ = ("value", "stamp", "writer")

    def __init__(self, value: Any, stamp: VectorClock, writer: int):
        self.value = value
        self.stamp = stamp
        self.writer = writer

    def older_than(self, stamp: VectorClock) -> bool:
        """Strictly older under the vector order (the invalidation test)."""
        return self.stamp.strictly_less(stamp)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MemoryEntry):
            return NotImplemented
        return (
            self.value == other.value
            and self.stamp == other.stamp
            and self.writer == other.writer
        )

    def __hash__(self) -> int:
        return hash((self.value, self.stamp, self.writer))

    def __repr__(self) -> str:
        return (
            f"MemoryEntry(value={self.value!r}, stamp={self.stamp!r}, "
            f"writer={self.writer!r})"
        )


class LocalStore:
    """``M_i``: owned locations plus a cache of remote locations.

    Parameters
    ----------
    node_id:
        This processor's id (the ``i`` in ``M_i``).
    namespace:
        Shared ownership/unit map.
    n_nodes:
        Vector-clock dimension, used to synthesize initial entries.
    initial_value:
        The distinguished value all locations are initialised to; the
        paper's examples use 0.
    backend:
        Writestamp-arena backend for the vectorised sweep: ``"numpy"``,
        ``"python"``, ``"auto"`` or None (None consults the
        ``REPRO_ARENA_BACKEND`` environment variable, then autodetects).
    """

    def __init__(
        self,
        node_id: int,
        namespace: Namespace,
        n_nodes: int,
        initial_value: Any = 0,
        backend: Optional[str] = None,
    ):
        self.node_id = node_id
        self.namespace = namespace
        self.n_nodes = n_nodes
        self.initial_value = initial_value
        self._entries: Dict[str, MemoryEntry] = {}
        # ``C_i`` maintained incrementally (dict-as-ordered-set: iteration
        # follows insertion order, keeping sweeps deterministic across
        # processes where plain set order would be hash-randomized).
        self._cached: Dict[str, None] = {}
        # unit -> present locations of that unit (cached *and* owned).
        self._unit_index: Dict[str, Dict[str, None]] = {}
        # Cached and not read-only: the only entries a sweep can touch.
        # Maps location -> arena slot mirroring the entry's writestamp.
        self._sweep_candidates: Dict[str, int] = {}
        #: Candidates whose arena row is stale (see :meth:`_flush_arena`).
        self._arena_dirty: Dict[str, None] = {}
        #: Writestamp arena mirroring sweep candidates (DESIGN.md §4.9).
        self._arena = make_arena(n_nodes, backend)
        self.backend = self._arena.backend
        # Ownership / read-only verdicts are pure functions of the
        # location; memoise them per store.
        self._owns_memo: Dict[str, bool] = {}
        self._read_only_memo: Dict[str, bool] = {}
        # Sweep watermark: when ``_watermark_clean`` no cached,
        # invalidatable entry is strictly older than ``_watermark``.
        self._watermark: Optional[VectorClock] = None
        self._watermark_clean = False
        # Counters consumed by benchmarks / experiment reports.
        self.invalidation_count = 0
        self.discard_count = 0
        self.sweeps_performed = 0
        self.sweeps_skipped = 0
        #: Attached TraceCollector, or None (all emits are guarded).
        self.obs = None

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def owns(self, location: str) -> bool:
        """True iff this node owns ``location``'s unit."""
        owned = self._owns_memo.get(location)
        if owned is None:
            owned = self.namespace.owns(self.node_id, location)
            self._owns_memo[location] = owned
        return owned

    def get(self, location: str) -> Optional[MemoryEntry]:
        """The entry for ``location``, or None if invalid (``bottom``).

        Owned locations are never ``bottom``: a never-written owned
        location yields the distinguished initial entry (zero writestamp),
        reflecting the paper's assumption of initial writes preceding all
        operations.
        """
        entry = self._entries.get(location)
        if entry is None and self.owns(location):
            entry = self.initial_entry()
            self._install(location, entry)
        return entry

    def initial_entry(self) -> MemoryEntry:
        """The entry representing the distinguished initial write."""
        return MemoryEntry(
            value=self.initial_value,
            stamp=VectorClock.zero(self.n_nodes),
            writer=INITIAL_WRITER,
        )

    def is_valid(self, location: str) -> bool:
        """True iff reading ``location`` needs no remote message."""
        return location in self._entries or self.owns(location)

    def cached_locations(self) -> Set[str]:
        """``C_i``: locations cached here (present but not owned).

        Maintained incrementally; this returns a snapshot copy.
        """
        return set(self._cached)

    def owned_locations(self) -> Set[str]:
        """Owned locations that have an explicit entry."""
        return {loc for loc in self._entries if loc not in self._cached}

    def locations_in_unit(self, unit: str) -> List[str]:
        """Present locations belonging to the given sharing unit."""
        members = self._unit_index.get(unit)
        return list(members) if members else []

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def put(self, location: str, entry: MemoryEntry) -> None:
        """Install a value (a local write, a reply, or a serviced WRITE)."""
        self._install(location, entry)
        if self.obs is not None:
            self.obs.emit(
                "store", "apply", node=self.node_id, clock=entry.stamp,
                location=location, writer=entry.writer,
                owned=self.owns(location),
            )

    def restamp(self, location: str, stamp: VectorClock) -> MemoryEntry:
        """Refresh a present entry's writestamp in place (same value/writer).

        The write-behind paths repeatedly replace an entry with an
        identical value under a newer (certified or merged) stamp; this
        mutates the store-owned entry instead of allocating a
        replacement.  The arena mirror is marked stale exactly as a
        re-install would, and a cached entry clears the sweep-watermark
        guarantee (its stamp changed, so the next sweep must look).
        """
        entry = self._entries[location]
        entry.stamp = stamp
        if location in self._sweep_candidates:
            self._arena_dirty[location] = None
        if location in self._cached:
            self._watermark_clean = False
        if self.obs is not None:
            self.obs.emit(
                "store", "apply", node=self.node_id, clock=stamp,
                location=location, writer=entry.writer,
                owned=self.owns(location),
            )
        return entry

    def invalidate(self, location: str) -> None:
        """Set ``M_i[location] := bottom``.  Owned locations never can be."""
        if self.owns(location):
            raise MemoryError_(
                f"node {self.node_id} cannot invalidate owned location "
                f"{location!r}"
            )
        if location in self._entries:
            self._remove_cached(location, invalidation=True)
            if self.obs is not None:
                self.obs.emit(
                    "store", "invalidate", node=self.node_id,
                    location=location,
                )

    def invalidate_older_than(
        self,
        stamp: VectorClock,
        keep: Optional[Iterable[str]] = None,
    ) -> List[str]:
        """Figure 4's invalidation sweep.

        Invalidate every cached location whose writestamp is strictly less
        than ``stamp`` (``M_i[y].VT < VT'``).  Locations the namespace marks
        read-only, and any in ``keep``, survive.  When page granularity is
        in use, an entire unit is invalidated as soon as any of its entries
        is older (conservative, hence still correct).

        Returns the list of invalidated locations (for tracing).
        """
        if (
            self._watermark_clean
            and self._watermark is not None
            and stamp.compare(self._watermark) <= EQUAL  # LESS or EQUAL
        ):
            # Nothing invalidatable is older than the watermark, so
            # nothing can be older than this non-advancing stamp.
            self.sweeps_skipped += 1
            return []
        self.sweeps_performed += 1
        candidates = self._sweep_candidates
        if not candidates:
            # Nothing invalidatable at all; the store is trivially clean.
            self._watermark = stamp
            self._watermark_clean = True
            return []
        keep_set = frozenset(keep) if keep else frozenset()
        doomed_units: Dict[str, None] = {}
        kept_old = False
        unit_of = self.namespace.unit
        # One batched strictly-older mask over the arena rows replaces the
        # per-line VectorClock.compare loop (DESIGN.md §4.9) — but below
        # a handful of rows the numpy round trip (fromiter + fancy
        # indexing) costs more than the tuple compares it saves, so tiny
        # sweeps stay on the entries' own stamps.
        if len(candidates) < _VEC_MIN:
            entries = self._entries
            mask = [
                entries[location].stamp.strictly_less(stamp)
                for location in candidates
            ]
        else:
            self._flush_arena()
            mask = self._arena.older_mask(
                candidates.values(), stamp.components
            )
        for location, older in zip(candidates, mask):
            if older:
                if location in keep_set:
                    kept_old = True  # survivor below the sweep stamp
                else:
                    doomed_units[unit_of(location)] = None
        invalidated: List[str] = []
        for unit in doomed_units:
            for location in list(self._unit_index[unit]):
                if location not in candidates or location in keep_set:
                    continue  # owned/read-only unit-mates are never swept
                self._remove_cached(location, invalidation=True)
                invalidated.append(location)
        self._watermark = stamp
        self._watermark_clean = not kept_old
        return invalidated

    def discard(self, location: str) -> bool:
        """The paper's ``discard``: drop one cached copy (replacement /
        liveness).  Returns True if a copy was present.  Owned locations
        cannot be discarded."""
        if self.owns(location):
            raise MemoryError_(
                f"node {self.node_id} cannot discard owned location {location!r}"
            )
        if location in self._entries:
            self._remove_cached(location, invalidation=False)
            if self.obs is not None:
                self.obs.emit(
                    "store", "discard", node=self.node_id, location=location,
                )
            return True
        return False

    def discard_all(self) -> int:
        """Drop the entire cache; returns the number of dropped copies."""
        cached = list(self._cached)
        for location in cached:
            self._remove_cached(location, invalidation=False)
        if self.obs is not None and cached:
            self.obs.emit(
                "store", "discard_all", node=self.node_id, count=len(cached),
            )
        return len(cached)

    # ------------------------------------------------------------------
    # Internal bookkeeping (the single install/removal paths)
    # ------------------------------------------------------------------
    def _flush_arena(self) -> None:
        """Write deferred stamp updates into their arena rows.

        Must run before any batched mask over the arena; the small-sweep
        scalar path reads the entries directly and needs no flush.
        """
        if not self._arena_dirty:
            return
        entries = self._entries
        candidates = self._sweep_candidates
        write = self._arena.write
        for location in self._arena_dirty:
            slot = candidates.get(location)
            if slot is not None:
                write(slot, entries[location].stamp.components)
        self._arena_dirty.clear()

    def _install(self, location: str, entry: MemoryEntry) -> None:
        if location not in self._entries:
            unit = self.namespace.unit(location)
            members = self._unit_index.get(unit)
            if members is None:
                self._unit_index[unit] = {location: None}
            else:
                members[location] = None
            if not self.owns(location):
                self._cached[location] = None
                if not self._is_read_only(location):
                    self._sweep_candidates[location] = self._arena.alloc(
                        entry.stamp.components
                    )
        elif location in self._sweep_candidates:
            # Re-install over a live candidate: mark its arena mirror
            # stale rather than rewrite the row now.  Hot lines are
            # re-installed far more often than a batched sweep reads
            # them; the rows flush lazily just before the next mask.
            self._arena_dirty[location] = None
        if location in self._cached:
            # A cache install may be older than the watermark; the next
            # sweep must look again.
            self._watermark_clean = False
        self._entries[location] = entry

    def _remove_cached(self, location: str, *, invalidation: bool) -> None:
        del self._entries[location]
        self._cached.pop(location, None)
        slot = self._sweep_candidates.pop(location, None)
        if slot is not None:
            self._arena.free(slot)
        unit = self.namespace.unit(location)
        members = self._unit_index.get(unit)
        if members is not None:
            members.pop(location, None)
            if not members:
                del self._unit_index[unit]
        if invalidation:
            self.invalidation_count += 1
        else:
            self.discard_count += 1

    def _is_read_only(self, location: str) -> bool:
        verdict = self._read_only_memo.get(location)
        if verdict is None:
            verdict = self.namespace.is_read_only(location)
            self._read_only_memo[location] = verdict
        return verdict

    def __contains__(self, location: str) -> bool:
        return self.is_valid(location)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<LocalStore node={self.node_id} entries={len(self._entries)} "
            f"cached={len(self._cached)}>"
        )
