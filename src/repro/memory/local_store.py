"""The local memory ``M_i`` of one processor.

Each processor ``P_i`` has a local memory indexed by location names.  Owned
locations are always present (the owner holds the current value); other
locations may hold cached copies or the distinguished value ``bottom``
(modelled here as *absence* of an entry), meaning invalid/not cached
(paper, Section 3.1).  ``C_i`` — the set of currently cached locations — is
exactly :meth:`LocalStore.cached_locations`.

Every entry is a ``(value, writestamp, writer)`` triple.  The writer id is
an extension over the paper's ``(value, VT)`` pair, needed by the
owner-favoured conflict-resolution policy of the dictionary application
(Section 4.2): the owner must recognise that the stored concurrent value
was written by itself.

The store also enforces the paper's invariant that "the locations owned by
a processor can never be invalidated by that processor".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Set

from repro.clocks import VectorClock
from repro.errors import MemoryError_
from repro.memory.namespace import Namespace

__all__ = ["MemoryEntry", "LocalStore", "INITIAL_WRITER"]

#: Writer id used for the distinguished initial writes that, per the paper,
#: "precede all operations in any process sequence".
INITIAL_WRITER = -1


@dataclass(frozen=True)
class MemoryEntry:
    """One location's value, its writestamp, and who wrote it."""

    value: Any
    stamp: VectorClock
    writer: int

    def older_than(self, stamp: VectorClock) -> bool:
        """Strictly older under the vector order (the invalidation test)."""
        return self.stamp < stamp


class LocalStore:
    """``M_i``: owned locations plus a cache of remote locations.

    Parameters
    ----------
    node_id:
        This processor's id (the ``i`` in ``M_i``).
    namespace:
        Shared ownership/unit map.
    n_nodes:
        Vector-clock dimension, used to synthesize initial entries.
    initial_value:
        The distinguished value all locations are initialised to; the
        paper's examples use 0.
    """

    def __init__(
        self,
        node_id: int,
        namespace: Namespace,
        n_nodes: int,
        initial_value: Any = 0,
    ):
        self.node_id = node_id
        self.namespace = namespace
        self.n_nodes = n_nodes
        self.initial_value = initial_value
        self._entries: Dict[str, MemoryEntry] = {}
        # Counters consumed by benchmarks / experiment reports.
        self.invalidation_count = 0
        self.discard_count = 0

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def owns(self, location: str) -> bool:
        """True iff this node owns ``location``'s unit."""
        return self.namespace.owns(self.node_id, location)

    def get(self, location: str) -> Optional[MemoryEntry]:
        """The entry for ``location``, or None if invalid (``bottom``).

        Owned locations are never ``bottom``: a never-written owned
        location yields the distinguished initial entry (zero writestamp),
        reflecting the paper's assumption of initial writes preceding all
        operations.
        """
        entry = self._entries.get(location)
        if entry is None and self.owns(location):
            entry = self.initial_entry()
            self._entries[location] = entry
        return entry

    def initial_entry(self) -> MemoryEntry:
        """The entry representing the distinguished initial write."""
        return MemoryEntry(
            value=self.initial_value,
            stamp=VectorClock.zero(self.n_nodes),
            writer=INITIAL_WRITER,
        )

    def is_valid(self, location: str) -> bool:
        """True iff reading ``location`` needs no remote message."""
        return self.owns(location) or location in self._entries

    def cached_locations(self) -> Set[str]:
        """``C_i``: locations cached here (present but not owned)."""
        return {loc for loc in self._entries if not self.owns(loc)}

    def owned_locations(self) -> Set[str]:
        """Owned locations that have an explicit entry."""
        return {loc for loc in self._entries if self.owns(loc)}

    def locations_in_unit(self, unit: str) -> List[str]:
        """Present locations belonging to the given sharing unit."""
        return [
            loc for loc in self._entries if self.namespace.unit(loc) == unit
        ]

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def put(self, location: str, entry: MemoryEntry) -> None:
        """Install a value (a local write, a reply, or a serviced WRITE)."""
        self._entries[location] = entry

    def invalidate(self, location: str) -> None:
        """Set ``M_i[location] := bottom``.  Owned locations never can be."""
        if self.owns(location):
            raise MemoryError_(
                f"node {self.node_id} cannot invalidate owned location "
                f"{location!r}"
            )
        if location in self._entries:
            del self._entries[location]
            self.invalidation_count += 1

    def invalidate_older_than(
        self,
        stamp: VectorClock,
        keep: Optional[Iterable[str]] = None,
    ) -> List[str]:
        """Figure 4's invalidation sweep.

        Invalidate every cached location whose writestamp is strictly less
        than ``stamp`` (``M_i[y].VT < VT'``).  Locations the namespace marks
        read-only, and any in ``keep``, survive.  When page granularity is
        in use, an entire unit is invalidated as soon as any of its entries
        is older (conservative, hence still correct).

        Returns the list of invalidated locations (for tracing).
        """
        keep_set = set(keep or ())
        doomed_units: Set[str] = set()
        for location in self.cached_locations():
            if location in keep_set or self.namespace.is_read_only(location):
                continue
            entry = self._entries[location]
            if entry.older_than(stamp):
                doomed_units.add(self.namespace.unit(location))
        invalidated: List[str] = []
        if not doomed_units:
            return invalidated
        for location in list(self.cached_locations()):
            if location in keep_set or self.namespace.is_read_only(location):
                continue
            if self.namespace.unit(location) in doomed_units:
                del self._entries[location]
                self.invalidation_count += 1
                invalidated.append(location)
        return invalidated

    def discard(self, location: str) -> bool:
        """The paper's ``discard``: drop one cached copy (replacement /
        liveness).  Returns True if a copy was present.  Owned locations
        cannot be discarded."""
        if self.owns(location):
            raise MemoryError_(
                f"node {self.node_id} cannot discard owned location {location!r}"
            )
        if location in self._entries:
            del self._entries[location]
            self.discard_count += 1
            return True
        return False

    def discard_all(self) -> int:
        """Drop the entire cache; returns the number of dropped copies."""
        cached = list(self.cached_locations())
        for location in cached:
            del self._entries[location]
        self.discard_count += len(cached)
        return len(cached)

    def __contains__(self, location: str) -> bool:
        return self.is_valid(location)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<LocalStore node={self.node_id} entries={len(self._entries)} "
            f"cached={len(self.cached_locations())}>"
        )
