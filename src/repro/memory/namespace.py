"""The shared-memory namespace: ownership and sharing units.

Locations are strings (e.g. ``"x"``, ``"x[3]"``, ``"dict[2][5]"``).  Every
location has a fixed *owner* processor, as in the paper's owner protocol.
Locations may additionally be grouped into *units* (pages); the unit is the
granularity of caching and invalidation, reproducing the paper's "scaling
the unit of sharing to a page" enhancement.  With the default identity
paging, unit == location and the protocol is exactly Figure 4.

Ownership must be a pure function of the location: every node computes the
same ``owner(x)`` with no coordination, which is what lets the protocol
route requests with no directory service.
"""

from __future__ import annotations

import re
import zlib
from typing import Callable, Dict, Iterable, Optional

from repro.errors import OwnershipError

__all__ = ["Namespace", "location_array"]

_ARRAY_RE = re.compile(r"^(?P<base>[^\[\]]+)\[(?P<index>\d+)\](?P<rest>.*)$")


def location_array(base: str, *indices: int) -> str:
    """Build an array-style location name, e.g. ``location_array('x', 3)``.

    >>> location_array("dict", 2, 5)
    'dict[2][5]'
    """
    return base + "".join(f"[{i}]" for i in indices)


def _stable_hash(text: str) -> int:
    """A process-stable hash (Python's builtin ``hash`` is randomized)."""
    return zlib.crc32(text.encode("utf-8"))


class Namespace:
    """Maps locations to owners and sharing units.

    Parameters
    ----------
    n_nodes:
        Number of processors; owners are node ids in ``range(n_nodes)``.
    owner_fn:
        Maps a *unit* name to its owner id.  Defaults to a stable hash.
    unit_fn:
        Maps a location to its unit (page).  Defaults to identity
        (word granularity, the paper's basic algorithm).
    read_only:
        Locations (by prefix match on the unit) that every node may cache
        permanently and that are exempt from invalidation — the paper's
        footnote-2 enhancement for the solver's constant inputs ``A``/``b``.
    """

    def __init__(
        self,
        n_nodes: int,
        owner_fn: Optional[Callable[[str], int]] = None,
        unit_fn: Optional[Callable[[str], str]] = None,
        read_only: Iterable[str] = (),
    ):
        if n_nodes <= 0:
            raise OwnershipError(f"need at least one node, got {n_nodes}")
        self.n_nodes = n_nodes
        self._owner_fn = owner_fn or (lambda unit: _stable_hash(unit) % n_nodes)
        self._unit_fn = unit_fn or (lambda loc: loc)
        self._read_only_prefixes = tuple(read_only)
        self._owner_cache: Dict[str, int] = {}
        self._unit_cache: Dict[str, str] = {}

    # ------------------------------------------------------------------
    # Core queries
    # ------------------------------------------------------------------
    def unit(self, location: str) -> str:
        """The sharing unit (page) containing ``location``."""
        unit = self._unit_cache.get(location)
        if unit is None:
            unit = self._unit_fn(location)
            self._unit_cache[location] = unit
        return unit

    def owner(self, location: str) -> int:
        """The owner node of the unit containing ``location``."""
        unit = self.unit(location)
        owner = self._owner_cache.get(unit)
        if owner is None:
            owner = self._owner_fn(unit)
            if not 0 <= owner < self.n_nodes:
                raise OwnershipError(
                    f"owner_fn({unit!r}) = {owner} outside [0, {self.n_nodes})"
                )
            self._owner_cache[unit] = owner
        return owner

    def owns(self, node_id: int, location: str) -> bool:
        """True iff ``node_id`` owns the unit containing ``location``."""
        return self.owner(location) == node_id

    def is_read_only(self, location: str) -> bool:
        """True for locations declared constant (never invalidated)."""
        unit = self.unit(location)
        return any(unit.startswith(prefix) for prefix in self._read_only_prefixes)

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------
    @classmethod
    def hashed(cls, n_nodes: int, read_only: Iterable[str] = ()) -> "Namespace":
        """Word-granularity namespace with hash-based ownership."""
        return cls(n_nodes, read_only=read_only)

    @classmethod
    def explicit(
        cls,
        n_nodes: int,
        owners: Dict[str, int],
        default: Optional[int] = None,
        read_only: Iterable[str] = (),
    ) -> "Namespace":
        """Ownership from an explicit unit -> owner table.

        Unlisted units fall back to ``default`` if given, else to the
        stable hash.
        """
        table = dict(owners)

        def owner_fn(unit: str) -> int:
            if unit in table:
                return table[unit]
            if default is not None:
                return default
            return _stable_hash(unit) % n_nodes

        return cls(n_nodes, owner_fn=owner_fn, read_only=read_only)

    @classmethod
    def by_first_index(
        cls, n_nodes: int, read_only: Iterable[str] = ()
    ) -> "Namespace":
        """Array rows owned by their first index: ``dict[i][j]`` -> node i.

        This is the dictionary application's layout (Section 4.2: process
        ``P_i`` owns all locations in row *i*).  Non-array locations fall
        back to the stable hash.
        """

        def owner_fn(unit: str) -> int:
            match = _ARRAY_RE.match(unit)
            if match:
                index = int(match.group("index"))
                if index < n_nodes:
                    return index
            return _stable_hash(unit) % n_nodes

        return cls(n_nodes, owner_fn=owner_fn, read_only=read_only)

    @classmethod
    def array_paged(
        cls,
        n_nodes: int,
        page_size: int,
        read_only: Iterable[str] = (),
    ) -> "Namespace":
        """Group array locations into pages of ``page_size`` elements.

        ``x[0]..x[page_size-1]`` share the unit ``x@page0`` and hence an
        owner and an invalidation fate — the paper's page-granularity
        enhancement.  Non-array locations are their own unit.
        """
        if page_size <= 0:
            raise OwnershipError(f"page_size must be positive, got {page_size}")

        def unit_fn(location: str) -> str:
            match = _ARRAY_RE.match(location)
            if match and not match.group("rest"):
                base = match.group("base")
                index = int(match.group("index"))
                return f"{base}@page{index // page_size}"
            return location

        return cls(n_nodes, unit_fn=unit_fn, read_only=read_only)
