"""Logical clocks.

The owner protocol of the paper (Figure 4) tracks causality with vector
timestamps: "a simple vector timestamp protocol [Mattern 1989] may be used
to capture precisely the evolving partial ordering of events".  A vector
time attached to a written value is called a *writestamp*.

:mod:`repro.clocks.vector_clock`
    Immutable fixed-dimension vector clocks with ``increment``, ``update``
    (component-wise max) and the strict partial order the paper defines:
    ``VT < VT'`` iff every component is <= and some component is <.
:mod:`repro.clocks.lamport`
    Scalar Lamport clocks, provided for comparison and for tests that show
    scalar clocks cannot detect concurrency (why the protocol needs vectors).
:mod:`repro.clocks.arena`
    Batched writestamp storage: one 2-D ``uint64`` array holding many
    clocks, with vectorised merge/compare/dominance operations for whole
    invalidation sweeps and delivery scans (numpy backend with a
    pure-Python twin).
"""

from repro.clocks.arena import (
    HAVE_NUMPY,
    ClockArena,
    PyClockArena,
    make_arena,
    resolve_backend,
)
from repro.clocks.lamport import LamportClock
from repro.clocks.vector_clock import (
    CONCURRENT,
    EQUAL,
    GREATER,
    LESS,
    VectorClock,
)

__all__ = [
    "VectorClock",
    "LamportClock",
    "LESS",
    "GREATER",
    "EQUAL",
    "CONCURRENT",
    "ClockArena",
    "PyClockArena",
    "make_arena",
    "resolve_backend",
    "HAVE_NUMPY",
]
