"""Writestamp arenas: batched storage and comparison of vector clocks.

A :class:`ClockArena` packs many writestamps into one 2-D ``uint64``
array — rows are slots (one per cached line, held message, or frontier
entry), columns are process components.  Batch operations replace the
per-clock Python loops on the invalidation/delivery hot paths:

* :meth:`~ClockArena.older_mask` — one masked compare per incoming
  writestamp classifies *every* slot as strictly-older-or-not
  (``np.all``/``np.any`` over the row block), instead of one
  ``VectorClock.compare`` call per cached line;
* :meth:`~ClockArena.dominated_mask` — componentwise ``<=`` over all
  slots at once (the checker/monitor dominance test);
* :meth:`~ClockArena.merge_rows` — rowwise componentwise maximum (a
  batched ``update``).

``VectorClock`` stays the API-edge representation: :meth:`ClockArena.clock`
materialises a slot as an immutable clock only when a value crosses a
protocol or test boundary.  Inside the arena, rows are mutable storage.

**View-aliasing rules** (DESIGN.md §4.9): :meth:`ClockArena.row` returns a
live numpy view into the backing array.  Views are invalidated by the next
:meth:`alloc` (growth reallocates the backing array) and by
:meth:`write`/:meth:`merge` into the same slot.  Never hold a row view
across an allocation; copy (``components()``/``clock()``) at API edges.

**Backends.**  :class:`PyClockArena` is the pure-Python twin with the
identical API over lists — it keeps the scalar path alive where numpy is
unavailable or undesired.  Selection order: an explicit constructor
argument wins, then the ``REPRO_ARENA_BACKEND`` environment variable
(``numpy`` | ``python`` | ``auto``), then ``auto`` (numpy when
importable).  Both backends are lockstep property-tested against the
``VectorClock`` operators and against each other (byte-identical
histories); see ``tests/test_prop_arena.py``.
"""

from __future__ import annotations

import os
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.clocks.vector_clock import (
    CONCURRENT,
    EQUAL,
    GREATER,
    LESS,
    VectorClock,
)
from repro.errors import ClockError

try:  # numpy is an accelerator, never a requirement
    import numpy as _np
except ImportError:  # pragma: no cover - image always ships numpy
    _np = None

__all__ = [
    "ClockArena",
    "PyClockArena",
    "make_arena",
    "resolve_backend",
    "HAVE_NUMPY",
]

HAVE_NUMPY = _np is not None

#: Environment override for the default backend.
_ENV_VAR = "REPRO_ARENA_BACKEND"
_VALID_BACKENDS = ("auto", "numpy", "python")


def resolve_backend(backend: Optional[str] = None) -> str:
    """Resolve a backend request to ``"numpy"`` or ``"python"``.

    ``None``/``"auto"`` consults :data:`_ENV_VAR`, then picks numpy when
    importable.  An explicit ``"numpy"`` raises if numpy is missing —
    silent degradation would invalidate a benchmark's A/B claim.
    """
    if backend is None:
        backend = os.environ.get(_ENV_VAR, "auto").strip().lower() or "auto"
    if backend not in _VALID_BACKENDS:
        raise ClockError(
            f"unknown arena backend {backend!r}; expected one of "
            f"{_VALID_BACKENDS}"
        )
    if backend == "auto":
        return "numpy" if HAVE_NUMPY else "python"
    if backend == "numpy" and not HAVE_NUMPY:
        raise ClockError("arena backend 'numpy' requested but numpy is absent")
    return backend


def make_arena(dimension: int, backend: Optional[str] = None, capacity: int = 16):
    """Build the arena for the resolved backend."""
    if resolve_backend(backend) == "numpy":
        return ClockArena(dimension, capacity=capacity)
    return PyClockArena(dimension, capacity=capacity)


class ClockArena:
    """numpy-backed writestamp arena (see module docstring).

    Slots are recycled through a free list; ``alloc`` may grow the
    backing array (amortised doubling), which invalidates outstanding
    row views.
    """

    backend = "numpy"

    __slots__ = ("dimension", "_rows", "_free", "_top")

    def __init__(self, dimension: int, capacity: int = 16):
        if dimension <= 0:
            raise ClockError(f"dimension must be positive, got {dimension}")
        self.dimension = dimension
        self._rows = _np.zeros((max(capacity, 1), dimension), dtype=_np.uint64)
        self._free: List[int] = []
        self._top = 0  # rows ever handed out; rows >= _top are virgin

    # -- slot management ------------------------------------------------
    def alloc(self, components: Sequence[int]) -> int:
        """Claim a slot holding ``components``; may grow (invalidates views)."""
        if self._free:
            slot = self._free.pop()
        else:
            slot = self._top
            if slot == len(self._rows):
                grown = _np.zeros(
                    (len(self._rows) * 2, self.dimension), dtype=_np.uint64
                )
                grown[: self._top] = self._rows[: self._top]
                self._rows = grown
            self._top += 1
        self._rows[slot] = components
        return slot

    def write(self, slot: int, components: Sequence[int]) -> None:
        """Overwrite a live slot in place."""
        self._rows[slot] = components

    def merge(self, slot: int, components: Sequence[int]) -> None:
        """Rowwise ``update``: slot := componentwise max(slot, components)."""
        row = self._rows[slot]
        _np.maximum(row, _np.asarray(components, dtype=_np.uint64), out=row)

    def free(self, slot: int) -> None:
        """Release a slot back to the free list."""
        self._free.append(slot)

    # -- access ----------------------------------------------------------
    def row(self, slot: int):
        """Live view of a slot's components — see view-aliasing rules."""
        return self._rows[slot]

    def components(self, slot: int) -> Tuple[int, ...]:
        """A slot's components as a plain tuple (a copy)."""
        return tuple(int(c) for c in self._rows[slot])

    def clock(self, slot: int) -> VectorClock:
        """Materialise a slot as an immutable ``VectorClock`` (API edge)."""
        return VectorClock._from_trusted(self.components(slot))

    # -- batch operations --------------------------------------------------
    def older_mask(
        self, slots: Iterable[int], stamp: Sequence[int]
    ) -> List[bool]:
        """``mask[i] iff rows[slots[i]] < stamp`` (strict vector order).

        One vectorised pass over the selected rows: less-or-equal in every
        component and strictly less in at least one — the Figure 4
        invalidation test for a whole sweep's candidate set at once.
        """
        idx = _np.fromiter(slots, dtype=_np.intp)
        if idx.size == 0:
            return []
        rows = self._rows[idx]
        s = _np.asarray(stamp, dtype=_np.uint64)
        older = (rows <= s).all(axis=1) & (rows < s).any(axis=1)
        return older.tolist()

    def dominated_mask(
        self, slots: Iterable[int], stamp: Sequence[int]
    ) -> List[bool]:
        """``mask[i] iff rows[slots[i]] <= stamp`` componentwise."""
        idx = _np.fromiter(slots, dtype=_np.intp)
        if idx.size == 0:
            return []
        s = _np.asarray(stamp, dtype=_np.uint64)
        return (self._rows[idx] <= s).all(axis=1).tolist()

    def merge_rows(self, slots: Iterable[int]) -> Tuple[int, ...]:
        """Componentwise maximum over the selected slots (batched update)."""
        idx = _np.fromiter(slots, dtype=_np.intp)
        if idx.size == 0:
            return (0,) * self.dimension
        merged = self._rows[idx].max(axis=0)
        return tuple(int(c) for c in merged)

    def classify(self, a: Sequence[int], b: Sequence[int]) -> int:
        """Vectorised ``VectorClock.compare`` over raw component vectors."""
        av = _np.asarray(a, dtype=_np.uint64)
        bv = _np.asarray(b, dtype=_np.uint64)
        less = bool((av < bv).any())
        greater = bool((av > bv).any())
        if less and greater:
            return CONCURRENT
        if less:
            return LESS
        if greater:
            return GREATER
        return EQUAL

    def __len__(self) -> int:
        return self._top - len(self._free)


class PyClockArena:
    """Pure-Python twin of :class:`ClockArena` — identical API over lists.

    The scalar fallback: selected by ``REPRO_ARENA_BACKEND=python`` or
    when numpy is absent.  Rows are lists; batch operations degrade to
    the same per-element loops the pre-arena code ran.
    """

    backend = "python"

    __slots__ = ("dimension", "_rows", "_free")

    def __init__(self, dimension: int, capacity: int = 16):
        if dimension <= 0:
            raise ClockError(f"dimension must be positive, got {dimension}")
        self.dimension = dimension
        self._rows: List[Optional[List[int]]] = []
        self._free: List[int] = []

    def alloc(self, components: Sequence[int]) -> int:
        if self._free:
            slot = self._free.pop()
            self._rows[slot] = list(components)
            return slot
        self._rows.append(list(components))
        return len(self._rows) - 1

    def write(self, slot: int, components: Sequence[int]) -> None:
        self._rows[slot] = list(components)

    def merge(self, slot: int, components: Sequence[int]) -> None:
        row = self._rows[slot]
        for i, c in enumerate(components):
            if c > row[i]:
                row[i] = c

    def free(self, slot: int) -> None:
        self._rows[slot] = None
        self._free.append(slot)

    def row(self, slot: int):
        return self._rows[slot]

    def components(self, slot: int) -> Tuple[int, ...]:
        return tuple(self._rows[slot])

    def clock(self, slot: int) -> VectorClock:
        return VectorClock._from_trusted(self.components(slot))

    def older_mask(
        self, slots: Iterable[int], stamp: Sequence[int]
    ) -> List[bool]:
        rows = self._rows
        out = []
        for slot in slots:
            row = rows[slot]
            less = False
            older = True
            for x, y in zip(row, stamp):
                if x > y:
                    older = False
                    break
                if x < y:
                    less = True
            out.append(older and less)
        return out

    def dominated_mask(
        self, slots: Iterable[int], stamp: Sequence[int]
    ) -> List[bool]:
        rows = self._rows
        return [
            all(x <= y for x, y in zip(rows[slot], stamp)) for slot in slots
        ]

    def merge_rows(self, slots: Iterable[int]) -> Tuple[int, ...]:
        merged: Optional[List[int]] = None
        for slot in slots:
            row = self._rows[slot]
            if merged is None:
                merged = list(row)
            else:
                for i, c in enumerate(row):
                    if c > merged[i]:
                        merged[i] = c
        if merged is None:
            return (0,) * self.dimension
        return tuple(merged)

    def classify(self, a: Sequence[int], b: Sequence[int]) -> int:
        less = greater = False
        for x, y in zip(a, b):
            if x < y:
                if greater:
                    return CONCURRENT
                less = True
            elif x > y:
                if less:
                    return CONCURRENT
                greater = True
        if less:
            return LESS
        if greater:
            return GREATER
        return EQUAL

    def __len__(self) -> int:
        return len(self._rows) - len(self._free)
