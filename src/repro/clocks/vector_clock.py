"""Vector clocks (the paper's writestamps).

The paper's operations on vector times (Section 3.1):

* ``increment(VT_i)`` — add one to the *i*-th component;
* ``update(VT, VT')`` — component-wise maximum;
* comparison — ``VT < VT'`` iff every component is less-or-equal and at
  least one is strictly less.  Two vector times not ordered by ``<`` in
  either direction are *concurrent*; the writes they stamp are concurrent.

Instances are immutable and hashable, so they can key dictionaries (e.g. a
history checker mapping writestamps to operations) and be shared freely
between nodes in the simulator without defensive copying.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Tuple

from repro.errors import ClockError

__all__ = ["VectorClock"]


class VectorClock:
    """An immutable, fixed-dimension vector time.

    Parameters
    ----------
    components:
        Iterable of non-negative ints, one per process.

    Examples
    --------
    >>> a = VectorClock.zero(3).increment(0)
    >>> b = VectorClock.zero(3).increment(1)
    >>> a.concurrent_with(b)
    True
    >>> a.update(b)
    VectorClock((1, 1, 0))
    >>> a < a.increment(0)
    True
    """

    __slots__ = ("_components",)

    def __init__(self, components: Iterable[int]):
        comps = tuple(int(c) for c in components)
        if not comps:
            raise ClockError("vector clock must have at least one component")
        if any(c < 0 for c in comps):
            raise ClockError(f"negative component in {comps}")
        self._components = comps

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def zero(cls, dimension: int) -> "VectorClock":
        """The all-zeros clock of the given dimension."""
        if dimension <= 0:
            raise ClockError(f"dimension must be positive, got {dimension}")
        return cls((0,) * dimension)

    def increment(self, index: int) -> "VectorClock":
        """A new clock with component ``index`` advanced by one."""
        self._check_index(index)
        comps = list(self._components)
        comps[index] += 1
        return VectorClock(comps)

    def update(self, other: "VectorClock") -> "VectorClock":
        """Component-wise maximum (the paper's ``update(VT, VT')``)."""
        self._check_dimension(other)
        return VectorClock(
            max(a, b) for a, b in zip(self._components, other._components)
        )

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    @property
    def dimension(self) -> int:
        """Number of components (processes)."""
        return len(self._components)

    @property
    def components(self) -> Tuple[int, ...]:
        """The underlying tuple of components."""
        return self._components

    def __getitem__(self, index: int) -> int:
        return self._components[index]

    def __iter__(self) -> Iterator[int]:
        return iter(self._components)

    def __len__(self) -> int:
        return len(self._components)

    def sum(self) -> int:
        """Total event count reflected in this clock."""
        return sum(self._components)

    # ------------------------------------------------------------------
    # Ordering
    # ------------------------------------------------------------------
    def __le__(self, other: "VectorClock") -> bool:
        self._check_dimension(other)
        return all(a <= b for a, b in zip(self._components, other._components))

    def __lt__(self, other: "VectorClock") -> bool:
        """Strict vector order: <= in every component, < in at least one."""
        return self <= other and self._components != other._components

    def __ge__(self, other: "VectorClock") -> bool:
        self._check_dimension(other)
        return all(a >= b for a, b in zip(self._components, other._components))

    def __gt__(self, other: "VectorClock") -> bool:
        return self >= other and self._components != other._components

    def concurrent_with(self, other: "VectorClock") -> bool:
        """Neither clock dominates the other (the stamps are concurrent)."""
        return not self <= other and not other <= self

    def comparable_with(self, other: "VectorClock") -> bool:
        """True iff the clocks are ordered one way or the other."""
        return self <= other or other <= self

    # ------------------------------------------------------------------
    # Equality / hashing / repr
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VectorClock):
            return NotImplemented
        return self._components == other._components

    def __hash__(self) -> int:
        return hash(self._components)

    def __repr__(self) -> str:
        return f"VectorClock({self._components!r})"

    def __str__(self) -> str:
        return "<" + ",".join(str(c) for c in self._components) + ">"

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _check_dimension(self, other: "VectorClock") -> None:
        if not isinstance(other, VectorClock):
            raise ClockError(f"cannot combine VectorClock with {type(other).__name__}")
        if other.dimension != self.dimension:
            raise ClockError(
                f"dimension mismatch: {self.dimension} vs {other.dimension}"
            )

    def _check_index(self, index: int) -> None:
        if not 0 <= index < len(self._components):
            raise ClockError(
                f"index {index} out of range for dimension {len(self._components)}"
            )
