"""Vector clocks (the paper's writestamps).

The paper's operations on vector times (Section 3.1):

* ``increment(VT_i)`` — add one to the *i*-th component;
* ``update(VT, VT')`` — component-wise maximum;
* comparison — ``VT < VT'`` iff every component is less-or-equal and at
  least one is strictly less.  Two vector times not ordered by ``<`` in
  either direction are *concurrent*; the writes they stamp are concurrent.

Instances are immutable and hashable, so they can key dictionaries (e.g. a
history checker mapping writestamps to operations) and be shared freely
between nodes in the simulator without defensive copying.

Performance notes (these clocks sit on every protocol hot path):

* ``increment``/``update``/``zero`` construct results through an internal
  trusted constructor that skips per-component re-validation — components
  derived from an already-validated clock cannot become negative.
* ``__hash__`` is computed once and cached (clocks key dictionaries in
  the checkers and request routing).
* :meth:`compare` classifies a pair in a single pass, returning one of
  :data:`LESS`, :data:`GREATER`, :data:`EQUAL`, :data:`CONCURRENT`, so
  protocol code does not need two O(n) comparisons per conflict check.
* ``update`` returns an existing instance (``self`` or ``other``) when
  one side already dominates, avoiding an allocation on the common path
  where a node's clock absorbs an older stamp.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Tuple

from repro.errors import ClockError

__all__ = ["VectorClock", "LESS", "GREATER", "EQUAL", "CONCURRENT"]

#: Single-pass comparison outcomes (:meth:`VectorClock.compare`).  The
#: numeric values are stable API: the ordered outcomes satisfy
#: ``LESS < EQUAL < GREATER`` and ``CONCURRENT`` is distinct from all three,
#: so ``compare(other) <= EQUAL`` tests "dominated-or-equal" in one shot.
LESS = -1
EQUAL = 0
GREATER = 1
CONCURRENT = 2


class VectorClock:
    """An immutable, fixed-dimension vector time.

    Parameters
    ----------
    components:
        Iterable of non-negative ints, one per process.

    Examples
    --------
    >>> a = VectorClock.zero(3).increment(0)
    >>> b = VectorClock.zero(3).increment(1)
    >>> a.concurrent_with(b)
    True
    >>> a.update(b)
    VectorClock((1, 1, 0))
    >>> a < a.increment(0)
    True
    """

    __slots__ = ("_components", "_hash")

    #: Comparison outcomes re-exported on the class for discoverability.
    LESS = LESS
    EQUAL = EQUAL
    GREATER = GREATER
    CONCURRENT = CONCURRENT

    def __init__(self, components: Iterable[int]):
        comps = tuple(int(c) for c in components)
        if not comps:
            raise ClockError("vector clock must have at least one component")
        if any(c < 0 for c in comps):
            raise ClockError(f"negative component in {comps}")
        self._components = comps
        self._hash = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def _from_trusted(cls, components: Tuple[int, ...]) -> "VectorClock":
        """Wrap an already-validated component tuple without re-checking.

        Only for tuples derived from existing clocks (``increment``,
        ``update``, ``zero``): non-negativity and non-emptiness are
        preserved by those operations, so validation would be wasted work
        on the protocol hot paths.
        """
        clock = object.__new__(cls)
        clock._components = components
        clock._hash = None
        return clock

    @classmethod
    def zero(cls, dimension: int) -> "VectorClock":
        """The all-zeros clock of the given dimension."""
        if dimension <= 0:
            raise ClockError(f"dimension must be positive, got {dimension}")
        return cls._from_trusted((0,) * dimension)

    def increment(self, index: int) -> "VectorClock":
        """A new clock with component ``index`` advanced by one."""
        self._check_index(index)
        comps = self._components
        return VectorClock._from_trusted(
            comps[:index] + (comps[index] + 1,) + comps[index + 1:]
        )

    def update(self, other: "VectorClock") -> "VectorClock":
        """Component-wise maximum (the paper's ``update(VT, VT')``).

        Returns ``self`` or ``other`` unchanged when one side already
        dominates — instances are immutable, so sharing is safe.
        """
        a = self._components
        try:
            b = other._components
        except AttributeError:
            self._check_dimension(other)  # raises ClockError
            raise  # pragma: no cover - _check_dimension always raises here
        if a == b:
            return self
        if len(a) != len(b):
            self._check_dimension(other)
        # A conditional list comprehension beats ``tuple(map(max, a, b))``
        # ~3x: ``max`` pays varargs parsing per element, the comprehension
        # compiles to straight compare-and-pick bytecode.
        merged = tuple([x if x >= y else y for x, y in zip(a, b)])
        if merged == a:
            return self
        if merged == b:
            return other
        return VectorClock._from_trusted(merged)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    @property
    def dimension(self) -> int:
        """Number of components (processes)."""
        return len(self._components)

    @property
    def components(self) -> Tuple[int, ...]:
        """The underlying tuple of components."""
        return self._components

    def __getitem__(self, index: int) -> int:
        return self._components[index]

    def __iter__(self) -> Iterator[int]:
        return iter(self._components)

    def __len__(self) -> int:
        return len(self._components)

    def sum(self) -> int:
        """Total event count reflected in this clock."""
        return sum(self._components)

    # ------------------------------------------------------------------
    # Ordering
    # ------------------------------------------------------------------
    def compare(self, other: "VectorClock") -> int:
        """Classify this pair in one pass over the components.

        Returns :data:`LESS` (``self < other``), :data:`GREATER`
        (``self > other``), :data:`EQUAL`, or :data:`CONCURRENT` — exactly
        one holds for any pair.  Protocol code should prefer this over
        chaining ``<``/``concurrent_with``, which each rescan the vectors.

        >>> VectorClock((1, 0)).compare(VectorClock((0, 1))) == CONCURRENT
        True
        >>> VectorClock((1, 0)).compare(VectorClock((1, 2))) == LESS
        True
        """
        a = self._components
        try:
            b = other._components
        except AttributeError:
            self._check_dimension(other)  # raises ClockError
            raise  # pragma: no cover - _check_dimension always raises here
        if a == b:
            return EQUAL
        if len(a) != len(b):
            self._check_dimension(other)
        less = greater = False
        for x, y in zip(a, b):
            if x < y:
                if greater:
                    return CONCURRENT
                less = True
            elif x > y:
                if less:
                    return CONCURRENT
                greater = True
        return LESS if less else GREATER

    def strictly_less(self, other: "VectorClock") -> bool:
        """True iff ``self < other`` (every component <=, at least one <).

        Equivalent to ``compare(other) == LESS`` but exits at the first
        component where ``self`` exceeds ``other`` — much cheaper on the
        invalidation-sweep path, where the typical answer is "no" and the
        disqualifying component (the cache owner's own) sits early.
        """
        a = self._components
        try:
            b = other._components
        except AttributeError:
            self._check_dimension(other)  # raises ClockError
            raise  # pragma: no cover - _check_dimension always raises here
        if len(a) != len(b):
            self._check_dimension(other)
        for x, y in zip(a, b):
            if x > y:
                return False
        return a != b

    def __le__(self, other: "VectorClock") -> bool:
        self._check_dimension(other)
        return all(a <= b for a, b in zip(self._components, other._components))

    def __lt__(self, other: "VectorClock") -> bool:
        """Strict vector order: <= in every component, < in at least one."""
        return self.compare(other) == LESS

    def __ge__(self, other: "VectorClock") -> bool:
        self._check_dimension(other)
        return all(a >= b for a, b in zip(self._components, other._components))

    def __gt__(self, other: "VectorClock") -> bool:
        return self.compare(other) == GREATER

    def concurrent_with(self, other: "VectorClock") -> bool:
        """Neither clock dominates the other (the stamps are concurrent)."""
        return self.compare(other) == CONCURRENT

    def comparable_with(self, other: "VectorClock") -> bool:
        """True iff the clocks are ordered one way or the other."""
        return self.compare(other) != CONCURRENT

    # ------------------------------------------------------------------
    # Equality / hashing / repr
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VectorClock):
            return NotImplemented
        return self._components == other._components

    def __hash__(self) -> int:
        cached = self._hash
        if cached is None:
            cached = hash(self._components)
            self._hash = cached
        return cached

    def __repr__(self) -> str:
        return f"VectorClock({self._components!r})"

    def __str__(self) -> str:
        return "<" + ",".join(str(c) for c in self._components) + ">"

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _check_dimension(self, other: "VectorClock") -> None:
        try:
            if len(other._components) == len(self._components):
                return
        except AttributeError:
            raise ClockError(
                f"cannot combine VectorClock with {type(other).__name__}"
            ) from None
        raise ClockError(
            f"dimension mismatch: {self.dimension} vs {other.dimension}"
        )

    def _check_index(self, index: int) -> None:
        if not 0 <= index < len(self._components):
            raise ClockError(
                f"index {index} out of range for dimension {len(self._components)}"
            )
