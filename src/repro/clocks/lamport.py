"""Scalar Lamport clocks.

Included for contrast with vector clocks: a Lamport clock [Lamport 1978]
orders events consistently with causality but cannot *detect* concurrency —
two concurrent writes always end up with comparable scalar stamps.  The
owner protocol needs to recognise concurrent writes (the invalidation rule
fires only on strictly-older writestamps, and the dictionary's resolution
policy fires only on concurrent ones), which is why the paper uses vector
timestamps.  Tests use this class to demonstrate that distinction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ClockError

__all__ = ["LamportClock"]


@dataclass(frozen=True)
class LamportClock:
    """An immutable scalar logical clock value.

    Examples
    --------
    >>> c = LamportClock(0)
    >>> c = c.tick()
    >>> c = c.receive(LamportClock(10))
    >>> c.time
    11
    """

    time: int = 0

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ClockError(f"Lamport time must be non-negative, got {self.time}")

    def tick(self) -> "LamportClock":
        """Advance for a local event."""
        return LamportClock(self.time + 1)

    def receive(self, other: "LamportClock") -> "LamportClock":
        """Merge with an incoming stamp: max of the two, plus one."""
        return LamportClock(max(self.time, other.time) + 1)

    def __lt__(self, other: "LamportClock") -> bool:
        return self.time < other.time

    def __le__(self, other: "LamportClock") -> bool:
        return self.time <= other.time

    def __str__(self) -> str:
        return f"L{self.time}"
