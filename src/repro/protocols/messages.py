"""Protocol message types.

Message ``kind`` strings follow the paper's names where the paper names
them (``READ``, ``R_REPLY``, ``WRITE``, ``W_REPLY`` in Figure 4); the
baselines use distinct prefixes so network statistics can attribute every
message to a protocol role.

Values and vector clocks are carried by reference — :class:`VectorClock`
is immutable, and simulated nodes never mutate payload values in place.
The wire layer (:mod:`repro.protocols.wire`) assigns every message a
deterministic byte cost and can delta-encode the vector-clock fields per
channel; message *counts* are unaffected by either.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, ClassVar, List, Optional, Tuple

from repro.clocks import VectorClock

__all__ = [
    "EntryPayload",
    "ReadRequest",
    "ReadReply",
    "WriteRequest",
    "WriteReply",
    "WriteBatch",
    "BatchedWriteReply",
    "WriteBatchReply",
    "BroadcastBatch",
    "AtomicReadRequest",
    "AtomicReadReply",
    "AtomicWriteRequest",
    "AtomicWriteReply",
    "Invalidate",
    "InvalidateAck",
    "CentralRead",
    "CentralWrite",
    "CentralReply",
    "BroadcastWrite",
]


@dataclass(frozen=True, slots=True)
class EntryPayload:
    """One (location, value, writestamp, writer) tuple inside a reply."""

    location: str
    value: Any
    stamp: VectorClock
    writer: int


# ----------------------------------------------------------------------
# Causal owner protocol (Figure 4)
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class ReadRequest:
    """``[READ, x]`` — a read miss asking the owner for a current copy."""

    kind: ClassVar[str] = "READ"
    request_id: int
    location: str
    unit: str


@dataclass(frozen=True, slots=True)
class ReadReply:
    """``[R_REPLY, x, v', VT']`` — the owner's copy.

    With page granularity the reply carries every location of the unit the
    owner currently holds; ``stamp`` is the writestamp the reader's
    invalidation sweep compares against (the requested location's stamp in
    word mode; the merged unit stamp in page mode).
    """

    kind: ClassVar[str] = "R_REPLY"
    request_id: int
    location: str
    entries: Tuple[EntryPayload, ...]
    stamp: VectorClock


@dataclass(frozen=True, slots=True)
class WriteRequest:
    """``[WRITE, x, v, VT_i]`` — ask the owner to certify a write."""

    kind: ClassVar[str] = "WRITE"
    request_id: int
    location: str
    value: Any
    stamp: VectorClock


@dataclass(frozen=True, slots=True)
class WriteReply:
    """``[W_REPLY, x, v, VT']`` — certification result.

    ``applied`` is False when the owner's conflict-resolution policy
    rejected the write (the dictionary's owner-favoured policy);
    ``current`` then carries the surviving entry so the writer can cache
    it.
    """

    kind: ClassVar[str] = "W_REPLY"
    request_id: int
    location: str
    value: Any
    stamp: VectorClock
    applied: bool = True
    current: Optional[EntryPayload] = None


# ----------------------------------------------------------------------
# Batched causal owner protocol (the wire-level fast path)
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class WriteBatch:
    """A run of write-behind certifications for one owner, one frame.

    ``writes`` are :class:`WriteRequest` sub-messages in program order
    (their stamps' writer components are strictly increasing); the owner
    applies them in order, exactly as if they had arrived individually
    on the FIFO channel, and answers with one :class:`WriteBatchReply`.
    """

    kind: ClassVar[str] = "W_BATCH"
    request_id: int
    writes: Tuple[WriteRequest, ...]


@dataclass(frozen=True, slots=True)
class BatchedWriteReply:
    """One certification outcome inside a :class:`WriteBatchReply`.

    ``stamp`` is the canonical (owner-merged) writestamp of the
    certified write; ``current`` carries the surviving entry when the
    owner's policy rejected the write, mirroring
    :attr:`WriteReply.current`.
    """

    location: str
    stamp: VectorClock
    applied: bool = True
    current: Optional[EntryPayload] = None


@dataclass(frozen=True, slots=True)
class WriteBatchReply:
    """The owner's piggybacked reply to a :class:`WriteBatch`.

    One frame acknowledges every write of the batch — the per-write
    acknowledgements ride ("are piggybacked") on a single reply whose
    ``stamp`` is the owner's externally visible vector time after the
    whole batch applied.
    """

    kind: ClassVar[str] = "W_BATCH_REPLY"
    request_id: int
    replies: Tuple[BatchedWriteReply, ...]
    stamp: VectorClock


# ----------------------------------------------------------------------
# Atomic owner DSM baseline (Li–Hudak-style copyset invalidation)
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class AtomicReadRequest:
    """Read miss; the owner will add the requester to the copyset."""

    kind: ClassVar[str] = "A_READ"
    request_id: int
    location: str


@dataclass(frozen=True, slots=True)
class AtomicReadReply:
    """Owner's current value for a read miss.

    ``stamp``/``writer`` identify the write that produced the value, used
    only for history recording (they play no protocol role).
    """

    kind: ClassVar[str] = "A_REPLY"
    request_id: int
    location: str
    value: Any
    stamp: VectorClock
    writer: int


@dataclass(frozen=True, slots=True)
class AtomicWriteRequest:
    """Ask the owner to perform a coherent write.

    ``seq`` is the writer's local write counter; (writer, seq) is the
    globally unique identity of the write for history recording.
    """

    kind: ClassVar[str] = "A_WRITE"
    request_id: int
    location: str
    value: Any
    seq: int


@dataclass(frozen=True, slots=True)
class AtomicWriteReply:
    """Write completed: every stale copy has been invalidated."""

    kind: ClassVar[str] = "A_ACK"
    request_id: int
    location: str
    value: Any


@dataclass(frozen=True, slots=True)
class Invalidate:
    """Owner tells a copyset member to drop its copy."""

    kind: ClassVar[str] = "INV"
    request_id: int
    location: str


@dataclass(frozen=True, slots=True)
class InvalidateAck:
    """Copyset member confirms the copy is gone."""

    kind: ClassVar[str] = "INV_ACK"
    request_id: int
    location: str


# ----------------------------------------------------------------------
# Central-server memory
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class CentralRead:
    """Client read RPC."""

    kind: ClassVar[str] = "CS_READ"
    request_id: int
    location: str


@dataclass(frozen=True, slots=True)
class CentralWrite:
    """Client write RPC.  ``seq`` makes (writer, seq) the write identity."""

    kind: ClassVar[str] = "CS_WRITE"
    request_id: int
    location: str
    value: Any
    seq: int


@dataclass(frozen=True, slots=True)
class CentralReply:
    """Server response to either RPC, carrying the entry's identity."""

    kind: ClassVar[str] = "CS_REPLY"
    request_id: int
    location: str
    value: Any
    stamp: VectorClock
    writer: int


# ----------------------------------------------------------------------
# Causal broadcast memory (the Figure 3 non-example)
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class BroadcastWrite:
    """A write disseminated as an ISIS-style causal broadcast.

    ``stamp`` counts *broadcasts delivered per sender* (the standard causal
    broadcast vector), not write events; the delivery rule holds a message
    until all causally prior broadcasts have been delivered.
    """

    kind: ClassVar[str] = "CB_WRITE"
    sender: int
    seq: int
    location: str
    value: Any
    stamp: VectorClock


@dataclass(frozen=True, slots=True)
class BroadcastBatch:
    """A flush of coalesced broadcast writes in one frame.

    ``writes`` are the surviving (post-coalescing) broadcasts of one
    flush window, ordered by the sender's own vector component.  A
    receiver delivers each in order under the batched CBCAST rule: the
    sender component may *jump* (coalesced-away broadcasts leave gaps),
    but every other component must already be delivered.
    """

    kind: ClassVar[str] = "CB_BATCH"
    sender: int
    writes: Tuple[BroadcastWrite, ...]
