"""Runtime state-invariant monitoring for the causal owner protocol.

The paper's correctness argument (Section 3.2) rests on state invariants
that the TR proves inductively.  This module checks the key ones *live*
against running :class:`~repro.protocols.causal_owner.CausalOwnerNode`
instances, the way a production system would assert its own data-
structure health:

I1  **Clock monotonicity** — a node's vector time never decreases.
I2  **Knowledge covers cache** — every entry in ``M_i`` has a writestamp
    ``<= VT_i``: a node has merged the stamp of everything it stores.
I3  **Own-component authority** — ``VT_i[i]`` equals the number of
    writes ``P_i`` has issued; no one else's merges can advance it.
I4  **No bottom owned entries** — owned locations are always readable.
I5  **Writer component positivity** — every non-initial entry's stamp
    has a positive component for its writer (it reflects that write).

Violations raise :class:`InvariantViolation` (tests) or are collected
(audit mode).  The monitor can run once, after a simulation, or be
installed to re-check on a fixed simulated-time period.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.clocks import VectorClock
from repro.errors import ReproError
from repro.memory.local_store import INITIAL_WRITER
from repro.protocols.base import DSMCluster
from repro.protocols.causal_owner import CausalOwnerNode

__all__ = ["InvariantViolation", "Violation", "InvariantMonitor"]


class InvariantViolation(ReproError):
    """A protocol state invariant failed."""


@dataclass(frozen=True)
class Violation:
    """One observed invariant failure."""

    invariant: str
    node_id: int
    detail: str
    time: float

    def __str__(self) -> str:
        return (
            f"[{self.invariant}] node {self.node_id} at t={self.time}: "
            f"{self.detail}"
        )


class InvariantMonitor:
    """Checks causal-protocol invariants over a cluster's nodes.

    Parameters
    ----------
    cluster:
        A cluster running the ``causal`` protocol.
    strict:
        Raise on the first violation (default); otherwise collect into
        :attr:`violations` for later inspection.
    """

    def __init__(self, cluster: DSMCluster, strict: bool = True):
        if cluster.protocol != "causal":
            raise ReproError(
                "the invariant monitor understands the causal protocol only"
            )
        self.cluster = cluster
        self.strict = strict
        self.violations: List[Violation] = []
        self.checks_run = 0
        self._last_vt: Dict[int, VectorClock] = {}

    # ------------------------------------------------------------------
    # Checking
    # ------------------------------------------------------------------
    def check_now(self) -> List[Violation]:
        """Run every invariant against every node; return new violations."""
        found: List[Violation] = []
        for node in self.cluster.nodes:
            assert isinstance(node, CausalOwnerNode)
            found.extend(self._check_node(node))
        self.checks_run += 1
        self.violations.extend(found)
        if found and self.strict:
            raise InvariantViolation(str(found[0]))
        return found

    def _check_node(self, node: CausalOwnerNode) -> List[Violation]:
        found: List[Violation] = []
        now = self.cluster.sim.now

        def report(invariant: str, detail: str) -> None:
            found.append(
                Violation(
                    invariant=invariant, node_id=node.node_id,
                    detail=detail, time=now,
                )
            )

        # I1: clock monotonicity.
        previous = self._last_vt.get(node.node_id)
        if previous is not None and not previous <= node.vt:
            report("I1", f"vector time regressed: {previous} -> {node.vt}")
        self._last_vt[node.node_id] = node.vt

        # I3: own component counts this node's writes exactly.
        if node.vt[node.node_id] != node.stats.writes:
            report(
                "I3",
                f"VT[i]={node.vt[node.node_id]} but issued "
                f"{node.stats.writes} writes",
            )

        # Per-entry checks (I2, I4, I5).
        for location in sorted(
            node.store.cached_locations() | node.store.owned_locations()
        ):
            entry = node.store.get(location)
            if entry is None:
                if node.store.owns(location):
                    report("I4", f"owned location {location!r} is bottom")
                continue
            if not entry.stamp <= node.vt:
                report(
                    "I2",
                    f"{location!r} stamped {entry.stamp} beyond VT "
                    f"{node.vt}",
                )
            if entry.writer != INITIAL_WRITER:
                if not 0 <= entry.writer < node.n_nodes:
                    report("I5", f"{location!r} has writer {entry.writer}")
                elif entry.stamp[entry.writer] <= 0:
                    report(
                        "I5",
                        f"{location!r} stamp {entry.stamp} lacks its "
                        f"writer {entry.writer}'s component",
                    )
        return found

    # ------------------------------------------------------------------
    # Periodic installation
    # ------------------------------------------------------------------
    def install(self, period: float = 5.0, until: Optional[float] = None) -> None:
        """Re-check every ``period`` simulated time units while running."""
        if period <= 0:
            raise ReproError(f"period must be positive, got {period}")

        def tick() -> None:
            self.check_now()
            if until is None or self.cluster.sim.now + period <= until:
                if self.cluster.sim.pending_events > 0:
                    self.cluster.sim.schedule(period, tick)

        self.cluster.sim.schedule(period, tick)

    def summary(self) -> str:
        """One-line audit summary."""
        status = "clean" if not self.violations else (
            f"{len(self.violations)} violations"
        )
        return f"{self.checks_run} checks, {status}"
