"""Distributed shared memory protocol engines.

Five memory systems are implemented, all over the same simulator, network
and local-store substrate, so their message counts are directly comparable:

:mod:`repro.protocols.causal_owner`
    **The paper's contribution** — the simple owner protocol of Figure 4
    implementing causal memory, with the enhancements the paper sketches
    (page granularity, read-only segments, discard policies, programmable
    concurrent-write resolution).
:mod:`repro.protocols.atomic_owner`
    The comparison target of Section 4.1: a Li–Hudak-style coherent DSM
    where an owner maintains a copyset and every write invalidates all
    cached copies before completing.
:mod:`repro.protocols.li_hudak`
    Li's *actual* dynamic distributed manager (migrating ownership with
    prob-owner forwarding and path compression) — the full form of the
    comparator the paper cites as [15].
:mod:`repro.protocols.central_server`
    The simplest strongly consistent memory: one server, every operation is
    a round trip.  A sanity baseline.
:mod:`repro.protocols.causal_broadcast`
    An ISIS-style "causal broadcast memory" — each write is causally
    broadcast and applied on delivery.  The paper's Figure 3 shows this is
    *not* causal memory; we reproduce the anomaly.

:mod:`repro.protocols.wire` is not a protocol but the shared wire model:
a deterministic byte cost for every message and an optional per-channel
delta encoder for vector writestamps (see DESIGN.md Section 4.5).
"""

from repro.protocols.base import DSMCluster, DSMNode, OpStats, WriteOutcome
from repro.protocols.causal_owner import CausalOwnerNode
from repro.protocols.atomic_owner import AtomicOwnerNode
from repro.protocols.central_server import CentralServerClient, CentralServerNode
from repro.protocols.causal_broadcast import CausalBroadcastNode
from repro.protocols.li_hudak import LiHudakNode
from repro.protocols.policies import (
    ConflictPolicy,
    LastWriterWins,
    OwnerFavoured,
)
from repro.protocols.wire import MessageCost, WireCodec, measure_message

__all__ = [
    "DSMCluster",
    "DSMNode",
    "OpStats",
    "WriteOutcome",
    "CausalOwnerNode",
    "AtomicOwnerNode",
    "CentralServerNode",
    "CentralServerClient",
    "CausalBroadcastNode",
    "LiHudakNode",
    "ConflictPolicy",
    "LastWriterWins",
    "OwnerFavoured",
    "MessageCost",
    "WireCodec",
    "measure_message",
]
