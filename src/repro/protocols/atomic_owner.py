"""The atomic (strongly consistent) owner DSM baseline.

Section 4.1 compares the causal protocol against "a comparable owner
protocol for atomic memory where locations (pages) are stored at the
owner and cached at other nodes.  An atomic write requires that all
cached copies in the system be invalidated.  (In Li [15], a
representative atomic DSM, a read set is maintained by the owner and
invalidation messages are sent to all nodes in the read set.)"

This engine implements exactly that comparison target:

* the owner of a location maintains its *copyset* (Li's read set);
* a read miss fetches the value from the owner, which adds the reader to
  the copyset (2 messages);
* every write is serialized at the owner; before the new value is
  installed, ``INV`` messages go to every copyset member and the owner
  waits for all ``INV_ACK`` s (``2 * |copyset|`` messages — the paper's
  lower bound counts only the invalidations, hence its "at least");
* while a write to a location is in flight, further reads and writes of
  that location queue at the owner, so no processor can observe the new
  value before every stale copy is gone.

With blocking processors, FIFO channels, and install-after-invalidate
writes, executions of this protocol are sequentially consistent — which
the test suite verifies mechanically with the checker of
:mod:`repro.checker.sequential_checker` on randomized workloads.

Vector clocks play no protocol role here; entries carry a synthetic
stamp built from the writer's local write counter purely so recorded
histories have unique write identities.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, Optional, Set, Tuple

from repro.clocks import VectorClock
from repro.errors import ProtocolError
from repro.memory.local_store import MemoryEntry
from repro.protocols.base import DSMNode, WriteOutcome
from repro.protocols.messages import (
    AtomicReadReply,
    AtomicReadRequest,
    AtomicWriteReply,
    AtomicWriteRequest,
    Invalidate,
    InvalidateAck,
)
from repro.sim import Future

__all__ = ["AtomicOwnerNode"]


def _identity_stamp(n_nodes: int, writer: int, seq: int) -> VectorClock:
    """A unique per-(writer, seq) stamp for history recording."""
    components = [0] * n_nodes
    components[writer] = seq
    return VectorClock(components)


class _WriteJob:
    """One write being serialized at the owner."""

    __slots__ = ("writer", "value", "seq", "request_id", "awaiting", "started")

    def __init__(
        self,
        writer: int,
        value: Any,
        seq: int,
        request_id: int,
        started: float = 0.0,
    ):
        self.writer = writer
        self.value = value
        self.seq = seq
        self.request_id = request_id
        self.awaiting: Set[int] = set()
        self.started = started


class AtomicOwnerNode(DSMNode):
    """One processor of the coherent (atomic) DSM baseline."""

    def __init__(self, node_id: int, **kwargs: Any):
        super().__init__(node_id, **kwargs)
        self._write_seq = 0
        self._pending_reads: Dict[int, Tuple[Future, str, float]] = {}
        self._pending_writes: Dict[int, Tuple[Future, str, Any, int, float]] = {}
        # Owner-side state.
        self._copyset: Dict[str, Set[int]] = {}
        self._active_writes: Dict[str, _WriteJob] = {}
        self._deferred: Dict[str, Deque[Callable[[], None]]] = {}
        # Local futures for writes to owned locations (serialized too).
        self._local_write_futures: Dict[int, Future] = {}

    # ------------------------------------------------------------------
    # Application API
    # ------------------------------------------------------------------
    def read(self, location: str) -> Future:
        """Read: local on a valid copy, owner round trip on a miss."""
        self.stats.reads += 1
        future = Future(label=f"aread:{self.node_id}:{location}")
        if self.store.owns(location):
            # Owner reads serialize with in-flight writes to stay atomic.
            if location in self._active_writes or self._deferred.get(location):
                self._defer(location, lambda: self._finish_local_read(location, future))
            else:
                self._finish_local_read(location, future)
            return future
        if self.store.is_valid(location):
            entry = self.store.get(location)
            assert entry is not None
            self.stats.local_read_hits += 1
            self._record_read(location, entry)
            future.resolve(entry.value)
            return future
        self.stats.remote_reads += 1
        request_id = self.next_request_id()
        self._pending_reads[request_id] = (future, location, self.runtime.now)
        self.runtime.send(
            self.node_id,
            self.namespace.owner(location),
            AtomicReadRequest(request_id=request_id, location=location),
        )
        return future

    def _finish_local_read(self, location: str, future: Future) -> None:
        entry = self.store.get(location)
        assert entry is not None
        self.stats.local_read_hits += 1
        self._record_read(location, entry)
        future.resolve(entry.value)

    def write(self, location: str, value: Any) -> Future:
        """Write: serialized at the owner, completes after invalidation."""
        self.stats.writes += 1
        self._write_seq += 1
        seq = self._write_seq
        future = Future(label=f"awrite:{self.node_id}:{location}")
        if self.store.owns(location):
            self.stats.local_writes += 1
            request_id = self.next_request_id()
            self._local_write_futures[request_id] = future
            job = _WriteJob(
                writer=self.node_id, value=value, seq=seq,
                request_id=request_id, started=self.runtime.now,
            )
            self._enqueue_write(location, job)
        else:
            self.stats.remote_writes += 1
            request_id = self.next_request_id()
            self._pending_writes[request_id] = (
                future, location, value, seq, self.runtime.now,
            )
            self.runtime.send(
                self.node_id,
                self.namespace.owner(location),
                AtomicWriteRequest(
                    request_id=request_id, location=location, value=value, seq=seq
                ),
            )
        return future

    # ------------------------------------------------------------------
    # Message dispatch
    # ------------------------------------------------------------------
    def handle_message(self, src: int, message: object) -> None:
        """Dispatch one delivered message (runs atomically)."""
        if isinstance(message, AtomicReadRequest):
            self._serve_read(src, message)
        elif isinstance(message, AtomicWriteRequest):
            self._serve_write(src, message)
        elif isinstance(message, AtomicReadReply):
            self._complete_read(message)
        elif isinstance(message, AtomicWriteReply):
            self._complete_write(message)
        elif isinstance(message, Invalidate):
            self._serve_invalidate(src, message)
        elif isinstance(message, InvalidateAck):
            self._absorb_ack(src, message)
        else:
            raise ProtocolError(
                f"atomic node {self.node_id} got unexpected {message!r}"
            )

    # ------------------------------------------------------------------
    # Owner-side read service
    # ------------------------------------------------------------------
    def _serve_read(self, src: int, msg: AtomicReadRequest) -> None:
        if not self.store.owns(msg.location):
            raise ProtocolError(
                f"node {self.node_id} received A_READ for {msg.location!r}"
            )
        if msg.location in self._active_writes or self._deferred.get(msg.location):
            self._defer(msg.location, lambda: self._do_serve_read(src, msg))
            return
        self._do_serve_read(src, msg)

    def _do_serve_read(self, src: int, msg: AtomicReadRequest) -> None:
        # Deferred thunks must NOT re-check the deferred queue: two reads
        # parked behind the same write would each see the other queued
        # and re-defer forever once drained.  Like _start_write, only an
        # active write justifies going back to sleep.
        if msg.location in self._active_writes:
            self._defer(msg.location, lambda: self._do_serve_read(src, msg))
            return
        entry = self.store.get(msg.location)
        assert entry is not None
        self._copyset.setdefault(msg.location, set()).add(src)
        self.runtime.send(
            self.node_id,
            src,
            AtomicReadReply(
                request_id=msg.request_id,
                location=msg.location,
                value=entry.value,
                stamp=entry.stamp,
                writer=entry.writer,
            ),
        )

    def _complete_read(self, msg: AtomicReadReply) -> None:
        future, location, started = self._pending_reads.pop(msg.request_id)
        entry = MemoryEntry(value=msg.value, stamp=msg.stamp, writer=msg.writer)
        self.store.put(location, entry)
        self._notify_watchers(location, msg.value)
        self.stats.blocked_time += self.runtime.now - started
        self._record_read(location, entry)
        future.resolve(msg.value)

    # ------------------------------------------------------------------
    # Owner-side write serialization
    # ------------------------------------------------------------------
    def _serve_write(self, src: int, msg: AtomicWriteRequest) -> None:
        if not self.store.owns(msg.location):
            raise ProtocolError(
                f"node {self.node_id} received A_WRITE for {msg.location!r}"
            )
        job = _WriteJob(
            writer=src, value=msg.value, seq=msg.seq, request_id=msg.request_id
        )
        self._enqueue_write(msg.location, job)

    def _enqueue_write(self, location: str, job: _WriteJob) -> None:
        if location in self._active_writes or self._deferred.get(location):
            self._defer(location, lambda: self._start_write(location, job))
        else:
            self._start_write(location, job)

    def _start_write(self, location: str, job: _WriteJob) -> None:
        if location in self._active_writes:
            # Re-deferred by the drain loop; keep strict FIFO.
            self._defer(location, lambda: self._start_write(location, job))
            return
        self._active_writes[location] = job
        targets = self._copyset.get(location, set()) - {self.node_id, job.writer}
        job.awaiting = set(targets)
        if self.obs is not None:
            self.obs.emit(
                "proto", "inv.round", node=self.node_id,
                clock=_identity_stamp(self.n_nodes, job.writer, job.seq),
                location=location, writer=job.writer,
                targets=sorted(targets),
            )
        if not targets:
            self._finish_write(location)
            return
        for target in sorted(targets):
            self.runtime.send(
                self.node_id,
                target,
                Invalidate(request_id=job.request_id, location=location),
            )

    def _serve_invalidate(self, src: int, msg: Invalidate) -> None:
        if not self.store.owns(msg.location):
            self.store.invalidate(msg.location)
        self.runtime.send(
            self.node_id,
            src,
            InvalidateAck(request_id=msg.request_id, location=msg.location),
        )

    def _absorb_ack(self, src: int, msg: InvalidateAck) -> None:
        job = self._active_writes.get(msg.location)
        if job is None or job.request_id != msg.request_id:
            raise ProtocolError(
                f"stray INV_ACK for {msg.location!r} at node {self.node_id}"
            )
        job.awaiting.discard(src)
        if not job.awaiting:
            self._finish_write(msg.location)

    def _finish_write(self, location: str) -> None:
        job = self._active_writes.pop(location)
        entry = MemoryEntry(
            value=job.value,
            stamp=_identity_stamp(self.n_nodes, job.writer, job.seq),
            writer=job.writer,
        )
        if self.obs is not None:
            self.obs.emit(
                "proto", "op.write.done", node=self.node_id,
                clock=entry.stamp, location=location, writer=job.writer,
            )
        self.store.put(location, entry)
        self._notify_watchers(location, job.value)
        if job.writer == self.node_id:
            self._copyset[location] = set()
            self._record_write(location, job.value, entry)
            self.stats.blocked_time += self.runtime.now - job.started
            future = self._local_write_futures.pop(job.request_id)
            future.resolve(WriteOutcome(location=location, value=job.value))
        else:
            self._copyset[location] = {job.writer}
            self.runtime.send(
                self.node_id,
                job.writer,
                AtomicWriteReply(
                    request_id=job.request_id, location=location, value=job.value
                ),
            )
        self._drain(location)

    def _complete_write(self, msg: AtomicWriteReply) -> None:
        future, location, value, seq, started = self._pending_writes.pop(
            msg.request_id
        )
        entry = MemoryEntry(
            value=value,
            stamp=_identity_stamp(self.n_nodes, self.node_id, seq),
            writer=self.node_id,
        )
        self.store.put(location, entry)
        self.stats.blocked_time += self.runtime.now - started
        self._record_write(location, value, entry)
        future.resolve(WriteOutcome(location=location, value=value))

    # ------------------------------------------------------------------
    # Deferred-operation queue (per-location serialization)
    # ------------------------------------------------------------------
    def _defer(self, location: str, thunk: Callable[[], None]) -> None:
        self._deferred.setdefault(location, deque()).append(thunk)

    def _drain(self, location: str) -> None:
        # A drained thunk can itself finish a write and re-enter _drain,
        # so re-fetch the queue each round and tolerate its removal.
        while location not in self._active_writes:
            queue = self._deferred.get(location)
            if not queue:
                self._deferred.pop(location, None)
                return
            thunk = queue.popleft()
            thunk()
