"""A central-server atomic memory.

The simplest strongly consistent DSM: one server holds every location and
every read or write is a blocking RPC (2 messages, always).  The paper
dismisses this design for the dictionary ("an atomic shared memory
solution that maintains a single common copy ... is not interesting")
because it forgoes caching entirely; it is included here as the
floor-of-the-design-space baseline for the message-count experiments and
as a trivially correct memory for differential testing (its executions
are sequentially consistent by construction, since the server applies
operations in a single total order and clients block per operation).
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from repro.clocks import VectorClock
from repro.errors import ProtocolError
from repro.memory.namespace import Namespace
from repro.memory.local_store import MemoryEntry
from repro.protocols.base import DSMNode, WriteOutcome
from repro.protocols.messages import CentralRead, CentralReply, CentralWrite
from repro.sim import Future

__all__ = ["CentralServerNode", "CentralServerClient"]


def _identity_stamp(n_nodes: int, writer: int, seq: int) -> VectorClock:
    components = [0] * n_nodes
    components[writer] = seq
    return VectorClock(components)


class CentralServerNode(DSMNode):
    """The server: owns every location, applies RPCs in arrival order."""

    def __init__(self, node_id: int, *, namespace: Namespace, **kwargs: Any):
        # The server owns everything; clients' namespace is irrelevant here.
        owns_all = Namespace(node_id + 1, owner_fn=lambda unit: node_id)
        super().__init__(node_id, namespace=owns_all, **kwargs)

    def read(self, location: str) -> Future:  # pragma: no cover - not an app node
        raise ProtocolError("the central server hosts no application process")

    def write(self, location: str, value: Any) -> Future:  # pragma: no cover
        raise ProtocolError("the central server hosts no application process")

    def handle_message(self, src: int, message: object) -> None:
        """Serve one RPC."""
        if isinstance(message, CentralRead):
            entry = self.store.get(message.location)
            assert entry is not None
            if self.obs is not None:
                self.obs.emit(
                    "proto", "serve.read", node=self.node_id,
                    clock=entry.stamp, location=message.location,
                    requester=src,
                )
            self.runtime.send(
                self.node_id,
                src,
                CentralReply(
                    request_id=message.request_id,
                    location=message.location,
                    value=entry.value,
                    stamp=entry.stamp,
                    writer=entry.writer,
                ),
            )
        elif isinstance(message, CentralWrite):
            entry = MemoryEntry(
                value=message.value,
                stamp=_identity_stamp(self.n_nodes, src, message.seq),
                writer=src,
            )
            self.store.put(message.location, entry)
            self._notify_watchers(message.location, message.value)
            if self.obs is not None:
                self.obs.emit(
                    "proto", "serve.write", node=self.node_id,
                    clock=entry.stamp, location=message.location, writer=src,
                )
            self.runtime.send(
                self.node_id,
                src,
                CentralReply(
                    request_id=message.request_id,
                    location=message.location,
                    value=message.value,
                    stamp=entry.stamp,
                    writer=entry.writer,
                ),
            )
        else:
            raise ProtocolError(f"central server got unexpected {message!r}")


class CentralServerClient(DSMNode):
    """A client: every operation is a blocking round trip to the server."""

    def __init__(self, node_id: int, *, server_id: int, **kwargs: Any):
        super().__init__(node_id, **kwargs)
        self.server_id = server_id
        self._write_seq = 0
        self._pending: Dict[int, Tuple[Future, str, Any, bool, float]] = {}

    def read(self, location: str) -> Future:
        """Read RPC (2 messages, unconditionally)."""
        self.stats.reads += 1
        self.stats.remote_reads += 1
        if self.obs is not None:
            self.obs.emit(
                "proto", "op.read", node=self.node_id,
                location=location, hit=False,
            )
        future = Future(label=f"csread:{self.node_id}:{location}")
        request_id = self.next_request_id()
        self._pending[request_id] = (future, location, None, True, self.runtime.now)
        self.runtime.send(
            self.node_id,
            self.server_id,
            CentralRead(request_id=request_id, location=location),
        )
        return future

    def write(self, location: str, value: Any) -> Future:
        """Write RPC (2 messages, unconditionally)."""
        self.stats.writes += 1
        self.stats.remote_writes += 1
        self._write_seq += 1
        if self.obs is not None:
            self.obs.emit(
                "proto", "op.write", node=self.node_id,
                clock=_identity_stamp(self.n_nodes, self.node_id, self._write_seq),
                location=location, mode="rpc",
            )
        future = Future(label=f"cswrite:{self.node_id}:{location}")
        request_id = self.next_request_id()
        self._pending[request_id] = (future, location, value, False, self.runtime.now)
        self.runtime.send(
            self.node_id,
            self.server_id,
            CentralWrite(
                request_id=request_id,
                location=location,
                value=value,
                seq=self._write_seq,
            ),
        )
        return future

    def discard(self, location: str) -> bool:
        """Clients hold no cache; discard is a no-op."""
        return False

    def handle_message(self, src: int, message: object) -> None:
        """Absorb an RPC reply."""
        if not isinstance(message, CentralReply):
            raise ProtocolError(
                f"central client {self.node_id} got unexpected {message!r}"
            )
        future, location, value, is_read, started = self._pending.pop(
            message.request_id
        )
        self.stats.blocked_time += self.runtime.now - started
        entry = MemoryEntry(
            value=message.value, stamp=message.stamp, writer=message.writer
        )
        if is_read:
            self._record_read(location, entry)
            future.resolve(message.value)
        else:
            self._record_write(location, value, entry)
            future.resolve(WriteOutcome(location=location, value=value))
