"""Common machinery shared by all DSM protocol engines.

A :class:`DSMNode` is one processor: it owns a slice of the namespace,
holds a :class:`~repro.memory.local_store.LocalStore`, and exposes the
blocking operations the paper's programs use — ``read`` and ``write``
return futures that application generators yield on.

A :class:`DSMCluster` wires ``n`` nodes of a chosen protocol onto one
simulator and network, spawns application processes, and exposes the
measurement surfaces (message statistics, per-node operation statistics,
and the recorded operation history that the consistency checkers consume).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.checker.history import HistoryRecorder
from repro.errors import ProtocolError, SimulationError
from repro.memory import LocalStore, Namespace
from repro.memory.local_store import INITIAL_WRITER, MemoryEntry
from repro.sim import Future, Network, Simulator, TaskScheduler
from repro.sim.latency import LatencyModel

__all__ = ["WriteOutcome", "OpStats", "DSMNode", "DSMCluster"]


@dataclass(frozen=True)
class WriteOutcome:
    """Result of a completed write operation.

    ``applied`` is False only when a rejecting conflict policy (the
    dictionary's owner-favoured policy) declined the write at the owner.
    """

    location: str
    value: Any
    applied: bool = True


@dataclass
class OpStats:
    """Per-node operation counters consumed by experiment reports."""

    reads: int = 0
    writes: int = 0
    local_read_hits: int = 0
    remote_reads: int = 0
    local_writes: int = 0
    remote_writes: int = 0
    rejected_writes: int = 0
    blocked_time: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view for table rendering."""
        return {
            "reads": self.reads,
            "writes": self.writes,
            "local_read_hits": self.local_read_hits,
            "remote_reads": self.remote_reads,
            "local_writes": self.local_writes,
            "remote_writes": self.remote_writes,
            "rejected_writes": self.rejected_writes,
            "blocked_time": self.blocked_time,
        }


class DSMNode:
    """Base class for one processor's protocol engine.

    Subclasses implement :meth:`read`, :meth:`write` and the message
    handler :meth:`handle_message`; the base class provides request ids,
    watcher notification (the oracle-polling instrument used by the solver
    harness), history recording hooks and statistics.
    """

    def __init__(
        self,
        node_id: int,
        sim: Optional[Simulator] = None,
        network: Optional[Network] = None,
        namespace: Namespace = None,
        n_nodes: int = 0,
        recorder: Optional[HistoryRecorder] = None,
        initial_value: Any = 0,
        arena_backend: Optional[str] = None,
        runtime=None,
    ):
        if runtime is None:
            # Legacy construction path: wrap the given simulator/network
            # pair behind the runtime handle (pure bound-method
            # forwarding — see repro.runtime.base).
            from repro.runtime.base import SimRuntime

            runtime = SimRuntime(sim, network)
        self.runtime = runtime
        self.node_id = node_id
        # Back-compat views: harnesses and tests reach the kernel and
        # network through the node.  Under the live driver both resolve
        # to the runtime itself (it implements both surfaces).
        self.sim = runtime.sim
        self.network = runtime.network
        self.namespace = namespace
        self.n_nodes = n_nodes
        self.recorder = recorder
        self.store = LocalStore(
            node_id, namespace, n_nodes, initial_value=initial_value,
            backend=arena_backend,
        )
        self.stats = OpStats()
        self._request_ids = itertools.count(1)
        self._watchers: Dict[str, List[Tuple[Callable[[Any], bool], Future]]] = {}
        #: Attached TraceCollector, or None (all emits are guarded).
        self.obs = None
        runtime.register(node_id, self.handle_message)

    # ------------------------------------------------------------------
    # The application-facing API (paper Section 3.1 semantics)
    # ------------------------------------------------------------------
    def read(self, location: str) -> Future:
        """Begin ``r_i(x)``; the future resolves with the value read."""
        raise NotImplementedError

    def write(self, location: str, value: Any) -> Future:
        """Begin ``w_i(x)v``; the future resolves with a WriteOutcome."""
        raise NotImplementedError

    def discard(self, location: str) -> bool:
        """The paper's ``discard``: drop one cached copy, if present."""
        if self.store.owns(location):
            return False
        return self.store.discard(location)

    def discard_all(self) -> int:
        """Drop the entire cache (replacement-policy extreme)."""
        return self.store.discard_all()

    def handle_message(self, src: int, message: object) -> None:
        """Dispatch one delivered message; runs atomically."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Watchers (oracle polling — a scheduler hint, not a protocol message)
    # ------------------------------------------------------------------
    def watch(self, location: str, predicate: Callable[[Any], bool]) -> Future:
        """A future resolving when this node's copy satisfies ``predicate``.

        Zero messages are exchanged: this is the idealised scheduler used
        to reproduce the paper's message counting, which assumes each
        handshake read happens exactly once (see DESIGN.md Section 2).
        The predicate is checked immediately and then after every local
        install to ``location``.
        """
        future = Future(label=f"watch:{self.node_id}:{location}")
        entry = self.store.get(location) if self.store.is_valid(location) else None
        if entry is not None and predicate(entry.value):
            future.resolve(entry.value)
            return future
        self._watchers.setdefault(location, []).append((predicate, future))
        return future

    def _notify_watchers(self, location: str, value: Any) -> None:
        waiting = self._watchers.get(location)
        if not waiting:
            return
        still_waiting = []
        for predicate, future in waiting:
            if predicate(value):
                future.resolve(value)
            else:
                still_waiting.append((predicate, future))
        if still_waiting:
            self._watchers[location] = still_waiting
        else:
            del self._watchers[location]

    # ------------------------------------------------------------------
    # History recording (feeds the consistency checkers)
    # ------------------------------------------------------------------
    def _record_read(self, location: str, entry: MemoryEntry) -> None:
        if self.recorder is not None:
            self.recorder.record_read(
                proc=self.node_id,
                location=location,
                value=entry.value,
                read_from=_write_identity(location, entry),
            )
        if self.obs is not None:
            self.obs.emit(
                "proto", "op.commit",
                node=self.node_id,
                clock=getattr(self, "vt", None),
                kind="r",
                location=location,
                value=entry.value,
                source=_write_identity(location, entry),
            )

    def _record_write(self, location: str, value: Any, entry: MemoryEntry) -> None:
        if self.recorder is not None:
            self.recorder.record_write(
                proc=self.node_id,
                location=location,
                value=value,
                write_id=_write_identity(location, entry),
            )
        if self.obs is not None:
            self.obs.emit(
                "proto", "op.commit",
                node=self.node_id,
                clock=getattr(self, "vt", None),
                kind="w",
                location=location,
                value=value,
                source=_write_identity(location, entry),
            )

    # ------------------------------------------------------------------
    # Misc helpers
    # ------------------------------------------------------------------
    def next_request_id(self) -> int:
        """A node-locally unique id for matching replies to requests."""
        return next(self._request_ids)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} node={self.node_id}>"


def _write_identity(location: str, entry: MemoryEntry) -> Tuple:
    """A globally unique identity for the write that produced ``entry``.

    Initial writes are identified per location; real writes by
    ``(writer, stamp[writer])`` — every write increments the writer's
    own vector component exactly once, so that component alone
    identifies the write, and it is invariant across the two copies of
    a certified write (the writer's and the owner's) even when their
    merged stamps differ.
    """
    if entry.writer == INITIAL_WRITER:
        return ("init", location)
    return (entry.writer, entry.stamp[entry.writer])


class DSMCluster:
    """``n`` processors running one DSM protocol over one simulated network.

    Parameters
    ----------
    n_nodes:
        Number of application processors (node ids ``0..n_nodes-1``).
    protocol:
        ``"causal"`` (Figure 4), ``"atomic"`` (copyset-invalidation
        baseline), ``"central"`` (central server), or ``"broadcast"``
        (ISIS-style causal broadcast memory).
    namespace:
        Ownership map; defaults to :meth:`Namespace.hashed`.
    policy:
        Concurrent-write resolution policy (causal protocol only).
    no_cache:
        Causal protocol only: disable caching of remote reads, which per
        Section 3.2 "results in a memory that satisfies atomic
        correctness".
    record_history:
        Record every application-level operation for the checkers.
    batching:
        Wire-level fast path (causal and broadcast protocols): coalesce
        writes into batch frames — see DESIGN.md Section 4.5.
    delta_stamps:
        Install a :class:`~repro.protocols.wire.WireCodec` on the
        network so vector-clock fields are delta-encoded per channel
        (byte accounting only; message contents round-trip exactly).
    wire_fast_lanes:
        With ``delta_stamps``: use the codec's specialised encode lanes
        for stampless and write-batch frames (the default).  ``False``
        forces every frame through the generic per-field walk — same
        bytes, same counters, only slower; exists so the lockstep
        property suite can assert the equivalence.
    arena_backend:
        Writestamp-arena backend for every node's store and the
        vectorised delivery/sweep paths: ``"numpy"``, ``"python"``,
        ``"auto"`` or None (consults ``REPRO_ARENA_BACKEND``, then
        autodetects) — see DESIGN.md §4.9.
    batch_delivery:
        Schedule each broadcast fan-out's same-instant deliveries as one
        kernel heap entry (:meth:`~repro.sim.kernel.Simulator.schedule_batch_at`).
        Event-order equivalent to individual scheduling; opt-in because
        it coarsens the explorer's interleaving granularity.

    Examples
    --------
    >>> cluster = DSMCluster(2, protocol="causal", seed=7)
    >>> def writer(api):
    ...     yield api.write("x", 41)
    ...     value = yield api.read("x")
    ...     return value
    >>> task = cluster.spawn(0, writer)
    >>> cluster.run()
    >>> task.result()
    41
    """

    def __init__(
        self,
        n_nodes: int,
        protocol: str = "causal",
        seed: int = 0,
        latency: Optional[LatencyModel] = None,
        namespace: Optional[Namespace] = None,
        policy: Optional[object] = None,
        initial_value: Any = 0,
        trace_messages: bool = False,
        record_history: bool = True,
        no_cache: bool = False,
        unsafe_write_behind: bool = False,
        batching: bool = False,
        delta_stamps: bool = False,
        wire_fast_lanes: bool = True,
        arena_backend: Optional[str] = None,
        batch_delivery: bool = False,
    ):
        if n_nodes <= 0:
            raise ProtocolError(f"need at least one node, got {n_nodes}")
        self.n_nodes = n_nodes
        self.protocol = protocol
        self.batching = batching
        self.delta_stamps = delta_stamps
        self.arena_backend = arena_backend
        self.sim = Simulator(seed=seed)
        codec = None
        if delta_stamps:
            from repro.protocols.wire import WireCodec

            codec = WireCodec(fast_lanes=wire_fast_lanes)
        self.network = Network(
            self.sim,
            latency=latency,
            trace_messages=trace_messages,
            codec=codec,
            batch_delivery=batch_delivery,
        )
        self.namespace = namespace or Namespace.hashed(n_nodes)
        self.scheduler = TaskScheduler(self.sim)
        from repro.runtime.base import SimRuntime

        #: The driver handle every node holds (see repro.runtime).
        self.runtime = SimRuntime(self.sim, self.network, self.scheduler)
        self.recorder = HistoryRecorder() if record_history else None
        #: The collector bound by attach_obs (None until attached).
        self._obs = None
        self.server: Optional[DSMNode] = None
        self.nodes: List[DSMNode] = self._build_nodes(
            protocol, policy, initial_value, no_cache, unsafe_write_behind,
            batching, arena_backend,
        )

    def _build_nodes(
        self,
        protocol: str,
        policy: Optional[object],
        initial_value: Any,
        no_cache: bool,
        unsafe_write_behind: bool,
        batching: bool,
        arena_backend: Optional[str],
    ) -> List[DSMNode]:
        # Local imports: the concrete engines subclass DSMNode from this
        # module, so importing them at module load would be circular.
        from repro.protocols.atomic_owner import AtomicOwnerNode
        from repro.protocols.causal_broadcast import CausalBroadcastNode
        from repro.protocols.causal_owner import CausalOwnerNode
        from repro.protocols.central_server import (
            CentralServerClient,
            CentralServerNode,
        )

        common = dict(
            runtime=self.runtime,
            namespace=self.namespace,
            n_nodes=self.n_nodes,
            recorder=self.recorder,
            initial_value=initial_value,
            arena_backend=arena_backend,
        )
        if protocol == "causal":
            return [
                CausalOwnerNode(
                    i,
                    policy=policy,
                    no_cache=no_cache,
                    unsafe_write_behind=unsafe_write_behind,
                    batching=batching,
                    **common,
                )
                for i in range(self.n_nodes)
            ]
        if no_cache or unsafe_write_behind:
            raise ProtocolError(
                "no_cache/unsafe_write_behind apply to the causal protocol only"
            )
        if batching and protocol != "broadcast":
            raise ProtocolError(
                "batching applies to the causal and broadcast protocols only"
            )
        if policy is not None:
            raise ProtocolError(
                "conflict policies apply to the causal protocol only"
            )
        if protocol == "atomic":
            return [AtomicOwnerNode(i, **common) for i in range(self.n_nodes)]
        if protocol == "li":
            from repro.protocols.li_hudak import LiHudakNode

            return [LiHudakNode(i, **common) for i in range(self.n_nodes)]
        if protocol == "central":
            self.server = CentralServerNode(
                self.n_nodes,
                runtime=self.runtime,
                namespace=self.namespace,
                n_nodes=self.n_nodes,
                recorder=None,
                initial_value=initial_value,
            )
            return [
                CentralServerClient(i, server_id=self.n_nodes, **common)
                for i in range(self.n_nodes)
            ]
        if protocol == "broadcast":
            return [
                CausalBroadcastNode(i, batching=batching, **common)
                for i in range(self.n_nodes)
            ]
        raise ProtocolError(f"unknown protocol {protocol!r}")

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    @property
    def obs(self):
        """The attached TraceCollector, or None when detached."""
        return self._obs

    def attach_obs(self, collector) -> None:
        """Attach one TraceCollector to every layer of this cluster.

        Binds the collector to the kernel clock and sets the ``obs``
        attribute on the kernel, the network (and its codec, if any),
        every node and its store, and the central server when present.
        Detached components keep ``obs = None`` and pay nothing — see
        DESIGN.md Section 4.7.

        Attaching is idempotent for the *same* collector (a no-op, so
        composed harnesses may attach defensively) and raises
        :class:`~repro.errors.ProtocolError` for a *different* one:
        silently rebinding would leave two collectors each believing
        they own the stream, and re-running attach used to double-emit
        spans through stale bindings.
        """
        if self._obs is not None:
            if self._obs is collector:
                return
            raise ProtocolError(
                "cluster already has a TraceCollector attached; "
                "attach_obs is one-shot per cluster"
            )
        self._obs = collector
        collector.bind(self.sim)
        self.sim.obs = collector
        self.network.obs = collector
        if self.network.codec is not None:
            self.network.codec.obs = collector
        for node in self.nodes:
            node.obs = collector
            node.store.obs = collector
        if self.server is not None:
            self.server.obs = collector
            self.server.store.obs = collector

    # ------------------------------------------------------------------
    # Running applications
    # ------------------------------------------------------------------
    def spawn(self, node_id: int, process: Callable, *args: Any, name: str = ""):
        """Start an application process on node ``node_id``.

        ``process`` is a generator function taking the node's API object
        first: ``process(api, *args)``.
        """
        api = self.nodes[node_id]
        gen = process(api, *args)
        return self.scheduler.spawn(
            gen, name=name or f"{process.__name__}@{node_id}"
        )

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        check_deadlock: bool = True,
    ) -> None:
        """Run the simulation to completion (or to ``until``)."""
        self.scheduler.run_all(
            until=until, max_events=max_events, check_deadlock=check_deadlock
        )

    # ------------------------------------------------------------------
    # Measurement surfaces
    # ------------------------------------------------------------------
    @property
    def stats(self):
        """Network-level message statistics."""
        return self.network.stats

    def node_stats(self) -> Dict[int, OpStats]:
        """Per-node operation statistics."""
        return {node.node_id: node.stats for node in self.nodes}

    def history(self):
        """The recorded operation history, as a checker-ready History."""
        if self.recorder is None:
            raise SimulationError("cluster was built with record_history=False")
        return self.recorder.build(n_procs=self.n_nodes)

    def watch(self, location: str, predicate: Callable[[Any], bool]) -> Future:
        """Watch the authoritative copy of ``location`` (see DSMNode.watch).

        For owner protocols the authoritative copy lives at the owner; for
        the central server, at the server; broadcast memory has no single
        authority, so callers should watch a specific node directly.
        """
        if self.protocol == "central":
            assert self.server is not None
            return self.server.watch(location, predicate)
        if self.protocol in ("broadcast", "li"):
            raise ProtocolError(
                f"{self.protocol!r} memory has no fixed authoritative node; "
                "use cluster.nodes[i].watch(...)"
            )
        owner = self.namespace.owner(location)
        return self.nodes[owner].watch(location, predicate)
