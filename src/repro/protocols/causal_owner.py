"""The paper's simple owner protocol (Figure 4) — causal DSM.

Every location has a fixed owner.  Reads of owned or cached locations are
local; a read miss sends ``[READ, x]`` to the owner and blocks for
``[R_REPLY, x, v', VT']``.  A write to a non-owned location sends
``[WRITE, x, v, VT_i]`` and blocks until the owner certifies it with
``[W_REPLY, x, v, VT']``.  Vector timestamps (*writestamps*) are attached
to every value; whenever a new value is introduced into a local memory —
by a read reply at the requester, or by a serviced ``WRITE`` at the owner
— every cached value with a strictly older writestamp is invalidated
("all cached values that could potentially participate in a violation of
causality", Section 3).

Faithfulness notes (see DESIGN.md Section 4.2):

* The writer performs **no invalidation sweep** when its ``W_REPLY``
  arrives — exactly as in Figure 4.  Certification creates no app-level
  reads-from edge into the writer, so its cached values remain live.
* The owner stores a certified write with its **merged** vector time, and
  the writer ends with the same stamp after its final ``update`` — both
  copies of the write carry one identical, globally unique writestamp.
* An incoming remote write is never strictly older than the owner's
  current entry (its own component is always ahead); it either dominates
  it or is concurrent with it.  Concurrent incoming writes are resolved
  by the configured :class:`~repro.protocols.policies.ConflictPolicy` —
  Figure 4 verbatim corresponds to
  :class:`~repro.protocols.policies.LastWriterWins`; the dictionary
  application of Section 4.2 uses
  :class:`~repro.protocols.policies.OwnerFavoured`.

Paper enhancements implemented as options:

* **Page granularity** — supply a paged
  :class:`~repro.memory.namespace.Namespace`; replies then carry every
  location of the unit the owner holds, and invalidation drops whole
  units.
* **Read-only segments** — namespace-declared read-only locations are
  exempt from invalidation (the solver's constant ``A`` and ``b``).
* **No-cache mode** — read replies are not cached, forcing "a request to
  the owner on every read", which per Section 3.2 "results in a memory
  that satisfies atomic correctness".

The wire-level fast path (``batching=True``, see DESIGN.md Section 4.5)
replaces per-write round trips with a bounded write-behind queue that
stays causal:

* A remote write completes immediately (the future resolves, a tentative
  copy is cached under the write's own stamp) and joins the queue.
  Adjacent queued writes to the same owner form a *run*; same-location
  writes within a run are **coalesced** (the superseded write's
  certification obligation transfers to its successor).
* Runs flush one at a time as :class:`~repro.protocols.messages.WriteBatch`
  frames, each acknowledged by a single piggybacked
  :class:`~repro.protocols.messages.WriteBatchReply` — cross-owner order
  is enforced by waiting for the previous run's ack, so a later write is
  never visible anywhere before an earlier write is certified.
* Flushes trigger on enqueue (one scheduler turn later, so a burst of
  writes in the same instant shares one frame), on a local read miss,
  and whenever a remote request has to wait on the queue.
* **Causal safety barrier**: while any own write is uncertified, this
  node serves no ``READ`` — incoming read requests are deferred until
  the queue drains.  Certifications (incoming batches) are served
  immediately, but the stamps they hand out are clamped to the node's
  *visible* vector time — the prefix of its own component covered by
  certified-or-owned writes — so no uncertified write's component ever
  leaves the node.  Together the two rules preserve exactly the
  Figure 4 invariant: any value a processor can observe causally
  follows only certified writes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.clocks import CONCURRENT, VectorClock
from repro.errors import ProtocolError
from repro.memory.local_store import MemoryEntry
from repro.protocols.base import DSMNode, WriteOutcome
from repro.protocols.messages import (
    BatchedWriteReply,
    EntryPayload,
    ReadReply,
    ReadRequest,
    WriteBatch,
    WriteBatchReply,
    WriteReply,
    WriteRequest,
)
from repro.protocols.policies import ConflictPolicy, LastWriterWins
from repro.sim import Future

__all__ = ["CausalOwnerNode"]

#: Flush-delay bound: how many scheduler turns a flush may wait for the
#: application to add more same-instant writes to the window.
_WB_MAX_DELAY_HOPS = 16
#: Run-size bound: a head run this large flushes regardless (the
#: "bounded" in bounded write-behind queue).
_WB_MAX_RUN = 32


@dataclass(frozen=True)
class _QueuedWrite:
    """One write-behind entry awaiting certification."""

    location: str
    value: Any
    stamp: VectorClock
    seq: int


@dataclass
class _Run:
    """Adjacent queued writes sharing one owner — one future batch frame.

    ``seqs`` lists every own-component value whose certification this
    run is responsible for, including writes coalesced away (their
    obligation transfers to the surviving write).
    """

    owner: int
    writes: List[_QueuedWrite]
    seqs: List[int]
    request_id: int = 0


class CausalOwnerNode(DSMNode):
    """One processor of the causal DSM (Figure 4 plus options)."""

    def __init__(
        self,
        node_id: int,
        *,
        policy: Optional[ConflictPolicy] = None,
        no_cache: bool = False,
        unsafe_write_behind: bool = False,
        batching: bool = False,
        **kwargs: Any,
    ):
        super().__init__(node_id, **kwargs)
        self.vt = VectorClock.zero(self.n_nodes)
        self.policy = policy or LastWriterWins()
        self.no_cache = no_cache
        # The "reducing the blocking of processors" temptation: complete
        # remote writes immediately instead of blocking for W_REPLY.
        # This is UNSAFE — it breaks causal memory (experiment E13 shows
        # the violation) — and exists to demonstrate why Figure 4's
        # writes block.
        self.unsafe_write_behind = unsafe_write_behind
        if batching and no_cache:
            raise ProtocolError(
                "batching requires caching (tentative entries live in the "
                "cache); no_cache+batching is not a meaningful mode"
            )
        if batching and unsafe_write_behind:
            raise ProtocolError(
                "batching already completes writes early, safely; combining "
                "it with unsafe_write_behind is contradictory"
            )
        self.batching = batching
        self._pending_reads: Dict[int, Tuple[Future, str, float]] = {}
        #: Per pending read: foreign stamps merged while its reply is in
        #: flight.  _complete_read replays the sweeps those stamps ran
        #: against payloads that were not yet cached (see _note_stamp).
        self._read_flight: Dict[int, List[VectorClock]] = {}
        #: Read replies rejected as overtaken and re-requested.
        self.stale_read_retries = 0
        self._pending_writes: Dict[
            int, Tuple[Optional[Future], str, Any, float]
        ] = {}
        # --- write-behind batching state (batching=True only) ---------
        #: Queued runs, oldest first; the head flushes next.
        self._wb_runs: List[_Run] = []
        #: The run whose WriteBatch is in flight (at most one).
        self._wb_outstanding: Optional[_Run] = None
        self._wb_flush_scheduled = False
        self._wb_flush_hops = 0
        self._wb_flush_mark = 0
        self._wb_enqueues = 0
        #: Own-component values written but not yet owner-certified.
        #: Non-empty == this node must not serve reads (safety barrier).
        self._wb_uncertified: set = set()
        #: Incoming ReadRequests parked until the queue drains.
        self._wb_deferred_reads: List[Tuple[int, ReadRequest]] = []
        #: Owned locations written locally while earlier own writes sat
        #: uncertified: their entry stamps omit the certified stamps of
        #: those writes and are patched by _restamp_owned on each ack.
        self._wb_owned_stale: Dict[str, None] = {}
        # Occupancy counters for the bandwidth report.
        self.wb_batches = 0
        self.wb_batched_writes = 0
        self.wb_coalesced = 0
        self.wb_deferred_read_count = 0

    # ------------------------------------------------------------------
    # r_i(x)v  (Figure 4, first procedure)
    # ------------------------------------------------------------------
    def read(self, location: str) -> Future:
        """Read ``location``; local on a hit, blocking request on a miss."""
        self.stats.reads += 1
        future = Future(label="read")
        # get() returns None exactly when is_valid() is False (owned
        # locations always materialise), so one lookup decides hit/miss.
        entry = self.store.get(location)
        if entry is not None:
            self.stats.local_read_hits += 1
            self._record_read(location, entry)
            if self.obs is not None:
                self.obs.emit(
                    "proto", "op.read", node=self.node_id, clock=self.vt,
                    location=location, hit=True,
                )
            future.resolve(entry.value)
            return future
        self.stats.remote_reads += 1
        if self.obs is not None:
            self.obs.emit(
                "proto", "op.read", node=self.node_id, clock=self.vt,
                location=location, hit=False,
                owner=self.namespace.owner(location),
            )
        if self.batching:
            # A read miss is a flush point: push queued writes out now so
            # the owner (FIFO channel) certifies them before serving us.
            self._wb_flush()
        self._send_read_request(future, location, self.runtime.now)
        return future

    def _send_read_request(
        self, future: Future, location: str, started: float
    ) -> None:
        """Dispatch (or re-dispatch) one read miss to the owner."""
        request_id = self.next_request_id()
        self._pending_reads[request_id] = (future, location, started)
        self._read_flight[request_id] = []
        self.runtime.send(
            self.node_id,
            self.namespace.owner(location),
            ReadRequest(
                request_id=request_id,
                location=location,
                unit=self.namespace.unit(location),
            ),
        )

    def _note_stamp(self, stamp: VectorClock) -> None:
        """Log a just-merged foreign stamp for reads whose reply is in flight.

        The protocol's cache invariant — no cached entry is strictly
        older than a stamp this node has merged — is maintained by the
        invalidation sweep, which only sees entries *present* when the
        stamp arrives.  A read reply in flight at that moment missed the
        sweep: its payloads may be strictly older than knowledge this
        node has since gained (certifying a peer's batch, another reply,
        a write ack).  _complete_read replays the missed sweeps against
        each payload before trusting it.
        """
        if self._read_flight:
            for log in self._read_flight.values():
                log.append(stamp)

    @staticmethod
    def _overtaken(stamp: VectorClock, flight: List[VectorClock]) -> bool:
        """Would any sweep missed while in flight have killed this stamp?"""
        for merged in flight:
            if stamp.strictly_less(merged):
                return True
        return False

    # ------------------------------------------------------------------
    # w_i(x)v  (Figure 4, second procedure)
    # ------------------------------------------------------------------
    def write(self, location: str, value: Any) -> Future:
        """Write ``location``; local if owned, certified by the owner if not."""
        self.stats.writes += 1
        self.vt = self.vt.increment(self.node_id)
        if self.obs is not None:
            mode = (
                "local" if self.store.owns(location)
                else ("batched" if self.batching else "remote")
            )
            self.obs.emit(
                "proto", "op.write", node=self.node_id, clock=self.vt,
                location=location, mode=mode,
            )
        future = Future(label="write")
        if self.store.owns(location):
            entry = MemoryEntry(value=value, stamp=self.vt, writer=self.node_id)
            self.store.put(location, entry)
            if self.batching and self._wb_uncertified:
                # This entry's stamp cannot yet cover the certified
                # stamps of the queued writes it follows in program
                # order; serving it as-is would under-inform readers'
                # invalidation sweeps.  Patch it as acks arrive.
                self._wb_owned_stale[location] = None
            self.stats.local_writes += 1
            self._record_write(location, value, entry)
            self._notify_watchers(location, value)
            future.resolve(WriteOutcome(location=location, value=value))
            return future
        self.stats.remote_writes += 1
        if self.batching:
            # Complete immediately, queue for certification.  Unlike
            # unsafe_write_behind this stays causal: while the write is
            # uncertified, this node defers incoming reads and clamps the
            # stamps it hands out, so the write is observable only here.
            seq = self.vt[self.node_id]
            entry = MemoryEntry(value=value, stamp=self.vt, writer=self.node_id)
            self.store.put(location, entry)
            self._record_write(location, value, entry)
            self._notify_watchers(location, value)
            self._wb_uncertified.add(seq)
            self._wb_enqueue(
                self.namespace.owner(location), location, value, self.vt, seq
            )
            future.resolve(WriteOutcome(location=location, value=value))
            # Scheduled (not immediate): writes issued later in this same
            # simulated instant join the same frame.
            self._schedule_flush()
            return future
        request_id = self.next_request_id()
        owner = self.namespace.owner(location)
        self.runtime.send(
            self.node_id,
            owner,
            WriteRequest(
                request_id=request_id,
                location=location,
                value=value,
                stamp=self.vt,
            ),
        )
        if self.unsafe_write_behind:
            # Complete immediately with a tentative cached entry; the
            # eventual W_REPLY only merges clocks.  (writer, VT[writer])
            # identifies the write, so the tentative and the owner's
            # copies share one identity despite differing merged stamps.
            self._pending_writes[request_id] = (
                None, location, value, self.runtime.now,
            )
            entry = MemoryEntry(value=value, stamp=self.vt, writer=self.node_id)
            if not self.no_cache:
                self.store.put(location, entry)
            self._record_write(location, value, entry)
            future.resolve(WriteOutcome(location=location, value=value))
            return future
        self._pending_writes[request_id] = (future, location, value, self.runtime.now)
        return future

    def discard(self, location: str) -> bool:
        """The paper's ``discard``, refusing to evict dirty lines.

        A tentative (uncertified) write-behind entry is a *dirty* cache
        line: evicting it before write-back would let the next read miss
        fetch causally older state from the owner — a read-your-writes
        violation.  Such lines stay cached until their run is acked.
        """
        if self.batching:
            cached = self.store.get(location)
            if (
                cached is not None
                and cached.writer == self.node_id
                and cached.stamp[self.node_id] in self._wb_uncertified
            ):
                return False
        return super().discard(location)

    # ------------------------------------------------------------------
    # Message dispatch
    # ------------------------------------------------------------------
    def handle_message(self, src: int, message: object) -> None:
        """Dispatch one delivered message (runs atomically)."""
        kind = type(message)
        if kind is ReadReply:
            self._complete_read(message)
        elif kind is ReadRequest:
            if self.batching and self._wb_uncertified:
                # Safety barrier: our cache holds tentative writes whose
                # components must not leak.  Park the read, hurry the
                # queue along, serve after the drain.
                self.wb_deferred_read_count += 1
                self._wb_deferred_reads.append((src, message))
                if self.obs is not None:
                    self.obs.emit(
                        "proto", "wb.defer_read", node=self.node_id,
                        clock=self.vt, location=message.location,
                        requester=src,
                    )
                self._wb_flush()
            else:
                self._serve_read(src, message)
        elif kind is WriteRequest:
            self._serve_write(src, message)
        elif kind is WriteReply:
            self._complete_write(message)
        elif kind is WriteBatch:
            self._serve_write_batch(src, message)
        elif kind is WriteBatchReply:
            self._complete_write_batch(message)
        else:
            raise ProtocolError(
                f"causal node {self.node_id} got unexpected {message!r}"
            )

    # ------------------------------------------------------------------
    # [READ, x] at the owner (Figure 4, third procedure)
    # ------------------------------------------------------------------
    def _serve_read(self, src: int, msg: ReadRequest) -> None:
        if not self.store.owns(msg.location):
            raise ProtocolError(
                f"node {self.node_id} received READ for {msg.location!r} "
                f"owned by {self.namespace.owner(msg.location)}"
            )
        requested = self.store.get(msg.location)
        assert requested is not None
        entries = [
            EntryPayload(
                location=msg.location,
                value=requested.value,
                stamp=requested.stamp,
                writer=requested.writer,
            )
        ]
        reply_stamp = requested.stamp
        # Page granularity: ship every location of the unit the owner holds.
        for other in self.store.locations_in_unit(msg.unit):
            if other == msg.location:
                continue
            entry = self.store.get(other)
            assert entry is not None
            entries.append(
                EntryPayload(
                    location=other,
                    value=entry.value,
                    stamp=entry.stamp,
                    writer=entry.writer,
                )
            )
            reply_stamp = reply_stamp.update(entry.stamp)
        self.runtime.send(
            self.node_id,
            src,
            ReadReply(
                request_id=msg.request_id,
                location=msg.location,
                entries=tuple(entries),
                stamp=reply_stamp,
            ),
        )

    def _complete_read(self, msg: ReadReply) -> None:
        future, location, started = self._pending_reads.pop(msg.request_id)
        flight = self._read_flight.pop(msg.request_id)
        # VT_i := update(VT_i, VT')
        self.vt = self.vt.update(msg.stamp)
        self._note_stamp(msg.stamp)
        if flight:
            requested = next(
                p for p in msg.entries if p.location == location
            )
            if self._overtaken(requested.stamp, flight):
                # The reply was overtaken: while it travelled, this node
                # merged a stamp that strictly dominates the payload —
                # had the value been cached it would have been swept, so
                # returning (or caching) it now could serve a value a
                # newer same-location write in our causal past already
                # overwrote.  Ask the owner again; by now it has applied
                # the write the dominating stamp carries word of.
                self.stale_read_retries += 1
                if self.obs is not None:
                    self.obs.emit(
                        "proto", "read.stale_retry", node=self.node_id,
                        clock=self.vt, location=location,
                        requested_stamp=requested.stamp,
                    )
                if self.batching:
                    self._wb_flush()
                self._send_read_request(future, location, started)
                return
        requested_entry: Optional[MemoryEntry] = None
        if self.no_cache:
            for payload in msg.entries:
                if payload.location == location:
                    requested_entry = MemoryEntry(
                        value=payload.value,
                        stamp=payload.stamp,
                        writer=payload.writer,
                    )
        else:
            # forall y in C_i : M_i[y].VT < VT'  =>  M_i[y] := bottom
            # Page-mates overtaken in flight (see _note_stamp) are
            # treated as not shipped: not installed, not kept.
            fresh = [
                payload for payload in msg.entries
                if not flight or payload.location == location
                or not self._overtaken(payload.stamp, flight)
            ]
            installed = [payload.location for payload in fresh]
            swept = self.store.invalidate_older_than(msg.stamp, keep=installed)
            if self.obs is not None and swept:
                # The triggering write is the requested payload's: its
                # (writer, own-component) pair names the write whose
                # arrival forced stale cached values out.
                requested = next(
                    p for p in msg.entries if p.location == location
                )
                self.obs.emit(
                    "proto", "inv.sweep", node=self.node_id, clock=self.vt,
                    invalidated=swept, cause="read_reply",
                    trigger=[requested.writer,
                             requested.stamp[requested.writer]]
                    if requested.writer >= 0 else None,
                )
            for payload in fresh:
                if self.batching and self._tentative_is_newer(
                    payload.location, payload.stamp
                ):
                    # A page-mate of the miss is a location we have an
                    # uncertified queued write for; the owner's copy
                    # predates it.  Installing it would un-do our own
                    # write (breaking read-your-writes), so keep ours.
                    # The missed location itself can never hit this: a
                    # tentative entry is valid, hence never a miss.
                    continue
                entry = MemoryEntry(
                    value=payload.value,
                    stamp=payload.stamp,
                    writer=payload.writer,
                )
                self.store.put(payload.location, entry)
                self._notify_watchers(payload.location, payload.value)
                if payload.location == location:
                    requested_entry = entry
        if requested_entry is None:
            raise ProtocolError(
                f"R_REPLY for {location!r} did not contain the location"
            )
        self.stats.blocked_time += self.runtime.now - started
        if self.obs is not None:
            self.obs.metrics.histogram("read_miss.round_trip").observe(
                self.runtime.now - started
            )
        self._record_read(location, requested_entry)
        future.resolve(requested_entry.value)

    # ------------------------------------------------------------------
    # [WRITE, x, v, VT] at the owner (Figure 4, fourth procedure)
    # ------------------------------------------------------------------
    def _serve_write(self, src: int, msg: WriteRequest) -> None:
        if not self.store.owns(msg.location):
            raise ProtocolError(
                f"node {self.node_id} received WRITE for {msg.location!r} "
                f"owned by {self.namespace.owner(msg.location)}"
            )
        # VT_i := update(VT_i, VT)
        self.vt = self.vt.update(msg.stamp)
        self._note_stamp(msg.stamp)
        current = self.store.get(msg.location)
        assert current is not None
        if current.stamp.compare(msg.stamp) == CONCURRENT:
            apply = self.policy.apply_concurrent(
                owner_id=self.node_id,
                location=msg.location,
                current=current,
                incoming_writer=src,
                incoming_value=msg.value,
                incoming_stamp=msg.stamp,
            )
        else:
            apply = True  # the incoming stamp dominates the stored one
        if apply:
            entry = MemoryEntry(value=msg.value, stamp=self.vt, writer=src)
            self.store.put(msg.location, entry)
            self._notify_watchers(msg.location, msg.value)
            # forall y in C_i : M_i[y].VT < VT_i  =>  M_i[y] := bottom
            # (sparing dirty write-behind lines msg.stamp cannot cover)
            swept = self.store.invalidate_older_than(
                self.vt, keep=self._dirty_keep(msg.stamp)
            )
            if self.obs is not None and swept:
                self.obs.emit(
                    "proto", "inv.sweep", node=self.node_id, clock=self.vt,
                    invalidated=swept, cause="serve_write",
                    trigger=[src, msg.stamp[src]],
                )
            self.runtime.send(
                self.node_id,
                src,
                WriteReply(
                    request_id=msg.request_id,
                    location=msg.location,
                    value=msg.value,
                    stamp=self.vt,
                ),
            )
        else:
            # Policy rejected the concurrent write: no new value enters
            # this memory, so no sweep; report the surviving entry.
            self.runtime.send(
                self.node_id,
                src,
                WriteReply(
                    request_id=msg.request_id,
                    location=msg.location,
                    value=msg.value,
                    stamp=self.vt,
                    applied=False,
                    current=EntryPayload(
                        location=msg.location,
                        value=current.value,
                        stamp=current.stamp,
                        writer=current.writer,
                    ),
                ),
            )

    def _complete_write(self, msg: WriteReply) -> None:
        future, location, value, started = self._pending_writes.pop(msg.request_id)
        # VT_i := update(VT_i, VT')
        self.vt = self.vt.update(msg.stamp)
        self._note_stamp(msg.stamp)
        if future is None:
            # Write-behind: the operation already completed; just refresh
            # the tentative cached entry to the canonical stamp.
            if msg.applied and not self.no_cache:
                cached = self.store.get(location)
                if (
                    cached is not None
                    and cached.writer == self.node_id
                    and cached.stamp[self.node_id] == msg.stamp[self.node_id]
                ):
                    # Same write (own component matches), same value and
                    # writer — only the stamp changes, so restamp in place.
                    self.store.restamp(location, msg.stamp)
            return
        self.stats.blocked_time += self.runtime.now - started
        if msg.applied:
            # M_i[x] := (v, VT') — the writer caches its own write under
            # the owner's merged stamp, which is the canonical writestamp
            # of this write (identical to the owner's stored copy; in
            # Figure 4's single-threaded setting VT_i equals VT' here).
            # No invalidation sweep, faithful to Figure 4.
            entry = MemoryEntry(value=value, stamp=msg.stamp, writer=self.node_id)
            if not self.no_cache:
                self.store.put(location, entry)
            self._record_write(location, value, entry)
            future.resolve(WriteOutcome(location=location, value=value))
            return
        # Rejected by the owner's policy: the write still occupies its
        # place in program order (recorded with its own unique stamp);
        # the owner's surviving entry is introduced like a read reply.
        self.stats.rejected_writes += 1
        ghost = MemoryEntry(value=value, stamp=self.vt, writer=self.node_id)
        self._record_write(location, value, ghost)
        assert msg.current is not None
        survivor = MemoryEntry(
            value=msg.current.value,
            stamp=msg.current.stamp,
            writer=msg.current.writer,
        )
        if not self.no_cache:
            self._note_stamp(survivor.stamp)
            swept = self.store.invalidate_older_than(
                survivor.stamp, keep=[location]
            )
            if self.obs is not None and swept:
                self.obs.emit(
                    "proto", "inv.sweep", node=self.node_id, clock=self.vt,
                    invalidated=swept, cause="write_rejected",
                    trigger=[survivor.writer,
                             survivor.stamp[survivor.writer]]
                    if survivor.writer >= 0 else None,
                )
            self.store.put(location, survivor)
            self._notify_watchers(location, survivor.value)
        future.resolve(
            WriteOutcome(location=location, value=survivor.value, applied=False)
        )

    # ------------------------------------------------------------------
    # Write-behind batching (the wire-level fast path, batching=True)
    # ------------------------------------------------------------------
    def _tentative_is_newer(self, location: str, stamp: VectorClock) -> bool:
        """True if our cached copy of ``location`` is an own write newer
        than ``stamp`` — i.e. an uncertified tentative the peer cannot
        know about yet, which must survive installs from stale replies."""
        cached = self.store.get(location)
        return (
            cached is not None
            and cached.writer == self.node_id
            and cached.stamp[self.node_id] > stamp[self.node_id]
        )

    def _dirty_keep(self, external: VectorClock) -> Optional[List[str]]:
        """Dirty cache lines an owner-side sweep must spare.

        A *dirty* line is a tentative own write whose certification is
        still queued or in flight.  Sweeping with ``self.vt`` would kill
        it immediately — ``vt``'s own component always covers the write's
        sequence number, so the entry is "strictly older" by
        self-knowledge alone — and the next read would miss and fetch
        pre-write state from the owner: a read-your-writes violation.

        The exemption is exact, not conservative: a write overwriting the
        dirty line causally follows its certification, so any external
        stamp carrying such an overwrite satisfies
        ``external[me] >= seq``.  Lines whose seq the external stamp does
        cover are left to the normal sweep comparison (the owner really
        certified them; the ack is merely in flight).
        """
        if not self._wb_uncertified:
            return None
        me = self.node_id
        bound = external[me]
        uncertified = self._wb_uncertified
        store = self.store
        keep: List[str] = []
        runs = self._wb_runs
        if self._wb_outstanding is not None:
            runs = [self._wb_outstanding, *runs]
        for run in runs:
            for queued in run.writes:
                cached = store.get(queued.location)
                if (
                    cached is not None
                    and cached.writer == me
                    and cached.stamp[me] in uncertified
                    and cached.stamp[me] > bound
                ):
                    keep.append(queued.location)
        return keep or None

    def _visible_vt(self) -> VectorClock:
        """This node's vector time with the own component clamped to the
        newest *certified* own write.

        Any stamp handed to another node while writes are queued must not
        cover an uncertified own component — a peer merging it could then
        observe (via a third party) a state that causally requires a
        write nobody else has seen.  Components of other nodes are always
        safe to pass on: they entered ``vt`` through messages, so their
        writes are already visible elsewhere.
        """
        if not self._wb_uncertified:
            return self.vt
        horizon = min(self._wb_uncertified) - 1
        comps = self.vt.components
        me = self.node_id
        if comps[me] <= horizon:
            return self.vt
        return VectorClock._from_trusted(
            comps[:me] + (horizon,) + comps[me + 1:]
        )

    def _wb_enqueue(
        self, owner: int, location: str, value: Any, stamp: VectorClock, seq: int
    ) -> None:
        self._wb_enqueues += 1
        if self._wb_runs and self._wb_runs[-1].owner == owner:
            run = self._wb_runs[-1]
            for i, queued in enumerate(run.writes):
                if queued.location == location and self.policy.coalescable(
                    location, queued.value, value
                ):
                    # Same-location coalescing: the old write will never
                    # be sent; the new write inherits its certification
                    # obligation (``seqs`` keeps both components, so the
                    # read barrier stays up until this run is acked).
                    # The survivor moves to the *end* of the run — it is
                    # the newest write, and batch sub-writes must stay in
                    # program order (strictly increasing own components)
                    # or the owner would certify them out of causal order.
                    run.writes.pop(i)
                    run.writes.append(_QueuedWrite(location, value, stamp, seq))
                    run.seqs.append(seq)
                    self.wb_coalesced += 1
                    if self.obs is not None:
                        self.obs.emit(
                            "proto", "wb.coalesce", node=self.node_id,
                            clock=stamp, location=location,
                        )
                    return
            run.writes.append(_QueuedWrite(location, value, stamp, seq))
            run.seqs.append(seq)
            return
        self._wb_runs.append(
            _Run(owner=owner, writes=[_QueuedWrite(location, value, stamp, seq)],
                 seqs=[seq])
        )

    def _schedule_flush(self) -> None:
        """Arm the delayed flush (coalesces same-instant write bursts)."""
        if self._wb_flush_scheduled or self._wb_outstanding is not None:
            return
        self._wb_flush_scheduled = True
        self._wb_flush_hops = 0
        self._wb_flush_mark = self._wb_enqueues
        self.runtime.call_soon(self._wb_flush_tick)

    def _wb_flush_tick(self) -> None:
        """The delayed-flush timer, one scheduler turn at a time.

        The application's continuation is scheduled *after* this tick
        was armed, so the first tick always re-arms once — giving the
        app one turn to extend the window — and keeps re-arming while
        new writes actually arrive, up to ``_WB_MAX_DELAY_HOPS`` turns
        or a full head run.  All hops happen at one simulated instant;
        only event order is spent.
        """
        if self._wb_outstanding is not None or not self._wb_runs:
            self._wb_flush_scheduled = False
            return
        grew = self._wb_enqueues != self._wb_flush_mark
        if (
            (self._wb_flush_hops == 0 or grew)
            and self._wb_flush_hops < _WB_MAX_DELAY_HOPS
            and len(self._wb_runs[-1].writes) < _WB_MAX_RUN
        ):
            self._wb_flush_hops += 1
            self._wb_flush_mark = self._wb_enqueues
            self.runtime.call_soon(self._wb_flush_tick)
            return
        self._wb_flush()

    def _wb_flush(self) -> None:
        """Send the head run now, unless one is already in flight.

        One batch in flight at a time: the next run leaves only when the
        previous run's ack returns.  This serialization is what makes
        cross-owner causal order hold — owner B cannot certify a later
        write before owner A certified an earlier one.
        """
        self._wb_flush_scheduled = False
        if self._wb_outstanding is not None or not self._wb_runs:
            return
        run = self._wb_runs.pop(0)
        run.request_id = self.next_request_id()
        self._wb_outstanding = run
        self.wb_batches += 1
        self.wb_batched_writes += len(run.writes)
        if self.obs is not None:
            self.obs.emit(
                "proto", "wb.flush", node=self.node_id, clock=self.vt,
                owner=run.owner, writes=len(run.writes),
            )
            self.obs.metrics.histogram("wb.batch_occupancy").observe(
                len(run.writes)
            )
        self.runtime.send(
            self.node_id,
            run.owner,
            WriteBatch(
                request_id=run.request_id,
                writes=tuple(
                    WriteRequest(
                        request_id=run.request_id,
                        location=w.location,
                        value=w.value,
                        stamp=w.stamp,
                    )
                    for w in run.writes
                ),
            ),
        )

    def _serve_write_batch(self, src: int, msg: WriteBatch) -> None:
        """Certify a peer's batch — always immediately, never deferred.

        Deferring certifications (like reads) could deadlock: two nodes
        whose queues target each other would wait forever.  Immediate
        service is safe because the reply stamps are clamped to
        :meth:`_visible_vt`.
        """
        replies = []
        for req in msg.writes:
            replies.append(self._certify_batched(src, req))
        self.runtime.send(
            self.node_id,
            src,
            WriteBatchReply(
                request_id=msg.request_id,
                replies=tuple(replies),
                stamp=self._visible_vt(),
            ),
        )

    def _certify_batched(self, src: int, msg: WriteRequest) -> BatchedWriteReply:
        """Figure 4's WRITE service for one sub-write of a batch.

        Identical to :meth:`_serve_write` except the stored/reported
        stamp is ``update(msg.stamp, visible_vt)`` rather than the full
        ``vt`` — the canonical writestamp must not cover this owner's own
        uncertified components.
        """
        if not self.store.owns(msg.location):
            raise ProtocolError(
                f"node {self.node_id} received batched WRITE for "
                f"{msg.location!r} owned by {self.namespace.owner(msg.location)}"
            )
        self.vt = self.vt.update(msg.stamp)
        self._note_stamp(msg.stamp)
        current = self.store.get(msg.location)
        assert current is not None
        if current.stamp.compare(msg.stamp) == CONCURRENT:
            apply = self.policy.apply_concurrent(
                owner_id=self.node_id,
                location=msg.location,
                current=current,
                incoming_writer=src,
                incoming_value=msg.value,
                incoming_stamp=msg.stamp,
            )
        else:
            apply = True
        if apply:
            stamp = msg.stamp.update(self._visible_vt())
            entry = MemoryEntry(value=msg.value, stamp=stamp, writer=src)
            self.store.put(msg.location, entry)
            self._notify_watchers(msg.location, msg.value)
            # Spare dirty write-behind lines msg.stamp cannot cover; see
            # _dirty_keep (self.vt alone would kill our own queued writes).
            swept = self.store.invalidate_older_than(
                self.vt, keep=self._dirty_keep(msg.stamp)
            )
            if self.obs is not None and swept:
                self.obs.emit(
                    "proto", "inv.sweep", node=self.node_id, clock=self.vt,
                    invalidated=swept, cause="serve_batch",
                    trigger=[src, msg.stamp[src]],
                )
            return BatchedWriteReply(location=msg.location, stamp=stamp)
        if (
            current.writer == self.node_id
            and self._wb_uncertified
            and current.stamp[self.node_id] >= min(self._wb_uncertified)
        ):
            # The surviving entry is an own *local* write performed after
            # writes still sitting in our queue — its causal past is not
            # yet certified, so its value must not leave this node.
            # Reply without it; the rejected writer discards its copy and
            # will fetch the survivor by a later (deferred) read.
            survivor_payload = None
        else:
            survivor_payload = EntryPayload(
                location=msg.location,
                value=current.value,
                stamp=current.stamp,
                writer=current.writer,
            )
        return BatchedWriteReply(
            location=msg.location,
            stamp=msg.stamp.update(self._visible_vt()),
            applied=False,
            current=survivor_payload,
        )

    def _restamp_owned(self, replies: Tuple[BatchedWriteReply, ...]) -> None:
        """Fold freshly certified stamps into later own local writes.

        A local write to an owned location performed while earlier own
        writes sat uncertified was stamped without their *certified*
        stamps — program order says it causally follows them, but only
        the owner knows the stamp each one certifies at.  Served as-is,
        such an entry under-informs readers: the reply tells them the
        preceding writes exist (our own component counts them) but not
        what they dominate, so the readers' sweeps cannot invalidate
        values those writes overwrote — a Definition 2 violation once a
        reader holds such a stale line.  After every certification ack,
        merge each certified stamp into the entries of own local writes
        that follow it, restoring ``M_i[x].VT >= VT(w)`` for every write
        ``w`` preceding ``x``'s write in program order.
        """
        me = self.node_id
        still_stale: Dict[str, None] = {}
        floor = min(self._wb_uncertified) if self._wb_uncertified else None
        for location in self._wb_owned_stale:
            entry = self.store.get(location)
            if entry is None or entry.writer != me:
                # Overwritten by a certified foreign write whose stamp
                # came enriched from its owner; nothing left to patch.
                continue
            seq = entry.stamp[me]
            stamp = entry.stamp
            for sub in replies:
                # Only writes preceding this one in program order are
                # part of its causal past (a batch can certify writes
                # queued after the local write happened).
                if sub.stamp[me] < seq:
                    stamp = stamp.update(sub.stamp)
            if stamp is not entry.stamp:
                # Value and writer are unchanged; only the stamp grows.
                self.store.restamp(location, stamp)
            if floor is not None and floor < seq:
                # Some write preceding this one is still uncertified;
                # keep patching on the next ack.
                still_stale[location] = None
        self._wb_owned_stale = still_stale

    def _restamp_queued(self, replies: Tuple[BatchedWriteReply, ...]) -> None:
        """Fold freshly certified stamps into still-queued writes.

        The stamp a queued write ships to its owner is frozen at enqueue
        time.  If earlier own writes were uncertified then, the frozen
        stamp omits their certified stamps, and — when those writes
        certify at a *different* owner — so does the stamp this write
        eventually certifies at (our own component counts them, but the
        components their certification added are lost).  Readers of the
        under-stamped write then cannot invalidate values the earlier
        writes overwrote.  Runs are ack-chained, so patching the queue
        on every ack (before the next flush) is enough: every batch
        leaves carrying the certified stamps of all program-order
        predecessors certified so far.
        """
        me = self.node_id
        for run in self._wb_runs:
            for i, queued in enumerate(run.writes):
                stamp = queued.stamp
                for sub in replies:
                    if sub.stamp[me] < queued.seq:
                        stamp = stamp.update(sub.stamp)
                if stamp is not queued.stamp:
                    run.writes[i] = _QueuedWrite(
                        location=queued.location,
                        value=queued.value,
                        stamp=stamp,
                        seq=queued.seq,
                    )

    def _complete_write_batch(self, msg: WriteBatchReply) -> None:
        run = self._wb_outstanding
        if run is None or run.request_id != msg.request_id:
            raise ProtocolError(
                f"node {self.node_id} got stray batch reply {msg.request_id}"
            )
        self._wb_outstanding = None
        self.vt = self.vt.update(msg.stamp)
        self._note_stamp(msg.stamp)
        if self.obs is not None:
            self.obs.emit(
                "proto", "wb.ack", node=self.node_id, clock=self.vt,
                writes=len(run.writes),
            )
        for queued, sub in zip(run.writes, msg.replies):
            self.vt = self.vt.update(sub.stamp)
            self._note_stamp(sub.stamp)
            if sub.applied:
                # Refresh the tentative entry to the canonical stamp —
                # unless a newer own write to the location is queued
                # behind this one (its tentative copy must survive).
                cached = self.store.get(queued.location)
                if (
                    cached is not None
                    and cached.writer == self.node_id
                    and cached.stamp[self.node_id] == sub.stamp[self.node_id]
                ):
                    # Same tentative write; only its stamp is refreshed.
                    self.store.restamp(queued.location, sub.stamp)
                continue
            # Rejected by the owner's policy: adopt the surviving entry,
            # as the unbatched path does — except when a newer own write
            # to the location is still queued (it supersedes the survivor
            # locally and will face the owner's policy itself).
            self.stats.rejected_writes += 1
            if self._tentative_is_newer(queued.location, sub.stamp):
                continue
            if sub.current is None:
                # The owner withheld the survivor (its causal past was
                # uncertified).  Drop our rejected tentative; the next
                # read will miss and fetch the certified survivor.
                cached = self.store.get(queued.location)
                if (
                    cached is not None
                    and cached.writer == self.node_id
                    and cached.stamp[self.node_id] == sub.stamp[self.node_id]
                ):
                    self.store.discard(queued.location)
                continue
            survivor = MemoryEntry(
                value=sub.current.value,
                stamp=sub.current.stamp,
                writer=sub.current.writer,
            )
            self._note_stamp(survivor.stamp)
            swept = self.store.invalidate_older_than(
                survivor.stamp, keep=[queued.location]
            )
            if self.obs is not None and swept:
                self.obs.emit(
                    "proto", "inv.sweep", node=self.node_id, clock=self.vt,
                    invalidated=swept, cause="batch_rejected",
                    trigger=[survivor.writer,
                             survivor.stamp[survivor.writer]]
                    if survivor.writer >= 0 else None,
                )
            self.store.put(queued.location, survivor)
            self._notify_watchers(queued.location, survivor.value)
        for seq in run.seqs:
            self._wb_uncertified.discard(seq)
        if self._wb_owned_stale:
            self._restamp_owned(msg.replies)
        if self._wb_runs:
            self._restamp_queued(msg.replies)
            # Ack-chained: launch the next run in the same instant.
            self._wb_flush()
        elif not self._wb_uncertified and self._wb_deferred_reads:
            drained, self._wb_deferred_reads = self._wb_deferred_reads, []
            for src, deferred in drained:
                self._serve_read(src, deferred)
