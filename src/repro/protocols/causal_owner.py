"""The paper's simple owner protocol (Figure 4) — causal DSM.

Every location has a fixed owner.  Reads of owned or cached locations are
local; a read miss sends ``[READ, x]`` to the owner and blocks for
``[R_REPLY, x, v', VT']``.  A write to a non-owned location sends
``[WRITE, x, v, VT_i]`` and blocks until the owner certifies it with
``[W_REPLY, x, v, VT']``.  Vector timestamps (*writestamps*) are attached
to every value; whenever a new value is introduced into a local memory —
by a read reply at the requester, or by a serviced ``WRITE`` at the owner
— every cached value with a strictly older writestamp is invalidated
("all cached values that could potentially participate in a violation of
causality", Section 3).

Faithfulness notes (see DESIGN.md Section 4.2):

* The writer performs **no invalidation sweep** when its ``W_REPLY``
  arrives — exactly as in Figure 4.  Certification creates no app-level
  reads-from edge into the writer, so its cached values remain live.
* The owner stores a certified write with its **merged** vector time, and
  the writer ends with the same stamp after its final ``update`` — both
  copies of the write carry one identical, globally unique writestamp.
* An incoming remote write is never strictly older than the owner's
  current entry (its own component is always ahead); it either dominates
  it or is concurrent with it.  Concurrent incoming writes are resolved
  by the configured :class:`~repro.protocols.policies.ConflictPolicy` —
  Figure 4 verbatim corresponds to
  :class:`~repro.protocols.policies.LastWriterWins`; the dictionary
  application of Section 4.2 uses
  :class:`~repro.protocols.policies.OwnerFavoured`.

Paper enhancements implemented as options:

* **Page granularity** — supply a paged
  :class:`~repro.memory.namespace.Namespace`; replies then carry every
  location of the unit the owner holds, and invalidation drops whole
  units.
* **Read-only segments** — namespace-declared read-only locations are
  exempt from invalidation (the solver's constant ``A`` and ``b``).
* **No-cache mode** — read replies are not cached, forcing "a request to
  the owner on every read", which per Section 3.2 "results in a memory
  that satisfies atomic correctness".
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.clocks import CONCURRENT, VectorClock
from repro.errors import ProtocolError
from repro.memory.local_store import MemoryEntry
from repro.protocols.base import DSMNode, WriteOutcome
from repro.protocols.messages import (
    EntryPayload,
    ReadReply,
    ReadRequest,
    WriteReply,
    WriteRequest,
)
from repro.protocols.policies import ConflictPolicy, LastWriterWins
from repro.sim import Future

__all__ = ["CausalOwnerNode"]


class CausalOwnerNode(DSMNode):
    """One processor of the causal DSM (Figure 4 plus options)."""

    def __init__(
        self,
        node_id: int,
        *,
        policy: Optional[ConflictPolicy] = None,
        no_cache: bool = False,
        unsafe_write_behind: bool = False,
        **kwargs: Any,
    ):
        super().__init__(node_id, **kwargs)
        self.vt = VectorClock.zero(self.n_nodes)
        self.policy = policy or LastWriterWins()
        self.no_cache = no_cache
        # The "reducing the blocking of processors" temptation: complete
        # remote writes immediately instead of blocking for W_REPLY.
        # This is UNSAFE — it breaks causal memory (experiment E13 shows
        # the violation) — and exists to demonstrate why Figure 4's
        # writes block.
        self.unsafe_write_behind = unsafe_write_behind
        self._pending_reads: Dict[int, Tuple[Future, str, float]] = {}
        self._pending_writes: Dict[
            int, Tuple[Optional[Future], str, Any, float]
        ] = {}

    # ------------------------------------------------------------------
    # r_i(x)v  (Figure 4, first procedure)
    # ------------------------------------------------------------------
    def read(self, location: str) -> Future:
        """Read ``location``; local on a hit, blocking request on a miss."""
        self.stats.reads += 1
        future = Future(label=f"read:{self.node_id}:{location}")
        if self.store.is_valid(location):
            entry = self.store.get(location)
            assert entry is not None
            self.stats.local_read_hits += 1
            self._record_read(location, entry)
            future.resolve(entry.value)
            return future
        self.stats.remote_reads += 1
        request_id = self.next_request_id()
        self._pending_reads[request_id] = (future, location, self.sim.now)
        owner = self.namespace.owner(location)
        self.network.send(
            self.node_id,
            owner,
            ReadRequest(
                request_id=request_id,
                location=location,
                unit=self.namespace.unit(location),
            ),
        )
        return future

    # ------------------------------------------------------------------
    # w_i(x)v  (Figure 4, second procedure)
    # ------------------------------------------------------------------
    def write(self, location: str, value: Any) -> Future:
        """Write ``location``; local if owned, certified by the owner if not."""
        self.stats.writes += 1
        self.vt = self.vt.increment(self.node_id)
        future = Future(label=f"write:{self.node_id}:{location}")
        if self.store.owns(location):
            entry = MemoryEntry(value=value, stamp=self.vt, writer=self.node_id)
            self.store.put(location, entry)
            self.stats.local_writes += 1
            self._record_write(location, value, entry)
            self._notify_watchers(location, value)
            future.resolve(WriteOutcome(location=location, value=value))
            return future
        self.stats.remote_writes += 1
        request_id = self.next_request_id()
        owner = self.namespace.owner(location)
        self.network.send(
            self.node_id,
            owner,
            WriteRequest(
                request_id=request_id,
                location=location,
                value=value,
                stamp=self.vt,
            ),
        )
        if self.unsafe_write_behind:
            # Complete immediately with a tentative cached entry; the
            # eventual W_REPLY only merges clocks.  (writer, VT[writer])
            # identifies the write, so the tentative and the owner's
            # copies share one identity despite differing merged stamps.
            self._pending_writes[request_id] = (
                None, location, value, self.sim.now,
            )
            entry = MemoryEntry(value=value, stamp=self.vt, writer=self.node_id)
            if not self.no_cache:
                self.store.put(location, entry)
            self._record_write(location, value, entry)
            future.resolve(WriteOutcome(location=location, value=value))
            return future
        self._pending_writes[request_id] = (future, location, value, self.sim.now)
        return future

    # ------------------------------------------------------------------
    # Message dispatch
    # ------------------------------------------------------------------
    def handle_message(self, src: int, message: object) -> None:
        """Dispatch one delivered message (runs atomically)."""
        kind = type(message)
        if kind is ReadReply:
            self._complete_read(message)
        elif kind is ReadRequest:
            self._serve_read(src, message)
        elif kind is WriteRequest:
            self._serve_write(src, message)
        elif kind is WriteReply:
            self._complete_write(message)
        else:
            raise ProtocolError(
                f"causal node {self.node_id} got unexpected {message!r}"
            )

    # ------------------------------------------------------------------
    # [READ, x] at the owner (Figure 4, third procedure)
    # ------------------------------------------------------------------
    def _serve_read(self, src: int, msg: ReadRequest) -> None:
        if not self.store.owns(msg.location):
            raise ProtocolError(
                f"node {self.node_id} received READ for {msg.location!r} "
                f"owned by {self.namespace.owner(msg.location)}"
            )
        requested = self.store.get(msg.location)
        assert requested is not None
        entries = [
            EntryPayload(
                location=msg.location,
                value=requested.value,
                stamp=requested.stamp,
                writer=requested.writer,
            )
        ]
        reply_stamp = requested.stamp
        # Page granularity: ship every location of the unit the owner holds.
        for other in self.store.locations_in_unit(msg.unit):
            if other == msg.location:
                continue
            entry = self.store.get(other)
            assert entry is not None
            entries.append(
                EntryPayload(
                    location=other,
                    value=entry.value,
                    stamp=entry.stamp,
                    writer=entry.writer,
                )
            )
            reply_stamp = reply_stamp.update(entry.stamp)
        self.network.send(
            self.node_id,
            src,
            ReadReply(
                request_id=msg.request_id,
                location=msg.location,
                entries=tuple(entries),
                stamp=reply_stamp,
            ),
        )

    def _complete_read(self, msg: ReadReply) -> None:
        future, location, started = self._pending_reads.pop(msg.request_id)
        # VT_i := update(VT_i, VT')
        self.vt = self.vt.update(msg.stamp)
        requested_entry: Optional[MemoryEntry] = None
        if self.no_cache:
            for payload in msg.entries:
                if payload.location == location:
                    requested_entry = MemoryEntry(
                        value=payload.value,
                        stamp=payload.stamp,
                        writer=payload.writer,
                    )
        else:
            # forall y in C_i : M_i[y].VT < VT'  =>  M_i[y] := bottom
            installed = [payload.location for payload in msg.entries]
            self.store.invalidate_older_than(msg.stamp, keep=installed)
            for payload in msg.entries:
                entry = MemoryEntry(
                    value=payload.value,
                    stamp=payload.stamp,
                    writer=payload.writer,
                )
                self.store.put(payload.location, entry)
                self._notify_watchers(payload.location, payload.value)
                if payload.location == location:
                    requested_entry = entry
        if requested_entry is None:
            raise ProtocolError(
                f"R_REPLY for {location!r} did not contain the location"
            )
        self.stats.blocked_time += self.sim.now - started
        self._record_read(location, requested_entry)
        future.resolve(requested_entry.value)

    # ------------------------------------------------------------------
    # [WRITE, x, v, VT] at the owner (Figure 4, fourth procedure)
    # ------------------------------------------------------------------
    def _serve_write(self, src: int, msg: WriteRequest) -> None:
        if not self.store.owns(msg.location):
            raise ProtocolError(
                f"node {self.node_id} received WRITE for {msg.location!r} "
                f"owned by {self.namespace.owner(msg.location)}"
            )
        # VT_i := update(VT_i, VT)
        self.vt = self.vt.update(msg.stamp)
        current = self.store.get(msg.location)
        assert current is not None
        if current.stamp.compare(msg.stamp) == CONCURRENT:
            apply = self.policy.apply_concurrent(
                owner_id=self.node_id,
                location=msg.location,
                current=current,
                incoming_writer=src,
                incoming_value=msg.value,
                incoming_stamp=msg.stamp,
            )
        else:
            apply = True  # the incoming stamp dominates the stored one
        if apply:
            entry = MemoryEntry(value=msg.value, stamp=self.vt, writer=src)
            self.store.put(msg.location, entry)
            self._notify_watchers(msg.location, msg.value)
            # forall y in C_i : M_i[y].VT < VT_i  =>  M_i[y] := bottom
            self.store.invalidate_older_than(self.vt)
            self.network.send(
                self.node_id,
                src,
                WriteReply(
                    request_id=msg.request_id,
                    location=msg.location,
                    value=msg.value,
                    stamp=self.vt,
                ),
            )
        else:
            # Policy rejected the concurrent write: no new value enters
            # this memory, so no sweep; report the surviving entry.
            self.network.send(
                self.node_id,
                src,
                WriteReply(
                    request_id=msg.request_id,
                    location=msg.location,
                    value=msg.value,
                    stamp=self.vt,
                    applied=False,
                    current=EntryPayload(
                        location=msg.location,
                        value=current.value,
                        stamp=current.stamp,
                        writer=current.writer,
                    ),
                ),
            )

    def _complete_write(self, msg: WriteReply) -> None:
        future, location, value, started = self._pending_writes.pop(msg.request_id)
        # VT_i := update(VT_i, VT')
        self.vt = self.vt.update(msg.stamp)
        if future is None:
            # Write-behind: the operation already completed; just refresh
            # the tentative cached entry to the canonical stamp.
            if msg.applied and not self.no_cache:
                cached = self.store.get(location)
                if (
                    cached is not None
                    and cached.writer == self.node_id
                    and cached.stamp[self.node_id] == msg.stamp[self.node_id]
                ):
                    self.store.put(
                        location,
                        MemoryEntry(
                            value=value, stamp=msg.stamp, writer=self.node_id
                        ),
                    )
            return
        self.stats.blocked_time += self.sim.now - started
        if msg.applied:
            # M_i[x] := (v, VT') — the writer caches its own write under
            # the owner's merged stamp, which is the canonical writestamp
            # of this write (identical to the owner's stored copy; in
            # Figure 4's single-threaded setting VT_i equals VT' here).
            # No invalidation sweep, faithful to Figure 4.
            entry = MemoryEntry(value=value, stamp=msg.stamp, writer=self.node_id)
            if not self.no_cache:
                self.store.put(location, entry)
            self._record_write(location, value, entry)
            future.resolve(WriteOutcome(location=location, value=value))
            return
        # Rejected by the owner's policy: the write still occupies its
        # place in program order (recorded with its own unique stamp);
        # the owner's surviving entry is introduced like a read reply.
        self.stats.rejected_writes += 1
        ghost = MemoryEntry(value=value, stamp=self.vt, writer=self.node_id)
        self._record_write(location, value, ghost)
        assert msg.current is not None
        survivor = MemoryEntry(
            value=msg.current.value,
            stamp=msg.current.stamp,
            writer=msg.current.writer,
        )
        if not self.no_cache:
            self.store.invalidate_older_than(survivor.stamp, keep=[location])
            self.store.put(location, survivor)
            self._notify_watchers(location, survivor.value)
        future.resolve(
            WriteOutcome(location=location, value=survivor.value, applied=False)
        )
