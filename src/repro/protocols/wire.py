"""Wire-level serialization model: byte accounting and delta-encoded stamps.

The paper's efficiency argument (Section 4.1) is stated in message
*counts*, but the real cost axis for causal DSM metadata is message
*size*: every protocol message carries at least one ``n``-entry vector
writestamp, so stamp bytes grow linearly with the system while payloads
stay constant (Xiang & Vaidya, arXiv:1703.05424).  This module makes
bytes a first-class measurement and then optimizes them:

* **Deterministic byte costs** — :func:`measure_message` assigns every
  protocol message a reproducible wire size (header + payload fields +
  writestamp entries) from the constants below.  The network calls it on
  every send, so :class:`~repro.sim.trace.NetworkStats` accumulates
  per-kind and per-edge byte totals alongside the paper's counts.
* **Delta-encoded writestamps** — :class:`WireCodec` maintains, per
  directed channel ``(src, dst)``, the last writestamp carried in either
  direction of the encode walk; subsequent messages carry only the
  vector-clock entries that *changed* since the previous message on the
  channel.  The receiver reconstructs full stamps from its mirror of the
  channel state.  Reliable FIFO channels (the paper's Section 3 network
  assumption) make sender and receiver state converge; any loss —
  a drop, a partition, a crashed endpoint — marks the channel dirty and
  the next message falls back to a **full** stamp, which resynchronises
  both sides unconditionally.

The codec genuinely round-trips messages: stamps are stripped into
:class:`EncodedStamp` tokens at send time and rebuilt at delivery time,
so the protocol engines operate on *reconstructed* clocks.  A codec bug
is therefore a protocol bug the lockstep property tests catch, not a
mis-counted statistic.

Cost model (all sizes in bytes; see DESIGN.md Section 4.5)::

    frame header        12   kind tag, endpoints, channel seq, length
    batch sub-header     4   kind tag + length of one nested message
    request/seq ids      4
    writer/node ids      4
    location name        2 + len(name)
    scalar value         8   (None/bool: 1, str: 2 + len)
    stamp, full          2 + 4 * n        (count prefix + counters)
    stamp, delta         2 + 6 * changed  (count prefix + index:counter)

A delta entry costs more than a full entry (it must name its index), so
the encoder automatically falls back to the full form whenever more than
``2n/3`` entries changed — the delta path never loses.
"""

from __future__ import annotations

from dataclasses import dataclass, fields as dataclass_fields
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.clocks import VectorClock
from repro.errors import ReproError

__all__ = [
    "WireError",
    "WireDesyncError",
    "EncodedStamp",
    "EncodedMessage",
    "MessageCost",
    "measure_message",
    "fast_cost",
    "value_bytes",
    "location_bytes",
    "stamp_full_bytes",
    "stamp_delta_bytes",
    "WireCodec",
    "HEADER_BYTES",
    "SUBHEADER_BYTES",
    "ID_BYTES",
    "STAMP_COUNT_BYTES",
    "STAMP_FULL_ENTRY_BYTES",
    "STAMP_DELTA_ENTRY_BYTES",
]


class WireError(ReproError):
    """A malformed message reached the wire layer."""


class WireDesyncError(WireError):
    """A delta stamp arrived on a channel whose basis was lost.

    Raised when a delivery-time loss (e.g. a crash healed mid-flight)
    interleaves with already-encoded delta frames.  Send-time losses
    never trigger this: the codec is told about them immediately and
    falls back to full stamps.
    """


# ----------------------------------------------------------------------
# Cost constants
# ----------------------------------------------------------------------
HEADER_BYTES = 12
SUBHEADER_BYTES = 4
ID_BYTES = 4
STAMP_COUNT_BYTES = 2
STAMP_FULL_ENTRY_BYTES = 4
STAMP_DELTA_ENTRY_BYTES = 6


def location_bytes(location: str) -> int:
    """Length-prefixed location name."""
    return 2 + len(location)


def value_bytes(value: Any) -> int:
    """Deterministic size of an application value on the wire."""
    if value is None or isinstance(value, bool):
        return 1
    if isinstance(value, str):
        return 2 + len(value)
    return 8


def stamp_full_bytes(dimension: int) -> int:
    """A full writestamp: count prefix plus one counter per process."""
    return STAMP_COUNT_BYTES + STAMP_FULL_ENTRY_BYTES * dimension


def stamp_delta_bytes(changed: int) -> int:
    """A delta writestamp: count prefix plus (index, counter) pairs."""
    return STAMP_COUNT_BYTES + STAMP_DELTA_ENTRY_BYTES * changed


def _delta_beats_full(changed: int, dimension: int) -> bool:
    return stamp_delta_bytes(changed) < stamp_full_bytes(dimension)


#: Interned zero-entry delta stamps by dimension ("nothing changed" is
#: the most common encoding; see WireCodec.encode).
_EMPTY_DELTAS: Dict[int, "EncodedStamp"] = {}


def _empty_delta(dimension: int) -> "EncodedStamp":
    token = _EMPTY_DELTAS.get(dimension)
    if token is None:
        token = _EMPTY_DELTAS[dimension] = EncodedStamp(
            entries=(), full=False, dimension=dimension
        )
    return token


# ----------------------------------------------------------------------
# Encoded forms
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class EncodedStamp:
    """One writestamp as carried on the wire.

    ``full`` stamps carry every component (``entries`` is the component
    tuple indexed implicitly); delta stamps carry ``(index, value)``
    pairs applied over the channel basis.
    """

    entries: Tuple[int, ...]
    full: bool
    dimension: int

    @property
    def carried_entries(self) -> int:
        """Vector-clock entries physically present in this encoding."""
        if self.full:
            return self.dimension
        return len(self.entries) // 2

    @property
    def byte_size(self) -> int:
        """Wire size of this stamp encoding."""
        if self.full:
            return stamp_full_bytes(self.dimension)
        return stamp_delta_bytes(self.carried_entries)


@dataclass(frozen=True, slots=True)
class EncodedMessage:
    """A protocol message after stamp stripping, ready for 'delivery'.

    ``template`` is the original message with every
    :class:`~repro.clocks.VectorClock` field replaced by an
    :class:`EncodedStamp`; ``decode`` rebuilds the original.  ``kind``
    mirrors the inner message so statistics attribute frames to protocol
    roles, and ``channel_seq`` lets the receiver detect lost frames.
    """

    kind: str
    template: object
    channel_seq: int
    byte_size: int
    stamp_entries: int
    stamp_entries_full: int


@dataclass(frozen=True, slots=True)
class MessageCost:
    """The deterministic wire cost of one message."""

    byte_size: int
    stamp_entries: int
    stamp_count: int

    def __iter__(self):
        yield self.byte_size
        yield self.stamp_entries


# ----------------------------------------------------------------------
# Per-type cost plans and stamp walkers
# ----------------------------------------------------------------------
#
# Each protocol message type registers:
#   body(msg)    -> byte size of everything except stamps and the header
#   stamps(msg)  -> the message's VectorClock fields, in a fixed walk order
#   rebuild(msg, stamps) -> a copy of msg with the walked stamps replaced
#
# The walk order is the contract between encoder and decoder: both sides
# traverse stamps identically, so the running per-channel basis stays in
# lockstep.  Unknown message types fall back to a generic plan so test
# doubles and future messages are still accounted for.

_BodyFn = Callable[[Any], int]
_StampsFn = Callable[[Any], List[VectorClock]]
_RebuildFn = Callable[[Any, List[Any]], Any]
# cost(msg) -> (byte_size, stamp_entries): an allocation-free fast path
# equivalent to HEADER + body + full stamps.  The network charges every
# send through this, so it must not build lists or dataclasses; the
# readable body/stamps walk stays the authoritative definition and
# tests/test_wire.py asserts the two agree for every message type.
_CostFn = Callable[[Any], Tuple[int, int]]


@dataclass(frozen=True)
class _WirePlan:
    body: _BodyFn
    stamps: _StampsFn
    rebuild: _RebuildFn
    cost: Optional[_CostFn] = None


_PLANS: Dict[type, _WirePlan] = {}

#: Resolved by :func:`_build_plans` (wire cannot import messages at module
#: level); used by the encode fast-lane dispatch.
_WRITE_BATCH_TYPE: Optional[type] = None


def _register(message_type: type, plan: _WirePlan) -> None:
    _PLANS[message_type] = plan


def _no_stamps(_msg: Any) -> List[VectorClock]:
    return []


def _keep(msg: Any, _stamps: List[Any]) -> Any:
    return msg


def _entry_payload_body(payload) -> int:
    return location_bytes(payload.location) + value_bytes(payload.value) + ID_BYTES


#: Per-type dataclass field names, resolved once — the message classes are
#: slotted (no ``__dict__``), so clones are built by walking the fields.
_FIELD_NAMES: Dict[type, Tuple[str, ...]] = {}
_MISSING = object()


def _restamped(msg, **changes):
    """``dataclasses.replace`` minus the signature machinery.

    Every stamped message is rebuilt twice per hop (stamp-stripped at
    encode, stamp-restored at decode), and ``dataclasses.replace``'s
    field introspection dominated the wire profile.  The message
    dataclasses define no ``__post_init__``, so copying each field
    through ``object.__setattr__`` (which writes the slot descriptors
    directly, bypassing the frozen guard) constructs the identical
    instance.
    """
    cls = type(msg)
    names = _FIELD_NAMES.get(cls)
    if names is None:
        names = _FIELD_NAMES[cls] = tuple(
            f.name for f in dataclass_fields(cls)
        )
    clone = object.__new__(cls)
    setter = object.__setattr__
    get_change = changes.get
    for name in names:
        value = get_change(name, _MISSING)
        if value is _MISSING:
            value = getattr(msg, name)
        setter(clone, name, value)
    return clone


def _build_plans() -> None:
    global _WRITE_BATCH_TYPE
    from repro.protocols import messages as m

    _WRITE_BATCH_TYPE = m.WriteBatch

    # Constants folded into closure locals: the cost functions run on
    # every Network.send, so global lookups are trimmed to bind-time.
    H, SUB, ID = HEADER_BYTES, SUBHEADER_BYTES, ID_BYTES
    SC, SF = STAMP_COUNT_BYTES, STAMP_FULL_ENTRY_BYTES
    vb = value_bytes
    # One full stamp of dimension d costs SC + SF*d; an entry payload
    # (location + value + writer id) costs (2 + len(loc)) + vb + ID.

    # -- causal owner (Figure 4) --------------------------------------
    _register(m.ReadRequest, _WirePlan(
        body=lambda msg: ID_BYTES + location_bytes(msg.location)
        + location_bytes(msg.unit),
        stamps=_no_stamps,
        rebuild=_keep,
        cost=lambda msg, _f=H + ID + 4: (
            _f + len(msg.location) + len(msg.unit), 0),
    ))

    def _read_reply_stamps(msg) -> List[VectorClock]:
        stamps = [entry.stamp for entry in msg.entries]
        stamps.append(msg.stamp)
        return stamps

    def _read_reply_rebuild(msg, stamps):
        entries = tuple(
            _restamped(entry, stamp=stamp)
            for entry, stamp in zip(msg.entries, stamps)
        )
        return _restamped(msg, entries=entries, stamp=stamps[-1])

    def _read_reply_cost(msg, _f=H + ID + 4, _pe=2 + ID):
        dim = msg.stamp.dimension
        stamp = SC + SF * dim
        n = _f + len(msg.location) + stamp
        count = 1
        for entry in msg.entries:
            n += _pe + len(entry.location) + vb(entry.value) + stamp
            count += 1
        return n, count * dim

    _register(m.ReadReply, _WirePlan(
        body=lambda msg: ID_BYTES + location_bytes(msg.location) + 2
        + sum(_entry_payload_body(entry) for entry in msg.entries),
        stamps=_read_reply_stamps,
        rebuild=_read_reply_rebuild,
        cost=_read_reply_cost,
    ))

    def _write_request_cost(msg, _f=H + ID + 2 + SC):
        dim = msg.stamp.dimension
        return _f + len(msg.location) + vb(msg.value) + SF * dim, dim

    _register(m.WriteRequest, _WirePlan(
        body=lambda msg: ID_BYTES + location_bytes(msg.location)
        + value_bytes(msg.value),
        stamps=lambda msg: [msg.stamp],
        rebuild=lambda msg, stamps: _restamped(msg, stamp=stamps[0]),
        cost=_write_request_cost,
    ))

    def _write_reply_stamps(msg) -> List[VectorClock]:
        stamps = [msg.stamp]
        if msg.current is not None:
            stamps.append(msg.current.stamp)
        return stamps

    def _write_reply_rebuild(msg, stamps):
        current = msg.current
        if current is not None:
            current = _restamped(current, stamp=stamps[1])
        return _restamped(msg, stamp=stamps[0], current=current)

    def _write_reply_cost(msg, _f=H + ID + 3 + SC, _pe=2 + ID):
        dim = msg.stamp.dimension
        n = _f + len(msg.location) + vb(msg.value) + SF * dim
        count = 1
        current = msg.current
        if current is not None:
            n += _pe + len(current.location) + vb(current.value) + SC + SF * dim
            count = 2
        return n, count * dim

    _register(m.WriteReply, _WirePlan(
        body=lambda msg: ID_BYTES + location_bytes(msg.location)
        + value_bytes(msg.value) + 1
        + (_entry_payload_body(msg.current) if msg.current is not None else 0),
        stamps=_write_reply_stamps,
        rebuild=_write_reply_rebuild,
        cost=_write_reply_cost,
    ))

    # -- batched causal owner -----------------------------------------
    def _wb_body(msg) -> int:
        return ID_BYTES + 2 + sum(
            SUBHEADER_BYTES + location_bytes(w.location) + value_bytes(w.value)
            for w in msg.writes
        )

    def _wb_rebuild(msg, stamps):
        writes = tuple(
            _restamped(w, stamp=stamp) for w, stamp in zip(msg.writes, stamps)
        )
        return _restamped(msg, writes=writes)

    def _wb_cost(msg, _f=H + ID + 2, _ps=SUB + 2 + SC):
        writes = msg.writes
        if not writes:
            return _f, 0
        dim = writes[0].stamp.dimension
        n = _f + len(writes) * (_ps + SF * dim)
        for w in writes:
            n += len(w.location) + vb(w.value)
        return n, len(writes) * dim

    _register(m.WriteBatch, _WirePlan(
        body=_wb_body,
        stamps=lambda msg: [w.stamp for w in msg.writes],
        rebuild=_wb_rebuild,
        cost=_wb_cost,
    ))

    def _wbr_body(msg) -> int:
        total = ID_BYTES + 2
        for sub in msg.replies:
            total += SUBHEADER_BYTES + location_bytes(sub.location) + 1
            if sub.current is not None:
                total += _entry_payload_body(sub.current)
        return total

    def _wbr_stamps(msg) -> List[VectorClock]:
        stamps: List[VectorClock] = []
        for sub in msg.replies:
            stamps.append(sub.stamp)
            if sub.current is not None:
                stamps.append(sub.current.stamp)
        stamps.append(msg.stamp)
        return stamps

    def _wbr_rebuild(msg, stamps):
        rebuilt = []
        index = 0
        for sub in msg.replies:
            stamp = stamps[index]
            index += 1
            current = sub.current
            if current is not None:
                current = _restamped(current, stamp=stamps[index])
                index += 1
            rebuilt.append(_restamped(sub, stamp=stamp, current=current))
        return _restamped(msg, replies=tuple(rebuilt), stamp=stamps[index])

    def _wbr_cost(msg, _f=H + ID + 2 + SC, _ps=SUB + 3 + SC, _pe=2 + ID):
        dim = msg.stamp.dimension
        stamp = SF * dim
        n = _f + stamp
        count = 1
        for sub in msg.replies:
            n += _ps + len(sub.location) + stamp
            count += 1
            current = sub.current
            if current is not None:
                n += _pe + len(current.location) + vb(current.value) + SC + stamp
                count += 1
        return n, count * dim

    _register(m.WriteBatchReply, _WirePlan(
        body=_wbr_body,
        stamps=_wbr_stamps,
        rebuild=_wbr_rebuild,
        cost=_wbr_cost,
    ))

    def _loc_only_cost(msg, _f=H + ID + 2):
        return _f + len(msg.location), 0

    def _loc_value_id_cost(msg, _f=H + ID + ID + 2):
        return _f + len(msg.location) + vb(msg.value), 0

    def _stamped_reply_cost(msg, _f=H + ID + ID + 2 + SC):
        dim = msg.stamp.dimension
        return _f + len(msg.location) + vb(msg.value) + SF * dim, dim

    # -- atomic owner baseline ----------------------------------------
    _register(m.AtomicReadRequest, _WirePlan(
        body=lambda msg: ID_BYTES + location_bytes(msg.location),
        stamps=_no_stamps, rebuild=_keep, cost=_loc_only_cost,
    ))
    _register(m.AtomicReadReply, _WirePlan(
        body=lambda msg: ID_BYTES + location_bytes(msg.location)
        + value_bytes(msg.value) + ID_BYTES,
        stamps=lambda msg: [msg.stamp],
        rebuild=lambda msg, stamps: _restamped(msg, stamp=stamps[0]),
        cost=_stamped_reply_cost,
    ))
    _register(m.AtomicWriteRequest, _WirePlan(
        body=lambda msg: ID_BYTES + location_bytes(msg.location)
        + value_bytes(msg.value) + ID_BYTES,
        stamps=_no_stamps, rebuild=_keep, cost=_loc_value_id_cost,
    ))
    _register(m.AtomicWriteReply, _WirePlan(
        body=lambda msg: ID_BYTES + location_bytes(msg.location)
        + value_bytes(msg.value),
        stamps=_no_stamps, rebuild=_keep,
        cost=lambda msg, _f=H + ID + 2: (
            _f + len(msg.location) + vb(msg.value), 0),
    ))
    _register(m.Invalidate, _WirePlan(
        body=lambda msg: ID_BYTES + location_bytes(msg.location),
        stamps=_no_stamps, rebuild=_keep, cost=_loc_only_cost,
    ))
    _register(m.InvalidateAck, _WirePlan(
        body=lambda msg: ID_BYTES + location_bytes(msg.location),
        stamps=_no_stamps, rebuild=_keep, cost=_loc_only_cost,
    ))

    # -- central server ------------------------------------------------
    _register(m.CentralRead, _WirePlan(
        body=lambda msg: ID_BYTES + location_bytes(msg.location),
        stamps=_no_stamps, rebuild=_keep, cost=_loc_only_cost,
    ))
    _register(m.CentralWrite, _WirePlan(
        body=lambda msg: ID_BYTES + location_bytes(msg.location)
        + value_bytes(msg.value) + ID_BYTES,
        stamps=_no_stamps, rebuild=_keep, cost=_loc_value_id_cost,
    ))
    _register(m.CentralReply, _WirePlan(
        body=lambda msg: ID_BYTES + location_bytes(msg.location)
        + value_bytes(msg.value) + ID_BYTES,
        stamps=lambda msg: [msg.stamp],
        rebuild=lambda msg, stamps: _restamped(msg, stamp=stamps[0]),
        cost=_stamped_reply_cost,
    ))

    # -- causal broadcast ----------------------------------------------
    _register(m.BroadcastWrite, _WirePlan(
        body=lambda msg: ID_BYTES + ID_BYTES + location_bytes(msg.location)
        + value_bytes(msg.value),
        stamps=lambda msg: [msg.stamp],
        rebuild=lambda msg, stamps: _restamped(msg, stamp=stamps[0]),
        cost=_stamped_reply_cost,
    ))

    def _bb_body(msg) -> int:
        return ID_BYTES + 2 + sum(
            SUBHEADER_BYTES + ID_BYTES + location_bytes(w.location)
            + value_bytes(w.value)
            for w in msg.writes
        )

    def _bb_rebuild(msg, stamps):
        writes = tuple(
            _restamped(w, stamp=stamp) for w, stamp in zip(msg.writes, stamps)
        )
        return _restamped(msg, writes=writes)

    def _bb_cost(msg, _f=H + ID + 2, _ps=SUB + ID + 2 + SC):
        writes = msg.writes
        if not writes:
            return _f, 0
        dim = writes[0].stamp.dimension
        n = _f + len(writes) * (_ps + SF * dim)
        for w in writes:
            n += len(w.location) + vb(w.value)
        return n, len(writes) * dim

    _register(m.BroadcastBatch, _WirePlan(
        body=_bb_body,
        stamps=lambda msg: [w.stamp for w in msg.writes],
        rebuild=_bb_rebuild,
        cost=_bb_cost,
    ))


def _generic_plan(message: object) -> _WirePlan:
    """Fallback plan: size unknown messages from their public attributes."""

    def body(msg) -> int:
        try:
            attrs = vars(msg)
        except TypeError:
            return 8  # slotted test double: flat estimate
        return sum(value_bytes(attrs[name]) for name in sorted(attrs)) or 8

    return _WirePlan(body=body, stamps=_no_stamps, rebuild=_keep)


def _plan_for(message: object) -> _WirePlan:
    if not _PLANS:
        _build_plans()
    plan = _PLANS.get(type(message))
    if plan is None:
        plan = _generic_plan(message)
        _PLANS[type(message)] = plan
    return plan


# ----------------------------------------------------------------------
# Stateless measurement (full stamps)
# ----------------------------------------------------------------------
def measure_message(message: object) -> MessageCost:
    """The wire cost of ``message`` with full (non-delta) writestamps.

    This is what the network charges when no :class:`WireCodec` is
    installed — the honest baseline the delta path is compared against.
    """
    plan = _plan_for(message)
    stamps = plan.stamps(message)
    nbytes = HEADER_BYTES + plan.body(message)
    entries = 0
    for stamp in stamps:
        nbytes += stamp_full_bytes(stamp.dimension)
        entries += stamp.dimension
    return MessageCost(
        byte_size=nbytes, stamp_entries=entries, stamp_count=len(stamps)
    )


def fast_cost(message: object) -> Tuple[int, int]:
    """``(byte_size, stamp_entries)`` of ``message``, allocation-free.

    The network charges every send through this, so registered types use
    a hand-fused cost function instead of the body/stamps walk (which
    builds a list and a :class:`MessageCost` per call).  The walk stays
    the authoritative definition; ``tests/test_wire.py`` asserts both
    paths agree for every message type.
    """
    plan = _plan_for(message)
    cost = plan.cost
    if cost is not None:
        return cost(message)
    measured = measure_message(message)
    return measured.byte_size, measured.stamp_entries


def cost_table() -> Dict[type, _CostFn]:
    """The fused cost functions by message type, for direct dispatch.

    The network looks its messages up here to skip even the
    :func:`fast_cost` call frame; types missing from the table (test
    doubles, future messages) go through :func:`fast_cost` instead.
    """
    if not _PLANS:
        _build_plans()
    return {
        message_type: plan.cost
        for message_type, plan in _PLANS.items()
        if plan.cost is not None
    }


# ----------------------------------------------------------------------
# The per-channel delta codec
# ----------------------------------------------------------------------
class _ChannelState:
    """One direction of one channel: basis stamp plus a frame sequence."""

    __slots__ = ("basis", "seq")

    def __init__(self) -> None:
        self.basis: Optional[Tuple[int, ...]] = None
        self.seq = 0


class WireCodec:
    """Delta-encodes writestamps over reliable FIFO channels.

    One codec instance serves one network: it holds the sender-side and
    receiver-side basis per directed channel.  ``encode`` must be called
    in send order and ``decode`` in delivery order — exactly the orders
    the FIFO network already guarantees.

    Statistics accumulate on the codec itself (`stamps_encoded`,
    `stamps_full`, `entries_carried`, `entries_saved`) so benchmarks can
    report how often the delta path engages.

    ``fast_lanes`` (default True) enables fused encode lanes for the two
    dominant frame shapes — stampless messages (invalidations, read
    requests) and :class:`~repro.protocols.messages.WriteBatch` — that
    skip the generic body/stamps/rebuild dispatch while producing
    byte-identical frames and accounting.  The lockstep property tests
    run both settings and assert equality; pass False to pin the
    authoritative generic path.
    """

    def __init__(self, fast_lanes: bool = True) -> None:
        self._send_state: Dict[Tuple[int, int], _ChannelState] = {}
        self._recv_state: Dict[Tuple[int, int], _ChannelState] = {}
        self.stamps_encoded = 0
        self.stamps_full = 0
        self.entries_carried = 0
        self.entries_saved = 0
        self.fast_lanes = fast_lanes
        #: Attached TraceCollector, or None (all emits are guarded).
        self.obs = None

    # -- channel state -------------------------------------------------
    def _sender(self, src: int, dst: int) -> _ChannelState:
        state = self._send_state.get((src, dst))
        if state is None:
            state = self._send_state[(src, dst)] = _ChannelState()
        return state

    def _receiver(self, src: int, dst: int) -> _ChannelState:
        state = self._recv_state.get((src, dst))
        if state is None:
            state = self._recv_state[(src, dst)] = _ChannelState()
        return state

    def mark_dirty(self, src: int, dst: int) -> None:
        """Force the next message on ``(src, dst)`` to carry full stamps.

        Called by the network whenever a message on the channel is lost
        (drop, partition, crash): the receiver's basis can no longer be
        assumed to match, so the delta chain restarts from a full stamp.
        """
        state = self._send_state.get((src, dst))
        if state is not None:
            state.basis = None
            if self.obs is not None:
                self.obs.emit("net", "resync", src=src, dst=dst)

    def mark_node_dirty(self, node_id: int) -> None:
        """Dirty every channel to or from ``node_id`` (crash handling)."""
        for (src, dst), state in self._send_state.items():
            if src == node_id or dst == node_id:
                state.basis = None
        if self.obs is not None:
            self.obs.emit("net", "resync.node", node=node_id)

    # -- encode fast lanes ---------------------------------------------
    def _encode_stampless(
        self, src: int, dst: int, message: object, plan: _WirePlan
    ) -> EncodedMessage:
        """Fused lane for messages carrying no writestamps.

        Invalidations and read/write requests of the baselines have no
        stamp fields: the generic walk would build an empty stamp list,
        run an empty loop, and keep the template as-is.  This lane goes
        straight to the body cost.  Byte accounting is identical by
        construction (HEADER + body, zero stamp entries) and the channel
        basis is untouched, exactly as the generic path leaves it.
        """
        state = self._sender(src, dst)
        state.seq += 1
        try:
            kind = message.kind
        except AttributeError:
            kind = type(message).__name__
        return EncodedMessage(
            kind=kind,
            template=message,
            channel_seq=state.seq,
            byte_size=HEADER_BYTES + plan.body(message),
            stamp_entries=0,
            stamp_entries_full=0,
        )

    def _encode_write_batch(
        self, src: int, dst: int, msg
    ) -> EncodedMessage:
        """Fused lane for ``W_BATCH`` frames (the write-behind hot kind).

        One pass over the batch computes the body bytes, delta-encodes
        each write's stamp against the running basis, and rebuilds the
        stripped sub-messages — where the generic path walks the writes
        three times (body sum, stamp list, rebuild zip).  Every byte,
        stamp-entry count, and codec counter matches the generic path;
        ``tests/test_prop_wire.py`` locksteps the two.
        """
        state = self._sender(src, dst)
        state.seq += 1
        writes = msg.writes
        basis = state.basis
        nbytes = HEADER_BYTES + ID_BYTES + 2
        carried = 0
        full_equivalent = 0
        n_full = 0
        rebuilt = []
        for w in writes:
            nbytes += (
                SUBHEADER_BYTES + 2 + len(w.location) + value_bytes(w.value)
            )
            components = w.stamp.components
            dimension = len(components)
            full_equivalent += dimension
            if basis is None or len(basis) != dimension:
                encoded = EncodedStamp(
                    entries=components, full=True, dimension=dimension
                )
                nbytes += stamp_full_bytes(dimension)
                carried += dimension
                n_full += 1
            elif components == basis:
                encoded = _empty_delta(dimension)
                nbytes += STAMP_COUNT_BYTES
            else:
                changed: List[int] = []
                for index, (new, old) in enumerate(zip(components, basis)):
                    if new != old:
                        changed.append(index)
                        changed.append(new)
                n_changed = len(changed) // 2
                if _delta_beats_full(n_changed, dimension):
                    encoded = EncodedStamp(
                        entries=tuple(changed), full=False, dimension=dimension
                    )
                    nbytes += stamp_delta_bytes(n_changed)
                    carried += n_changed
                else:
                    encoded = EncodedStamp(
                        entries=components, full=True, dimension=dimension
                    )
                    nbytes += stamp_full_bytes(dimension)
                    carried += dimension
                    n_full += 1
            rebuilt.append(_restamped(w, stamp=encoded))
            basis = components
        state.basis = basis
        self.stamps_encoded += len(writes)
        self.stamps_full += n_full
        self.entries_carried += carried
        self.entries_saved += full_equivalent - carried
        template = _restamped(msg, writes=tuple(rebuilt)) if writes else msg
        return EncodedMessage(
            kind=msg.kind,
            template=template,
            channel_seq=state.seq,
            byte_size=nbytes,
            stamp_entries=carried,
            stamp_entries_full=full_equivalent,
        )

    # -- encode / decode -----------------------------------------------
    def encode(self, src: int, dst: int, message: object) -> EncodedMessage:
        """Strip stamps into channel-delta form; returns the wire frame."""
        plan = _plan_for(message)
        if self.fast_lanes:
            if plan.stamps is _no_stamps:
                return self._encode_stampless(src, dst, message, plan)
            if type(message) is _WRITE_BATCH_TYPE:
                return self._encode_write_batch(src, dst, message)
        stamps = plan.stamps(message)
        state = self._sender(src, dst)
        state.seq += 1
        nbytes = HEADER_BYTES + plan.body(message)
        carried = 0
        full_equivalent = 0
        encoded_stamps: List[EncodedStamp] = []
        basis = state.basis
        for stamp in stamps:
            components = stamp.components
            dimension = len(components)
            full_equivalent += dimension
            self.stamps_encoded += 1
            if basis is None or len(basis) != dimension:
                encoded = EncodedStamp(
                    entries=components, full=True, dimension=dimension
                )
                nbytes += stamp_full_bytes(dimension)
                carried += dimension
                self.stamps_full += 1
            elif components == basis:
                # Unchanged stamp — half of all stamps in batched runs
                # (a reply echoing the request's merged clock).  One
                # C-level tuple compare instead of the component diff
                # loop, and the zero-entry token is interned.
                encoded = _empty_delta(dimension)
                nbytes += STAMP_COUNT_BYTES
            else:
                changed: List[int] = []
                for index, (new, old) in enumerate(zip(components, basis)):
                    if new != old:
                        changed.append(index)
                        changed.append(new)
                n_changed = len(changed) // 2
                if _delta_beats_full(n_changed, dimension):
                    encoded = EncodedStamp(
                        entries=tuple(changed), full=False, dimension=dimension
                    )
                    nbytes += stamp_delta_bytes(n_changed)
                    carried += n_changed
                else:
                    encoded = EncodedStamp(
                        entries=components, full=True, dimension=dimension
                    )
                    nbytes += stamp_full_bytes(dimension)
                    carried += dimension
                    self.stamps_full += 1
            encoded_stamps.append(encoded)
            basis = components
        state.basis = basis
        self.entries_carried += carried
        self.entries_saved += full_equivalent - carried
        template = plan.rebuild(message, encoded_stamps) if stamps else message
        return EncodedMessage(
            kind=getattr(message, "kind", type(message).__name__),
            template=template,
            channel_seq=state.seq,
            byte_size=nbytes,
            stamp_entries=carried,
            stamp_entries_full=full_equivalent,
        )

    def decode(self, src: int, dst: int, frame: EncodedMessage) -> object:
        """Rebuild the original message from the channel basis."""
        state = self._receiver(src, dst)
        gap = frame.channel_seq != state.seq + 1
        state.seq = frame.channel_seq
        message = frame.template
        plan = _plan_for(message)
        encoded_stamps = plan.stamps(message)
        if not encoded_stamps:
            return message
        basis = state.basis
        rebuilt: List[VectorClock] = []
        for encoded in encoded_stamps:
            if not isinstance(encoded, EncodedStamp):
                raise WireError(
                    f"decode of {frame.kind} found a raw stamp {encoded!r}; "
                    "was this frame already decoded?"
                )
            if encoded.full:
                components = encoded.entries
                gap = False  # a full stamp resynchronises the basis
            else:
                if gap or basis is None or len(basis) != encoded.dimension:
                    raise WireDesyncError(
                        f"delta stamp on channel ({src}->{dst}) without a "
                        "basis; a frame was lost after later frames were "
                        "already encoded"
                    )
                mutable = list(basis)
                entries = encoded.entries
                for position in range(0, len(entries), 2):
                    mutable[entries[position]] = entries[position + 1]
                components = tuple(mutable)
            rebuilt.append(VectorClock._from_trusted(components))
            basis = components
        state.basis = basis
        return plan.rebuild(message, rebuilt)
