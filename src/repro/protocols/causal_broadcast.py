"""Causal-broadcast memory — the paper's Figure 3 *non-example*.

Section 2: "One way to relate the two models is to assume that each
processor has a copy of the memory (a cache) and writes are sent as
broadcast messages to all processors ...  It may seem that when the
message delivery order preserves causality (for example by using the
causal broadcast protocol of ISIS) the values returned by read operations
will satisfy the requirements of causal memory.  This, however, is not
true."

This engine implements that tempting-but-wrong design faithfully:

* every node replicates every location;
* a write applies locally at once and is broadcast to all other nodes
  with an ISIS-style vector stamp counting *broadcasts delivered per
  sender*;
* delivery is delayed until every causally prior broadcast has been
  delivered (the standard CBCAST rule), then the value simply overwrites
  the local copy;
* reads are local and immediate.

Concurrent writes to one location may be delivered in different orders
at different nodes, so replicas diverge and reads can return values
outside their live sets — the Figure 3 anomaly, which the causal checker
catches (see ``benchmarks/bench_fig3_broadcast_anomaly.py``).
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.clocks import VectorClock
from repro.errors import ProtocolError
from repro.memory.local_store import INITIAL_WRITER, MemoryEntry
from repro.protocols.base import DSMNode, WriteOutcome
from repro.protocols.messages import BroadcastWrite
from repro.sim import Future

__all__ = ["CausalBroadcastNode"]


class CausalBroadcastNode(DSMNode):
    """One fully replicated node updated by causal broadcasts."""

    def __init__(self, node_id: int, **kwargs: Any):
        super().__init__(node_id, **kwargs)
        # V_i[j] = number of broadcasts from j delivered here (own
        # broadcasts count as delivered immediately).
        self.delivered = VectorClock.zero(self.n_nodes)
        self._replica: Dict[str, MemoryEntry] = {}
        self._held_back: List[BroadcastWrite] = []

    # ------------------------------------------------------------------
    # Application API — reads and writes are local and non-blocking
    # ------------------------------------------------------------------
    def read(self, location: str) -> Future:
        """Read the local replica (never a message)."""
        self.stats.reads += 1
        self.stats.local_read_hits += 1
        entry = self._entry(location)
        self._record_read(location, entry)
        future = Future(label=f"bread:{self.node_id}:{location}")
        future.resolve(entry.value)
        return future

    def write(self, location: str, value: Any) -> Future:
        """Apply locally, broadcast to everyone else (n-1 messages)."""
        self.stats.writes += 1
        self.stats.local_writes += 1
        self.delivered = self.delivered.increment(self.node_id)
        stamp = self.delivered
        entry = MemoryEntry(value=value, stamp=stamp, writer=self.node_id)
        self._replica[location] = entry
        self._notify_watchers(location, value)
        self._record_write(location, value, entry)
        message = BroadcastWrite(
            sender=self.node_id,
            seq=stamp[self.node_id],
            location=location,
            value=value,
            stamp=stamp,
        )
        for target in range(self.n_nodes):
            if target != self.node_id:
                self.network.send(self.node_id, target, message)
        future = Future(label=f"bwrite:{self.node_id}:{location}")
        future.resolve(WriteOutcome(location=location, value=value))
        return future

    def discard(self, location: str) -> bool:
        """Replicas are authoritative; there is nothing to discard."""
        return False

    def watch(self, location: str, predicate):
        """Watch this node's *replica* (the base class watches the store)."""
        future = Future(label=f"watch:{self.node_id}:{location}")
        entry = self._entry(location)
        if predicate(entry.value):
            future.resolve(entry.value)
            return future
        self._watchers.setdefault(location, []).append((predicate, future))
        return future

    # ------------------------------------------------------------------
    # CBCAST delivery
    # ------------------------------------------------------------------
    def handle_message(self, src: int, message: object) -> None:
        """Buffer the broadcast and deliver everything now deliverable."""
        if not isinstance(message, BroadcastWrite):
            raise ProtocolError(
                f"broadcast node {self.node_id} got unexpected {message!r}"
            )
        self._held_back.append(message)
        self._deliver_ready()

    def _deliver_ready(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            for held in list(self._held_back):
                if self._deliverable(held):
                    self._held_back.remove(held)
                    self._apply(held)
                    progressed = True

    def _deliverable(self, msg: BroadcastWrite) -> bool:
        stamp = msg.stamp.components
        delivered = self.delivered.components
        sender = msg.sender
        if stamp[sender] != delivered[sender] + 1:
            return False
        return all(
            s <= d
            for k, (s, d) in enumerate(zip(stamp, delivered))
            if k != sender
        )

    def _apply(self, msg: BroadcastWrite) -> None:
        self.delivered = self.delivered.update(msg.stamp)
        entry = MemoryEntry(value=msg.value, stamp=msg.stamp, writer=msg.sender)
        # The naive design: delivery order decides, even between
        # concurrent writes — this is precisely what breaks causal
        # memory's semantics (Figure 3).
        self._replica[msg.location] = entry
        self._notify_watchers(msg.location, msg.value)

    # ------------------------------------------------------------------
    # Replica access
    # ------------------------------------------------------------------
    def _entry(self, location: str) -> MemoryEntry:
        entry = self._replica.get(location)
        if entry is None:
            entry = MemoryEntry(
                value=self.store.initial_value,
                stamp=VectorClock.zero(self.n_nodes),
                writer=INITIAL_WRITER,
            )
            self._replica[location] = entry
        return entry

    @property
    def held_back_count(self) -> int:
        """Broadcasts buffered awaiting causally prior deliveries."""
        return len(self._held_back)

    def replica_value(self, location: str) -> Any:
        """Peek at the replica without recording a read (tests)."""
        return self._entry(location).value
