"""Causal-broadcast memory — the paper's Figure 3 *non-example*.

Section 2: "One way to relate the two models is to assume that each
processor has a copy of the memory (a cache) and writes are sent as
broadcast messages to all processors ...  It may seem that when the
message delivery order preserves causality (for example by using the
causal broadcast protocol of ISIS) the values returned by read operations
will satisfy the requirements of causal memory.  This, however, is not
true."

This engine implements that tempting-but-wrong design faithfully:

* every node replicates every location;
* a write applies locally at once and is broadcast to all other nodes
  with an ISIS-style vector stamp counting *broadcasts delivered per
  sender*;
* delivery is delayed until every causally prior broadcast has been
  delivered (the standard CBCAST rule), then the value simply overwrites
  the local copy;
* reads are local and immediate.

Concurrent writes to one location may be delivered in different orders
at different nodes, so replicas diverge and reads can return values
outside their live sets — the Figure 3 anomaly, which the causal checker
catches (see ``benchmarks/bench_fig3_broadcast_anomaly.py``).

With ``batching=True`` (the wire-level fast path) writes still apply
locally at once, but dissemination is deferred: writes accumulate in a
flush window, same-location writes coalesce (only the last survives),
and one :class:`~repro.protocols.messages.BroadcastBatch` per
destination carries the window.  Coalesced-away broadcasts leave *gaps*
in the sender's sequence, so the delivery rule relaxes from
``stamp[sender] == delivered[sender] + 1`` to ``stamp[sender] >
delivered[sender]`` — safe because a batch frame lists its surviving
writes in sender order and each write's stamp dominates the stamps of
everything coalesced beneath it.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.clocks import VectorClock
from repro.clocks.arena import HAVE_NUMPY
from repro.errors import ProtocolError
from repro.memory.local_store import INITIAL_WRITER, MemoryEntry
from repro.protocols.base import DSMNode, WriteOutcome
from repro.protocols.messages import BroadcastBatch, BroadcastWrite
from repro.sim import Future

if HAVE_NUMPY:
    import numpy as _np
else:  # pragma: no cover - image always ships numpy
    _np = None

__all__ = ["CausalBroadcastNode"]

#: How many scheduler turns a flush may wait for more same-instant writes.
_WB_MAX_DELAY_HOPS = 16
#: Window-size bound: a window this large flushes regardless.
_WB_MAX_WINDOW = 32
#: Held-back sets at least this large use the vectorised delivery scan
#: (smaller sets are cheaper through the scalar loop).
_VEC_MIN_HELD = 8


class CausalBroadcastNode(DSMNode):
    """One fully replicated node updated by causal broadcasts."""

    def __init__(self, node_id: int, *, batching: bool = False, **kwargs: Any):
        super().__init__(node_id, **kwargs)
        # V_i[j] = number of broadcasts from j delivered here (own
        # broadcasts count as delivered immediately).
        self.delivered = VectorClock.zero(self.n_nodes)
        self._replica: Dict[str, MemoryEntry] = {}
        self._held_back: List[BroadcastWrite] = []
        self.batching = batching
        #: Pending window, location -> the surviving broadcast for it.
        self._wb_window: Dict[str, BroadcastWrite] = {}
        self._wb_flush_scheduled = False
        self._wb_flush_hops = 0
        self._wb_flush_mark = 0
        self._wb_writes_seen = 0
        self.wb_batches = 0
        self.wb_batched_writes = 0
        self.wb_coalesced = 0
        #: Vectorised delivery scans performed (bench/diagnostic counter).
        self.vec_delivery_scans = 0
        # The store's arena backend decides the delivery-scan backend too,
        # so one switch (constructor arg or REPRO_ARENA_BACKEND) selects
        # the whole node's scalar-vs-vectorised behaviour.
        self._vectorise = _np is not None and self.store.backend == "numpy"

    # ------------------------------------------------------------------
    # Application API — reads and writes are local and non-blocking
    # ------------------------------------------------------------------
    def read(self, location: str) -> Future:
        """Read the local replica (never a message)."""
        self.stats.reads += 1
        self.stats.local_read_hits += 1
        entry = self._entry(location)
        if self.obs is not None:
            self.obs.emit(
                "proto", "op.read", node=self.node_id, clock=self.delivered,
                location=location, hit=True,
            )
        self._record_read(location, entry)
        future = Future(label=f"bread:{self.node_id}:{location}")
        future.resolve(entry.value)
        return future

    def write(self, location: str, value: Any) -> Future:
        """Apply locally, broadcast to everyone else (n-1 messages)."""
        self.stats.writes += 1
        self.stats.local_writes += 1
        self.delivered = self.delivered.increment(self.node_id)
        stamp = self.delivered
        if self.obs is not None:
            self.obs.emit(
                "proto", "op.write", node=self.node_id, clock=stamp,
                location=location,
                mode="batched" if self.batching else "broadcast",
            )
        entry = MemoryEntry(value=value, stamp=stamp, writer=self.node_id)
        self._replica[location] = entry
        self._notify_watchers(location, value)
        self._record_write(location, value, entry)
        message = BroadcastWrite(
            sender=self.node_id,
            seq=stamp[self.node_id],
            location=location,
            value=value,
            stamp=stamp,
        )
        if self.batching:
            # Defer dissemination; only the last write per location in
            # the window is broadcast.  Each write still incremented
            # delivered[self], so coalescing leaves sender-sequence gaps
            # the batched delivery rule is built to jump.
            if location in self._wb_window:
                self.wb_coalesced += 1
                if self.obs is not None:
                    self.obs.emit(
                        "proto", "wb.coalesce", node=self.node_id,
                        clock=stamp, location=location,
                    )
            self._wb_window[location] = message
            self._wb_writes_seen += 1
            if not self._wb_flush_scheduled:
                self._wb_flush_scheduled = True
                self._wb_flush_hops = 0
                self._wb_flush_mark = self._wb_writes_seen
                self.runtime.call_soon(self._wb_flush_tick)
        else:
            self.runtime.send_fanout(
                self.node_id,
                (t for t in range(self.n_nodes) if t != self.node_id),
                message,
            )
        future = Future(label=f"bwrite:{self.node_id}:{location}")
        future.resolve(WriteOutcome(location=location, value=value))
        return future

    def _wb_flush_tick(self) -> None:
        """Delayed flush: re-arm while same-instant writes keep coming.

        The first tick always re-arms once (the application's next step
        is scheduled behind it); afterwards only actual growth of the
        window extends the wait, bounded by ``_WB_MAX_DELAY_HOPS`` turns
        and ``_WB_MAX_WINDOW`` surviving writes.
        """
        if not self._wb_window:
            self._wb_flush_scheduled = False
            return
        grew = self._wb_writes_seen != self._wb_flush_mark
        if (
            (self._wb_flush_hops == 0 or grew)
            and self._wb_flush_hops < _WB_MAX_DELAY_HOPS
            and len(self._wb_window) < _WB_MAX_WINDOW
        ):
            self._wb_flush_hops += 1
            self._wb_flush_mark = self._wb_writes_seen
            self.runtime.call_soon(self._wb_flush_tick)
            return
        self._wb_flush()

    def _wb_flush(self) -> None:
        """Broadcast the window: one BroadcastBatch per destination."""
        self._wb_flush_scheduled = False
        if not self._wb_window:
            return
        survivors = sorted(
            self._wb_window.values(), key=lambda m: m.stamp[self.node_id]
        )
        self._wb_window = {}
        self.wb_batches += 1
        self.wb_batched_writes += len(survivors)
        if self.obs is not None:
            self.obs.emit(
                "proto", "wb.flush", node=self.node_id, clock=self.delivered,
                writes=len(survivors),
            )
            self.obs.metrics.histogram("wb.batch_occupancy").observe(
                len(survivors)
            )
        batch = BroadcastBatch(sender=self.node_id, writes=tuple(survivors))
        self.runtime.send_fanout(
            self.node_id,
            (t for t in range(self.n_nodes) if t != self.node_id),
            batch,
        )

    def discard(self, location: str) -> bool:
        """Replicas are authoritative; there is nothing to discard."""
        return False

    def watch(self, location: str, predicate):
        """Watch this node's *replica* (the base class watches the store)."""
        future = Future(label=f"watch:{self.node_id}:{location}")
        entry = self._entry(location)
        if predicate(entry.value):
            future.resolve(entry.value)
            return future
        self._watchers.setdefault(location, []).append((predicate, future))
        return future

    # ------------------------------------------------------------------
    # CBCAST delivery
    # ------------------------------------------------------------------
    def handle_message(self, src: int, message: object) -> None:
        """Buffer the broadcast and deliver everything now deliverable."""
        if isinstance(message, BroadcastBatch):
            # FIFO channels + in-frame sender order means held_back stays
            # ordered per sender, which the jump delivery rule requires.
            self._held_back.extend(message.writes)
        elif isinstance(message, BroadcastWrite):
            self._held_back.append(message)
        else:
            raise ProtocolError(
                f"broadcast node {self.node_id} got unexpected {message!r}"
            )
        self._deliver_ready()

    def _deliver_ready(self) -> None:
        if self._vectorise and len(self._held_back) >= _VEC_MIN_HELD:
            self._deliver_ready_vec()
            return
        progressed = True
        while progressed:
            progressed = False
            for held in list(self._held_back):
                if self._deliverable(held):
                    self._held_back.remove(held)
                    self._apply(held)
                    progressed = True

    def _deliver_ready_vec(self) -> None:
        """Vectorised twin of :meth:`_deliver_ready`.

        One stamp matrix over the held-back set; each scan step computes
        the CBCAST deliverability mask for *every* held message in one
        ``np.all``-style pass instead of a Python compare loop per
        message.  Delivery order is **identical** to the scalar scan: the
        scalar pass examines positions left to right against the current
        ``delivered`` clock, so taking the first ready index at or after
        the scan pointer — recomputing the mask after each delivery, as
        ``delivered`` only grows — reproduces its choices exactly (the
        lockstep backend-equality property tests pin this down).
        """
        np = _np
        msgs = self._held_back
        count = len(msgs)
        self.vec_delivery_scans += 1
        stamps = np.array(
            [m.stamp.components for m in msgs], dtype=np.uint64
        )
        senders = np.fromiter(
            (m.sender for m in msgs), dtype=np.intp, count=count
        )
        rows = np.arange(count)
        sender_comp = stamps[rows, senders]
        n_others = self.n_nodes - 1
        batching = self.batching
        alive = np.ones(count, dtype=bool)
        progressed = True
        while progressed:
            progressed = False
            pos = 0
            while True:
                delivered = np.asarray(
                    self.delivered.components, dtype=np.uint64
                )
                le = stamps <= delivered
                others_ok = (le.sum(axis=1) - le[rows, senders]) == n_others
                d_send = delivered[senders]
                if batching:
                    sender_ok = sender_comp > d_send
                else:
                    sender_ok = sender_comp == d_send + 1
                ready = others_ok & sender_ok & alive
                ready[:pos] = False
                hits = np.nonzero(ready)[0]
                if hits.size == 0:
                    break
                i = int(hits[0])
                alive[i] = False
                self._apply(msgs[i])
                progressed = True
                pos = i + 1
        if not alive.all():
            self._held_back = [
                m for keep, m in zip(alive.tolist(), msgs) if keep
            ]

    def _deliverable(self, msg: BroadcastWrite) -> bool:
        stamp = msg.stamp.components
        delivered = self.delivered.components
        sender = msg.sender
        if self.batching:
            # Coalesced-away broadcasts leave gaps in the sender
            # sequence; the sender component may jump forward.  Held
            # messages from one sender are scanned in send order and
            # their stamps are componentwise monotone, so an earlier
            # survivor always delivers before a later one.
            if stamp[sender] <= delivered[sender]:
                return False
        elif stamp[sender] != delivered[sender] + 1:
            return False
        return all(
            s <= d
            for k, (s, d) in enumerate(zip(stamp, delivered))
            if k != sender
        )

    def _apply(self, msg: BroadcastWrite) -> None:
        self.delivered = self.delivered.update(msg.stamp)
        if self.obs is not None:
            self.obs.emit(
                "proto", "bc.apply", node=self.node_id, clock=msg.stamp,
                location=msg.location, sender=msg.sender,
            )
        entry = MemoryEntry(value=msg.value, stamp=msg.stamp, writer=msg.sender)
        # The naive design: delivery order decides, even between
        # concurrent writes — this is precisely what breaks causal
        # memory's semantics (Figure 3).
        self._replica[msg.location] = entry
        self._notify_watchers(msg.location, msg.value)

    # ------------------------------------------------------------------
    # Replica access
    # ------------------------------------------------------------------
    def _entry(self, location: str) -> MemoryEntry:
        entry = self._replica.get(location)
        if entry is None:
            entry = MemoryEntry(
                value=self.store.initial_value,
                stamp=VectorClock.zero(self.n_nodes),
                writer=INITIAL_WRITER,
            )
            self._replica[location] = entry
        return entry

    @property
    def held_back_count(self) -> int:
        """Broadcasts buffered awaiting causally prior deliveries."""
        return len(self._held_back)

    def replica_value(self, location: str) -> Any:
        """Peek at the replica without recording a read (tests)."""
        return self._entry(location).value
