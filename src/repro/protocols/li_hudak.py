"""Li–Hudak dynamic distributed-manager DSM (migrating ownership).

The paper's Section 4.1 names Li's shared virtual memory [Li & Hudak,
TOCS 1989] as "a representative atomic DSM".  The fixed-owner baseline
in :mod:`repro.protocols.atomic_owner` captures its invalidation cost
model; this engine implements the *actual* dynamic distributed manager
algorithm, where ownership migrates to writers:

* every node keeps a per-location hint ``prob_owner`` (initially the
  static hash owner) — requests are forwarded along hint chains until
  they reach the true owner;
* a read miss chases the chain; the owner adds the requester to the
  location's copyset and replies directly; the requester repoints its
  hint at the replying owner;
* a write by a non-owner requests *ownership*: the request chases the
  chain (each forwarder repoints its hint at the requester — Li's path
  compression), the owner hands over the value and copyset, and the new
  owner invalidates every copy before applying its write — after which
  further writes by the same node are local;
* a node whose ownership request is in flight marks itself *pending*
  and queues any requests that reach it until the grant arrives, which
  (with FIFO channels) keeps forwarding chains acyclic and finite.

Executions remain sequentially consistent: per location there is a
single owner at any time, ownership transfers are serialized, writes
install only after every stale copy is invalidated, and processors
block per operation.  The fuzz tests verify this with the SC checker.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, ClassVar, Deque, Dict, Optional, Set, Tuple

from repro.clocks import VectorClock
from repro.errors import ProtocolError
from repro.memory.local_store import MemoryEntry
from repro.protocols.base import DSMNode, WriteOutcome
from repro.sim import Future

__all__ = ["LiHudakNode"]


def _identity_stamp(n_nodes: int, writer: int, seq: int) -> VectorClock:
    components = [0] * n_nodes
    components[writer] = seq
    return VectorClock(components)


# ----------------------------------------------------------------------
# Messages (module-local: only this engine speaks them)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MigRead:
    """Read request, forwarded along prob_owner chains."""

    kind: ClassVar[str] = "M_READ"
    request_id: int
    location: str
    requester: int


@dataclass(frozen=True)
class MigReadReply:
    """Owner's direct reply to the original requester."""

    kind: ClassVar[str] = "M_REPLY"
    request_id: int
    location: str
    value: Any
    stamp: VectorClock
    writer: int
    owner: int


@dataclass(frozen=True)
class MigOwnRequest:
    """Ownership (write) request, forwarded with path compression."""

    kind: ClassVar[str] = "M_OWN"
    request_id: int
    location: str
    requester: int


@dataclass(frozen=True)
class MigGrant:
    """Ownership transfer: current value + copyset to the new owner."""

    kind: ClassVar[str] = "M_GRANT"
    request_id: int
    location: str
    value: Any
    stamp: VectorClock
    writer: int
    copyset: Tuple[int, ...]


@dataclass(frozen=True)
class MigInvalidate:
    """New owner tells a copyset member to drop its copy."""

    kind: ClassVar[str] = "M_INV"
    request_id: int
    location: str


@dataclass(frozen=True)
class MigInvalidateAck:
    """Copy dropped."""

    kind: ClassVar[str] = "M_INV_ACK"
    request_id: int
    location: str


class _OwnedState:
    """Per-location state held only at the current owner."""

    __slots__ = ("entry", "copyset")

    def __init__(self, entry: MemoryEntry, copyset: Set[int]):
        self.entry = entry
        self.copyset = copyset


class _PendingWrite:
    """A local write waiting for ownership and/or invalidation."""

    __slots__ = ("future", "value", "seq", "awaiting", "started")

    def __init__(self, future: Future, value: Any, seq: int, started: float):
        self.future = future
        self.value = value
        self.seq = seq
        self.awaiting: Set[int] = set()
        self.started = started


class LiHudakNode(DSMNode):
    """One processor of the migrating-ownership coherent DSM."""

    def __init__(self, node_id: int, **kwargs: Any):
        super().__init__(node_id, **kwargs)
        self._write_seq = 0
        self._prob_owner: Dict[str, int] = {}
        self._owned: Dict[str, _OwnedState] = {}
        self._pending_reads: Dict[int, Tuple[Future, str, float]] = {}
        # One in-flight local write per location (ops block per process,
        # but several processes' requests can target one location here).
        self._pending_writes: Dict[str, _PendingWrite] = {}
        self._busy: Set[str] = set()  # owner mid-invalidation
        self._deferred: Dict[str, Deque[Callable[[], None]]] = {}
        self._cache: Dict[str, MemoryEntry] = {}
        self._request_meta: Dict[int, str] = {}

    # ------------------------------------------------------------------
    # Ownership bookkeeping
    # ------------------------------------------------------------------
    def _initial_owner(self, location: str) -> int:
        return self.namespace.owner(location)

    def prob_owner(self, location: str) -> int:
        """Current best guess of the location's owner."""
        return self._prob_owner.get(location, self._initial_owner(location))

    def is_owner(self, location: str) -> bool:
        """True iff this node currently owns the location."""
        if location in self._owned:
            return True
        # Bootstrapping: the static owner owns until a grant moves it.
        if (
            self._initial_owner(location) == self.node_id
            and location not in self._prob_owner
        ):
            self._owned[location] = _OwnedState(
                entry=self.store.initial_entry(), copyset=set()
            )
            return True
        return False

    def _pending_self(self, location: str) -> bool:
        return location in self._pending_writes

    # ------------------------------------------------------------------
    # Application API
    # ------------------------------------------------------------------
    def read(self, location: str) -> Future:
        """Read: local at the owner or on a valid copy, else chase."""
        self.stats.reads += 1
        future = Future(label=f"mread:{self.node_id}:{location}")
        if self.is_owner(location):
            if location in self._busy:
                self._defer(location, lambda: self._finish_owner_read(
                    location, future))
            else:
                self._finish_owner_read(location, future)
            return future
        cached = self._cache.get(location)
        if cached is not None:
            self.stats.local_read_hits += 1
            self._record_read(location, cached)
            future.resolve(cached.value)
            return future
        self.stats.remote_reads += 1
        request_id = self.next_request_id()
        self._pending_reads[request_id] = (future, location, self.runtime.now)
        self.runtime.send(
            self.node_id,
            self.prob_owner(location),
            MigRead(request_id=request_id, location=location,
                    requester=self.node_id),
        )
        return future

    def _finish_owner_read(self, location: str, future: Future) -> None:
        entry = self._owned[location].entry
        self.stats.local_read_hits += 1
        self._record_read(location, entry)
        future.resolve(entry.value)

    def write(self, location: str, value: Any) -> Future:
        """Write: local at the owner after invalidation, else migrate."""
        self.stats.writes += 1
        self._write_seq += 1
        future = Future(label=f"mwrite:{self.node_id}:{location}")
        pending = _PendingWrite(
            future=future, value=value, seq=self._write_seq,
            started=self.runtime.now,
        )
        if self.is_owner(location):
            self.stats.local_writes += 1
            if location in self._busy or location in self._pending_writes:
                self._defer(
                    location,
                    lambda: self._begin_owned_write(location, pending),
                )
            else:
                self._pending_writes[location] = pending
                self._begin_invalidation(location)
        else:
            self.stats.remote_writes += 1
            if location in self._pending_writes:
                raise ProtocolError(
                    "one application process per node: overlapping writes"
                )
            self._pending_writes[location] = pending
            request_id = self.next_request_id()
            self._request_meta[request_id] = location
            self.runtime.send(
                self.node_id,
                self.prob_owner(location),
                MigOwnRequest(
                    request_id=request_id, location=location,
                    requester=self.node_id,
                ),
            )
            # Optimistically point at ourselves: we are the next owner.
            self._prob_owner[location] = self.node_id
        return future

    def _begin_owned_write(self, location: str, pending: _PendingWrite) -> None:
        if location in self._busy or location in self._pending_writes:
            self._defer(
                location, lambda: self._begin_owned_write(location, pending)
            )
            return
        self._pending_writes[location] = pending
        self._begin_invalidation(location)

    # ------------------------------------------------------------------
    # Invalidation at the (possibly new) owner
    # ------------------------------------------------------------------
    def _begin_invalidation(self, location: str) -> None:
        state = self._owned[location]
        pending = self._pending_writes[location]
        targets = state.copyset - {self.node_id}
        pending.awaiting = set(targets)
        self._busy.add(location)
        if not targets:
            self._finish_write(location)
            return
        for target in sorted(targets):
            self.runtime.send(
                self.node_id,
                target,
                MigInvalidate(request_id=pending.seq, location=location),
            )

    def _finish_write(self, location: str) -> None:
        state = self._owned[location]
        pending = self._pending_writes.pop(location)
        entry = MemoryEntry(
            value=pending.value,
            stamp=_identity_stamp(self.n_nodes, self.node_id, pending.seq),
            writer=self.node_id,
        )
        state.entry = entry
        state.copyset = set()
        self._cache.pop(location, None)
        self._busy.discard(location)
        self._notify_watchers(location, pending.value)
        self.stats.blocked_time += self.runtime.now - pending.started
        self._record_write(location, pending.value, entry)
        pending.future.resolve(
            WriteOutcome(location=location, value=pending.value)
        )
        self._drain(location)

    # ------------------------------------------------------------------
    # Message dispatch
    # ------------------------------------------------------------------
    def handle_message(self, src: int, message: object) -> None:
        """Dispatch one delivered message (runs atomically)."""
        if isinstance(message, MigRead):
            self._on_read(message)
        elif isinstance(message, MigReadReply):
            self._on_read_reply(message)
        elif isinstance(message, MigOwnRequest):
            self._on_own_request(message)
        elif isinstance(message, MigGrant):
            self._on_grant(message)
        elif isinstance(message, MigInvalidate):
            self._on_invalidate(src, message)
        elif isinstance(message, MigInvalidateAck):
            self._on_invalidate_ack(src, message)
        else:
            raise ProtocolError(
                f"li-hudak node {self.node_id} got unexpected {message!r}"
            )

    # -- read chain ------------------------------------------------------
    def _on_read(self, msg: MigRead) -> None:
        location = msg.location
        if self.is_owner(location):
            if location in self._busy:
                self._defer(location, lambda: self._on_read(msg))
                return
            state = self._owned[location]
            state.copyset.add(msg.requester)
            self.runtime.send(
                self.node_id,
                msg.requester,
                MigReadReply(
                    request_id=msg.request_id,
                    location=location,
                    value=state.entry.value,
                    stamp=state.entry.stamp,
                    writer=state.entry.writer,
                    owner=self.node_id,
                ),
            )
            return
        if self._pending_self(location):
            # We are about to own it; serve once the grant arrives.
            self._defer(location, lambda: self._on_read(msg))
            return
        self.runtime.send(self.node_id, self.prob_owner(location), msg)

    def _on_read_reply(self, msg: MigReadReply) -> None:
        future, location, started = self._pending_reads.pop(msg.request_id)
        entry = MemoryEntry(value=msg.value, stamp=msg.stamp, writer=msg.writer)
        self._cache[location] = entry
        self._prob_owner[location] = msg.owner
        self.stats.blocked_time += self.runtime.now - started
        self._record_read(location, entry)
        future.resolve(msg.value)

    # -- ownership chain ---------------------------------------------------
    def _on_own_request(self, msg: MigOwnRequest) -> None:
        location = msg.location
        if self.is_owner(location):
            if location in self._busy or location in self._pending_writes:
                self._defer(location, lambda: self._on_own_request(msg))
                return
            state = self._owned.pop(location)
            self._prob_owner[location] = msg.requester
            if self.obs is not None:
                self.obs.emit(
                    "proto", "own.grant", node=self.node_id,
                    clock=state.entry.stamp, location=location,
                    to=msg.requester,
                )
            self.runtime.send(
                self.node_id,
                msg.requester,
                MigGrant(
                    request_id=msg.request_id,
                    location=location,
                    value=state.entry.value,
                    stamp=state.entry.stamp,
                    writer=state.entry.writer,
                    copyset=tuple(sorted(state.copyset | {self.node_id})),
                ),
            )
            # Anything still queued here chases the new owner.
            self._drain(location)
            return
        if self._pending_self(location) and msg.requester != self.node_id:
            self._defer(location, lambda: self._on_own_request(msg))
            return
        target = self.prob_owner(location)
        # Path compression: future requests here go to the new owner.
        self._prob_owner[location] = msg.requester
        self.runtime.send(self.node_id, target, msg)

    def _on_grant(self, msg: MigGrant) -> None:
        location = msg.location
        if self.obs is not None:
            self.obs.emit(
                "proto", "own.transfer", node=self.node_id,
                clock=msg.stamp, location=location,
            )
        self._prob_owner[location] = self.node_id
        self._owned[location] = _OwnedState(
            entry=MemoryEntry(
                value=msg.value, stamp=msg.stamp, writer=msg.writer
            ),
            copyset=set(msg.copyset),
        )
        self._begin_invalidation(location)

    # -- invalidation ------------------------------------------------------
    def _on_invalidate(self, src: int, msg: MigInvalidate) -> None:
        if self.obs is not None and msg.location in self._cache:
            self.obs.emit(
                "proto", "inv.cache", node=self.node_id,
                location=msg.location, owner=src,
            )
        self._cache.pop(msg.location, None)
        self.runtime.send(
            self.node_id,
            src,
            MigInvalidateAck(request_id=msg.request_id, location=msg.location),
        )

    def _on_invalidate_ack(self, src: int, msg: MigInvalidateAck) -> None:
        pending = self._pending_writes.get(msg.location)
        if pending is None or msg.request_id != pending.seq:
            raise ProtocolError(
                f"stray M_INV_ACK at node {self.node_id} for {msg.location!r}"
            )
        pending.awaiting.discard(src)
        if not pending.awaiting:
            self._finish_write(msg.location)

    # ------------------------------------------------------------------
    # Deferred-operation queue
    # ------------------------------------------------------------------
    def _defer(self, location: str, thunk: Callable[[], None]) -> None:
        self._deferred.setdefault(location, deque()).append(thunk)

    def _drain(self, location: str) -> None:
        while (
            location not in self._busy
            and location not in self._pending_writes
        ):
            queue = self._deferred.get(location)
            if not queue:
                self._deferred.pop(location, None)
                return
            thunk = queue.popleft()
            thunk()

    # ------------------------------------------------------------------
    # Overrides: the migrating cache is engine-local, not in the store
    # ------------------------------------------------------------------
    def watch(self, location: str, predicate):
        """Watch this node's current copy (owned or cached).

        Note that ownership migrates: a watch registered at a node that
        later loses ownership fires only for values that reach *this*
        node.  Tests watch the node they know will own the location.
        """
        future = Future(label=f"watch:{self.node_id}:{location}")
        if self.is_owner(location):
            entry: Optional[MemoryEntry] = self._owned[location].entry
        else:
            entry = self._cache.get(location)
        if entry is not None and predicate(entry.value):
            future.resolve(entry.value)
            return future
        self._watchers.setdefault(location, []).append((predicate, future))
        return future

    def discard(self, location: str) -> bool:
        """Drop a cached copy (the owner's authoritative copy stays)."""
        if self.is_owner(location):
            return False
        return self._cache.pop(location, None) is not None
