"""Concurrent-write resolution policies.

Section 2 of the paper: "It is possible to further refine the definition of
causal memory and specify a policy for selecting among alternatives ...
allowing the programmer to select among such policies can significantly
simplify programming of some applications."  Section 4.2 then relies on
exactly one such policy for the dictionary: "writes by the owner are always
favored when resolving concurrent writes."

A policy is consulted by the owner when it services a remote ``WRITE``
whose stamp is *concurrent* with the stamp of the currently stored entry.
(An incoming write whose stamp dominates the stored stamp always applies;
Figure 4's basic protocol corresponds to :class:`LastWriterWins`, which
also applies concurrent writes unconditionally — arrival order at the
owner breaks the tie, which is a legal selection among live values.)
"""

from __future__ import annotations

from repro.clocks import VectorClock
from repro.memory.local_store import MemoryEntry

__all__ = ["ConflictPolicy", "LastWriterWins", "OwnerFavoured"]


class ConflictPolicy:
    """Decides whether a concurrent incoming write replaces the stored one."""

    def apply_concurrent(
        self,
        owner_id: int,
        location: str,
        current: MemoryEntry,
        incoming_writer: int,
        incoming_value: object,
        incoming_stamp: VectorClock,
    ) -> bool:
        """Return True to install the incoming write, False to reject it."""
        raise NotImplementedError

    def coalescable(
        self, location: str, queued_value: object, new_value: object
    ) -> bool:
        """May a queued write-behind write be replaced by a newer one?

        Consulted by the batched causal protocol before coalescing two
        same-location writes in one flush run.  Coalescing means the
        owner never sees the superseded value; the default (True) is
        correct for causal memory — the superseded write remains in the
        writer's recorded history, and hiding it from everyone else is a
        legal scheduling of concurrent observation.  A policy can return
        False for values with side-channel meaning (e.g. a tombstone the
        owner must observe).
        """
        return True

    def describe(self) -> str:
        """Name used in experiment reports."""
        return type(self).__name__


class LastWriterWins(ConflictPolicy):
    """Figure 4 verbatim: the owner installs every certified write.

    Among concurrent writes, whichever reaches the owner last is the one
    subsequent remote readers observe — a legal choice, since concurrent
    writes are all live for such readers (Definition 1, condition 1).
    """

    def apply_concurrent(
        self,
        owner_id: int,
        location: str,
        current: MemoryEntry,
        incoming_writer: int,
        incoming_value: object,
        incoming_stamp: VectorClock,
    ) -> bool:
        return True


class OwnerFavoured(ConflictPolicy):
    """Section 4.2's policy: the owner's own concurrent write survives.

    If the stored entry was written by the owner itself and the incoming
    write is concurrent with it, the incoming write is rejected.  This is
    what makes the dictionary's unsynchronised deletes safe: a stale
    concurrent delete (a write of the free marker by another process)
    cannot clobber an owner's newer insert into the same slot.
    """

    def apply_concurrent(
        self,
        owner_id: int,
        location: str,
        current: MemoryEntry,
        incoming_writer: int,
        incoming_value: object,
        incoming_stamp: VectorClock,
    ) -> bool:
        return current.writer != owner_id
