"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures without catching programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """The simulation kernel was used incorrectly or reached a bad state."""


class DeadlockError(SimulationError):
    """The simulator ran out of events while tasks were still blocked.

    This is the simulation-time analogue of a distributed deadlock: every
    process is waiting on a future that no pending event can resolve.
    """

    def __init__(self, blocked: list[str]):
        self.blocked = list(blocked)
        detail = ", ".join(blocked) or "<unknown>"
        super().__init__(f"simulation deadlock; blocked tasks: {detail}")


class NetworkError(SimulationError):
    """A message was sent to an unknown node or over a closed channel."""


class ClockError(ReproError):
    """Vector clocks of mismatched dimension were combined or compared."""


class MemoryError_(ReproError):
    """A local-memory (``M_i``) invariant was violated."""


class OwnershipError(MemoryError_):
    """An operation assumed the wrong owner for a location."""


class ProtocolError(ReproError):
    """A DSM protocol engine received an impossible message or state."""


class WriteRejectedError(ProtocolError):
    """A write was rejected by the owner's conflict-resolution policy.

    Raised only when a protocol is configured with a rejecting policy (the
    dictionary application of Section 4.2 of the paper) and the application
    asked for rejections to be surfaced rather than silently dropped.
    """

    def __init__(self, location: str, value: object, reason: str):
        self.location = location
        self.value = value
        self.reason = reason
        super().__init__(f"write of {value!r} to {location!r} rejected: {reason}")


class HistoryError(ReproError):
    """An operation history is malformed (e.g. duplicate writes)."""


class CheckError(ReproError):
    """A consistency checker was invoked on an unsupported history."""
