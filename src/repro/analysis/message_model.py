"""The paper's message-counting model (Section 4.1).

For the synchronous linear solver with ``n`` workers, one location per
worker, and handshake bits owned by their worker:

* **Causal memory** — each worker re-reads ``n - 1`` remote components
  (``2(n-1)`` messages) and each handshake bit costs one remote read and
  one remote write by the coordinator (``2 * 4 = 8`` messages), giving
  exactly ``2n + 6`` messages per processor per iteration.
* **Atomic memory** — the same reads and handshakes, plus invalidation
  of the ``n - 1`` cached copies when each owner writes its component:
  "at least ``3n + 5``".  The paper's bound counts invalidation messages
  but not their acknowledgements; a real protocol (like the baseline in
  :mod:`repro.protocols.atomic_owner`) also pays acks and handshake-bit
  invalidations, landing at ``4n + 8`` in this reproduction's
  measurements.

These closed forms are compared against *measured* counts by experiment
E6 (``benchmarks/bench_table_message_counts.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

__all__ = [
    "causal_messages_per_processor",
    "atomic_messages_lower_bound",
    "atomic_messages_measured_model",
    "central_messages_estimate",
    "crossover_analysis",
    "ComparisonRow",
]


def causal_messages_per_processor(n: int) -> int:
    """Paper: ``2n + 6`` messages per processor per iteration."""
    return 2 * n + 6


def atomic_messages_lower_bound(n: int) -> int:
    """Paper: "at least ``3n + 5``" (invalidations counted, acks not)."""
    return 3 * n + 5


def atomic_messages_measured_model(n: int) -> int:
    """What the full baseline actually pays: ``4n + 8``.

    ``2(n-1)`` read misses + ``2(n-1)`` invalidations-with-acks for the
    component write + 8 handshake messages + 4 handshake-bit
    invalidations-with-acks.
    """
    return 4 * n + 8


def central_messages_estimate(n: int) -> int:
    """Central server, no caching at all: every operation is 2 messages.

    Per worker per iteration: ``2(n-1)`` component reads + 2 for the
    component write + 16 for the four handshake steps (each needing a
    remote read *and* producing a remote write) + ``2(n+1)`` re-reads of
    the constant row of ``A`` and of ``b`` (nothing is cached).
    """
    return 2 * (n - 1) + 2 + 16 + 2 * (n + 1)


@dataclass(frozen=True)
class ComparisonRow:
    """Analytic comparison at one system size."""

    n: int
    causal: int
    atomic_bound: int
    atomic_model: int
    savings_vs_bound: int

    @property
    def ratio(self) -> float:
        """Atomic lower bound over causal cost."""
        return self.atomic_bound / self.causal


def crossover_analysis(ns: Iterable[int]) -> List[ComparisonRow]:
    """Tabulate the analytic comparison over system sizes.

    The paper's claim has no crossover: causal memory wins for every
    ``n >= 1`` (``(3n+5) - (2n+6) = n - 1 >= 0``), and the advantage
    grows linearly.  This function makes that claim checkable.
    """
    rows = []
    for n in ns:
        causal = causal_messages_per_processor(n)
        bound = atomic_messages_lower_bound(n)
        rows.append(
            ComparisonRow(
                n=n,
                causal=causal,
                atomic_bound=bound,
                atomic_model=atomic_messages_measured_model(n),
                savings_vs_bound=bound - causal,
            )
        )
    return rows
