"""The paper's message-counting model (Section 4.1).

For the synchronous linear solver with ``n`` workers, one location per
worker, and handshake bits owned by their worker:

* **Causal memory** — each worker re-reads ``n - 1`` remote components
  (``2(n-1)`` messages) and each handshake bit costs one remote read and
  one remote write by the coordinator (``2 * 4 = 8`` messages), giving
  exactly ``2n + 6`` messages per processor per iteration.
* **Atomic memory** — the same reads and handshakes, plus invalidation
  of the ``n - 1`` cached copies when each owner writes its component:
  "at least ``3n + 5``".  The paper's bound counts invalidation messages
  but not their acknowledgements; a real protocol (like the baseline in
  :mod:`repro.protocols.atomic_owner`) also pays acks and handshake-bit
  invalidations, landing at ``4n + 8`` in this reproduction's
  measurements.

These closed forms are compared against *measured* counts by experiment
E6 (``benchmarks/bench_table_message_counts.py``).

The wire layer (PR 3) adds a *byte* axis to the same analysis: the
dominant metadata cost of causal DSM is the vector writestamp, ``4n``
bytes per full stamp.  :func:`stamp_bytes_per_message` gives the full
and delta costs, and :func:`delta_stamp_reduction` the closed-form
fraction of stamp bytes the delta encoding removes when a channel's
consecutive messages differ in ``k`` components — the analytic twin of
the measured ``bandwidth`` section in ``BENCH_substrate.json``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

__all__ = [
    "causal_messages_per_processor",
    "atomic_messages_lower_bound",
    "atomic_messages_measured_model",
    "central_messages_estimate",
    "crossover_analysis",
    "ComparisonRow",
    "stamp_bytes_per_message",
    "delta_stamp_reduction",
]


def causal_messages_per_processor(n: int) -> int:
    """Paper: ``2n + 6`` messages per processor per iteration."""
    return 2 * n + 6


def atomic_messages_lower_bound(n: int) -> int:
    """Paper: "at least ``3n + 5``" (invalidations counted, acks not)."""
    return 3 * n + 5


def atomic_messages_measured_model(n: int) -> int:
    """What the full baseline actually pays: ``4n + 8``.

    ``2(n-1)`` read misses + ``2(n-1)`` invalidations-with-acks for the
    component write + 8 handshake messages + 4 handshake-bit
    invalidations-with-acks.
    """
    return 4 * n + 8


def central_messages_estimate(n: int) -> int:
    """Central server, no caching at all: every operation is 2 messages.

    Per worker per iteration: ``2(n-1)`` component reads + 2 for the
    component write + 16 for the four handshake steps (each needing a
    remote read *and* producing a remote write) + ``2(n+1)`` re-reads of
    the constant row of ``A`` and of ``b`` (nothing is cached).
    """
    return 2 * (n - 1) + 2 + 16 + 2 * (n + 1)


def stamp_bytes_per_message(n: int, changed: int = 1) -> Dict[str, int]:
    """Wire bytes of one writestamp: full versus delta encoding.

    A full stamp costs ``2 + 4n`` bytes (count prefix + one 4-byte
    component per processor); a delta carrying ``changed`` components
    costs ``2 + 6*changed`` (count prefix + index and value per entry).
    Matches the constants in :mod:`repro.protocols.wire`.
    """
    return {"full": 2 + 4 * n, "delta": 2 + 6 * changed}


def delta_stamp_reduction(n: int, changed: int = 1) -> float:
    """Fraction of stamp bytes removed by delta encoding (0 when none).

    In steady state each message on a channel typically advances ``1-2``
    components (the sender's own, plus whatever it merged since), so for
    ``n >= 8`` the reduction exceeds ``1 - (2+12)/(2+32) ≈ 0.59`` — the
    analytic basis for the PR's ≥30%-at-n≥8 acceptance bar.
    """
    costs = stamp_bytes_per_message(n, changed)
    if costs["delta"] >= costs["full"]:
        return 0.0
    return 1.0 - costs["delta"] / costs["full"]


@dataclass(frozen=True)
class ComparisonRow:
    """Analytic comparison at one system size."""

    n: int
    causal: int
    atomic_bound: int
    atomic_model: int
    savings_vs_bound: int

    @property
    def ratio(self) -> float:
        """Atomic lower bound over causal cost."""
        return self.atomic_bound / self.causal


def crossover_analysis(ns: Iterable[int]) -> List[ComparisonRow]:
    """Tabulate the analytic comparison over system sizes.

    The paper's claim has no crossover: causal memory wins for every
    ``n >= 1`` (``(3n+5) - (2n+6) = n - 1 >= 0``), and the advantage
    grows linearly.  This function makes that claim checkable.
    """
    rows = []
    for n in ns:
        causal = causal_messages_per_processor(n)
        bound = atomic_messages_lower_bound(n)
        rows.append(
            ComparisonRow(
                n=n,
                causal=causal,
                atomic_bound=bound,
                atomic_model=atomic_messages_measured_model(n),
                savings_vs_bound=bound - causal,
            )
        )
    return rows
