"""Minimal table rendering for reports and EXPERIMENTS.md.

No third-party dependency; fixed-width ASCII with right-aligned numeric
columns, plus a GitHub-markdown renderer for the documentation files.
:func:`snapshot_table` renders a series of labelled
:class:`~repro.sim.trace.CounterSnapshot` rows as interval deltas.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Sequence

__all__ = [
    "Table",
    "snapshot_table",
    "histogram_table",
    "gauge_table",
    "bench_trajectory_table",
]


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 1000 or (0 < abs(value) < 0.01):
            return f"{value:.3e}"
        return f"{value:.2f}"
    return str(value)


class Table:
    """A small, immutable-ish result table.

    Examples
    --------
    >>> t = Table(["n", "causal", "atomic"], title="Messages")
    >>> t.add_row(4, 14, 17)
    >>> print(t.render())   # doctest: +ELLIPSIS
    Messages
    ...
    """

    def __init__(self, headers: Sequence[str], title: str = ""):
        self.title = title
        self.headers = list(headers)
        self.rows: List[List[str]] = []

    def add_row(self, *cells: Any) -> None:
        """Append one row (cells are formatted immediately)."""
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has "
                f"{len(self.headers)} columns"
            )
        self.rows.append([_format_cell(cell) for cell in cells])

    def extend(self, rows: Iterable[Sequence[Any]]) -> None:
        """Append many rows."""
        for row in rows:
            self.add_row(*row)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def _widths(self) -> List[int]:
        widths = [len(header) for header in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        return widths

    def render(self) -> str:
        """Fixed-width ASCII rendering."""
        widths = self._widths()
        lines: List[str] = []
        if self.title:
            lines.append(self.title)
        header = "  ".join(
            header.ljust(width) for header, width in zip(self.headers, widths)
        )
        lines.append(header)
        lines.append("  ".join("-" * width for width in widths))
        for row in self.rows:
            lines.append(
                "  ".join(cell.rjust(width) for cell, width in zip(row, widths))
            )
        return "\n".join(lines)

    def to_markdown(self) -> str:
        """GitHub-markdown rendering (for EXPERIMENTS.md)."""
        lines = []
        if self.title:
            lines.append(f"**{self.title}**")
            lines.append("")
        lines.append("| " + " | ".join(self.headers) + " |")
        lines.append("|" + "|".join("---" for _ in self.headers) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(row) + " |")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def histogram_table(
    snapshot: Any,
    title: str = "Histograms",
    prefix: str = "",
) -> Table:
    """Histogram summaries of a metrics snapshot, quantiles included.

    ``snapshot`` is a :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`
    tree (or just its ``"histograms"`` subtree).  ``prefix`` filters by
    name — ``histogram_table(snap, prefix="monitor.")`` renders only the
    monitor's latency series.  Quantile columns read 0 for pre-v4
    snapshots that never recorded samples.
    """
    histograms = snapshot.get("histograms", snapshot)
    table = Table(
        ["name", "count", "mean", "p50", "p95", "p99", "max"], title=title
    )
    for name in sorted(histograms):
        if not name.startswith(prefix):
            continue
        data = histograms[name]
        table.add_row(
            name,
            data.get("count", 0),
            data.get("mean", 0.0),
            data.get("p50", 0.0),
            data.get("p95", 0.0),
            data.get("p99", 0.0),
            data.get("max", 0.0),
        )
    return table


def gauge_table(
    snapshot: Any,
    title: str = "Gauges",
    prefix: str = "",
) -> Table:
    """Gauge values of a metrics snapshot, filtered by name prefix.

    ``snapshot`` is a :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`
    tree (or just its ``"gauges"`` subtree).  The live runtime exports
    its per-link socket/model/queue statistics as ``live.link.*``
    gauges, so ``gauge_table(snap, prefix="live.")`` renders one row per
    channel next to the run's counters.
    """
    gauges = snapshot.get("gauges", snapshot)
    table = Table(["name", "value"], title=title)
    for name in sorted(gauges):
        if not name.startswith(prefix):
            continue
        table.add_row(name, gauges[name])
    return table


#: ``(header, metric path)`` columns of the bench-trajectory report.
_TRAJECTORY_COLUMNS = (
    ("kernel ev/s", ("kernel", "events_per_sec")),
    ("proto ops/s (n=4)", ("protocol", "n=4", "ops_per_sec")),
    ("checker ops/s (n=4)", ("checker", "n=4", "ops_per_sec")),
    ("bytes/op cut (n=8)", ("bandwidth", "n=8", "bytes_per_op_reduction")),
    ("monitor ev/s", ("monitor", "events_per_sec")),
    ("live ops/s", ("runtime", "live", "ops_per_sec")),
    ("plane overhead", ("obs", "plane", "overhead")),
)


def bench_trajectory_table(
    trajectory: Any,
    title: str = "Benchmark trajectory",
) -> Table:
    """Render a :class:`~repro.analysis.benchjson.BenchTrajectory`.

    One row per appended run (label + timestamp), one column per
    headline metric across the schema's history — cells read ``-`` for
    runs recorded before their section existed (v1 files have no
    ``bandwidth``, pre-v8 files no ``obs.plane``), so a single table
    spans every schema version the reader accepts.
    """
    headers = ["run", "when"] + [header for header, _ in _TRAJECTORY_COLUMNS]
    table = Table(headers, title=title)
    series = [
        trajectory.metric_series(*path) for _, path in _TRAJECTORY_COLUMNS
    ]
    for index, run in enumerate(trajectory.runs):
        label = run.label + (" (smoke)" if run.smoke else "")
        cells: List[Any] = [label, run.timestamp]
        for column in series:
            value = column[index]
            cells.append(value if value is not None else "-")
        table.add_row(*cells)
    return table


def snapshot_table(
    snapshots: Sequence[Any],
    title: str = "Message counters by interval",
) -> Table:
    """Interval deltas of a cumulative snapshot series, labels surfaced.

    Each row is one interval between consecutive snapshots (the first
    row counts from zero).  A label supplied at snapshot time
    (``NetworkStats.snapshot(now, label="iteration=3")``) names its row;
    unlabelled intervals fall back to their index.
    """
    table = Table(
        ["interval", "t", "messages", "bytes", "stamp entries"], title=title
    )
    previous = None
    for index, snapshot in enumerate(snapshots):
        delta = snapshot.delta(previous) if previous is not None else snapshot
        table.add_row(
            delta.label if delta.label is not None else f"#{index}",
            delta.time,
            delta.total,
            delta.bytes_total,
            delta.stamp_entries,
        )
        previous = snapshot
    return table
