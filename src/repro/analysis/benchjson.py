"""Persistent benchmark trajectory (``BENCH_substrate.json``).

The reproduction's instruments — kernel, protocol engines, checkers —
are themselves performance-sensitive: a silent 10x regression in any of
them guts the property-test coverage and caps the ``n`` the message-count
experiments can reach.  ``python -m repro.bench`` measures them and
*appends* to a JSON trajectory file, so every PR leaves a dated record
and regressions are visible as a series, not a single overwritable
number.

Schema (``schema`` is bumped on incompatible change; the reader accepts
every version up to the current one)::

    {
      "schema": 8,
      "runs": [
        {
          "label": "<free-form run label>",
          "timestamp": "<ISO-8601 UTC>",
          "smoke": false,
          "metrics": {
            "kernel": {"events_per_sec": ..., "events": ...},
            "protocol": {"n=4": {"ops_per_sec": ..., "messages": ...,
                                  "sweeps_performed": ...,
                                  "sweeps_skipped": ...,
                                  "invalidations": ...}, ...,
                         "profile": {"workload": "n=16",
                                      "total_time": ...,
                                      "top": [{"function": ...,
                                               "cumtime": ...}, ...]}},
            "checker": {"n=4": {"ops_per_sec": ..., "ops": ...}, ...},
            "bandwidth": {"n=8": {"baseline": {...}, "fastpath": {...},
                                   "bytes_per_op_reduction": ...,
                                   "stamp_entries_per_op_reduction": ...},
                          ...},
            "obs": {"guard_overhead": ..., "emit_overhead": ...,
                    "traced_fig4": {"trace_events": ...,
                                     "metrics": {...}, ...},
                    "plane": {"detached_ops_per_sec": ...,
                               "attached_ops_per_sec": ...,
                               "overhead": ...,
                               "frames_merged": ..., "events_merged": ...,
                               "frames_lost": ..., "events_lost": ...,
                               "sideband_bytes": ...,
                               "messages_equal": true,
                               "socket_bytes_delta": ...,
                               "sideband_excluded": true}},
            "monitor": {"events_per_sec": ..., "ops": ...,
                        "attached_overhead": ..., "hook_overhead": ...,
                        "monitor_overhead": ..., "max_window": ...,
                        "gc_retired": ..., "cache_hit_rate": ...},
            "substrate": {"vectorised": {
                "n=64": {"sweep": {"python_rows_per_sec": ...,
                                    "numpy_rows_per_sec": ...,
                                    "speedup": ..., "masks_equal": true},
                         "protocol": {"scalar_ops_per_sec": ...,
                                       "vector_ops_per_sec": ...,
                                       "speedup": ...}}, ...}},
            "runtime": {"live": {"transport": "uds", "ops_per_sec": ...,
                                  "latency_p50_ms": ..., "latency_p95_ms": ...,
                                  "latency_p99_ms": ...,
                                  "model_bytes_per_op": ...,
                                  "socket_bytes_per_op": ...,
                                  "framing_overhead": ...,
                                  "verdicts_equal": true}}
          }
        }, ...
      ]
    }

Schema history:

* **1** — kernel / protocol / checker sections only.
* **2** — adds the optional ``bandwidth`` section (wire-level A/B:
  bytes per op, writestamp entries per op, batch occupancy).  v1 files
  load unchanged — the section is simply absent from their runs.
* **3** — adds the optional ``obs`` section (tracing overhead A/B and
  the traced-run metrics snapshot).  Older files load unchanged.
* **4** — adds the optional ``monitor`` section (streaming-monitor
  sustained throughput, attached-overhead A/B, window/GC statistics),
  and histogram leaves gain ``p50``/``p95``/``p99`` quantiles.  v1–v3
  files load unchanged.
* **5** — adds the optional ``substrate`` section; its ``vectorised``
  subtree carries the writestamp-arena backend A/B per clock width
  (``"n=64": {"sweep": {...}, "protocol": {...}}`` — batched-mask
  rows/sec per backend with the numpy/python speedup and a
  mask-equality canary, plus the end-to-end protocol ops/sec under
  each ``arena_backend``).  v1–v4 files load unchanged.
* **6** — adds the optional ``protocol.profile`` section (written by
  ``repro-bench --profile``): a cProfile top-N-by-cumulative-time table
  of the largest-n protocol workload, recorded as
  ``{"workload": "n=16", "total_time": ..., "sort": "cumulative",
  "top": [{"function": ..., "file": ..., "line": ..., "ncalls": ...,
  "tottime": ..., "cumtime": ...}, ...]}`` so the hot-spot ranking of
  each revision rides along with its throughput numbers.  v1–v5 files
  load unchanged.
* **7** — adds the optional ``runtime`` section; its ``live`` subtree
  records the asyncio/socket runtime run against the simulator on one
  seeded workload: live ops/sec and sim wall-clock ops/sec,
  completion-latency quantiles (p50/p95/p99, milliseconds), the
  analytic wire-model bytes/op vs the pickled socket bytes/op with
  their ratio (``framing_overhead``), and a ``verdicts_equal`` canary
  (offline causal verdicts of the two drivers must match).  v1–v6
  files load unchanged.
* **8** — adds the optional ``obs.plane`` section (telemetry-plane
  aggregation overhead, interleaved A/B): live ops/sec with the plane
  detached vs attached, their ratio (``overhead``, target <= 1.10),
  frames/events merged and lost on the attached run, sideband bytes,
  and the isolation canaries — ``messages_equal`` (the protocol sent
  the same messages either way) and ``sideband_excluded``
  (``socket_bytes_delta``, the attached-minus-detached protocol-socket
  byte difference, is negligible next to the sideband's own volume:
  telemetry streams over a separate channel and never leaks into the
  protocol sockets' ``NetworkStats`` accounting).  v1–v7 files load
  unchanged.

Metric leaves are plain numbers; grouping keys (``"n=4"``) are strings so
the file diffs cleanly and loads without custom decoding.

The loader is deliberately defensive about the file itself: a bench run
killed mid-write used to leave a truncated file that poisoned every
later run, and two concurrent appenders could leave two concatenated
JSON documents.  :meth:`BenchTrajectory.load` refuses such files by
default (`ReproError`), and ``load(path, repair=True)`` salvages every
complete run object instead; :meth:`BenchTrajectory.save` writes through
a temp file + :func:`os.replace` so a crash can no longer truncate.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ReproError

__all__ = ["SCHEMA_VERSION", "BenchRecord", "BenchTrajectory"]

SCHEMA_VERSION = 8

#: Versions the reader understands.  Older files simply lack the
#: optional ``bandwidth`` / ``obs`` / ``monitor`` / ``substrate`` /
#: ``protocol.profile`` / ``runtime`` / ``obs.plane`` metric sections,
#: so they load as-is.
SUPPORTED_SCHEMAS = (1, 2, 3, 4, 5, 6, 7, 8)


@dataclass(frozen=True)
class BenchRecord:
    """One benchmark run: a label, a timestamp, and a metrics tree."""

    label: str
    timestamp: str
    metrics: Dict[str, Any]
    smoke: bool = False

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict form used in the JSON file."""
        return {
            "label": self.label,
            "timestamp": self.timestamp,
            "smoke": self.smoke,
            "metrics": self.metrics,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "BenchRecord":
        """Inverse of :meth:`as_dict`; validates required keys."""
        try:
            return cls(
                label=str(payload["label"]),
                timestamp=str(payload["timestamp"]),
                smoke=bool(payload.get("smoke", False)),
                metrics=dict(payload["metrics"]),
            )
        except (KeyError, TypeError) as error:
            raise ReproError(f"malformed bench record: {error!r}") from error


@dataclass
class BenchTrajectory:
    """The append-only series of benchmark runs."""

    runs: List[BenchRecord] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    @classmethod
    def load(cls, path, repair: bool = False) -> "BenchTrajectory":
        """Read a trajectory; a missing file yields an empty trajectory.

        With ``repair=False`` (the default) any damage — truncation,
        trailing garbage, concatenated documents, unknown schema — is a
        :class:`ReproError`, so callers never silently build on a partial
        series.  With ``repair=True`` the loader salvages instead: every
        structurally complete document is merged (concurrent-append case)
        and, failing that, every complete run object inside the damaged
        text is recovered (truncation case).
        """
        file = Path(path)
        if not file.exists():
            return cls()
        text = file.read_text(encoding="utf-8")
        documents, damaged, damage_offset = _scan_documents(text)
        if not repair:
            if damaged or not documents:
                raise ReproError(
                    f"malformed bench JSON {file}: "
                    f"{damaged or 'no JSON document found'} "
                    f"(use load(..., repair=True) to salvage complete runs)"
                )
            if len(documents) > 1:
                raise ReproError(
                    f"{file} holds {len(documents)} concatenated JSON "
                    f"documents — a concurrent append corrupted it "
                    f"(use load(..., repair=True) to merge them)"
                )
            return cls(runs=_runs_of(documents[0], file, strict=True))
        runs: List[BenchRecord] = []
        for document in documents:
            runs.extend(_runs_of(document, file, strict=False))
        if damaged:
            # Only the damaged tail is scavenged — complete documents
            # before it were already taken whole above.
            runs.extend(_salvage_runs(text[damage_offset:]))
        return cls(runs=runs)

    def save(self, path) -> None:
        """Write the trajectory atomically (temp file + rename).

        Stable key order and a trailing newline keep diffs clean; the
        rename guarantees readers see either the old file or the new one,
        never a truncated intermediate.
        """
        file = Path(path)
        payload = {
            "schema": SCHEMA_VERSION,
            "runs": [run.as_dict() for run in self.runs],
        }
        text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
        tmp = file.with_name(file.name + ".tmp")
        tmp.write_text(text, encoding="utf-8")
        os.replace(tmp, file)

    # ------------------------------------------------------------------
    # Recording and introspection
    # ------------------------------------------------------------------
    def append(self, record: BenchRecord) -> None:
        """Add one run to the series."""
        self.runs.append(record)

    def latest(self) -> Optional[BenchRecord]:
        """The most recent run, or None when empty."""
        return self.runs[-1] if self.runs else None

    def metric_series(self, *path: str) -> List[Any]:
        """The value at a metric path across all runs (missing -> None).

        >>> t = BenchTrajectory()
        >>> t.append(BenchRecord("a", "t0", {"kernel": {"events_per_sec": 2.0}}))
        >>> t.metric_series("kernel", "events_per_sec")
        [2.0]
        """
        series: List[Any] = []
        for run in self.runs:
            node: Any = run.metrics
            for key in path:
                if not isinstance(node, dict) or key not in node:
                    node = None
                    break
                node = node[key]
            series.append(node)
        return series

    def speedup(self, *path: str) -> Optional[float]:
        """latest/first ratio of a throughput metric, or None if undefined."""
        series = [v for v in self.metric_series(*path) if isinstance(v, (int, float))]
        if len(series) < 2 or not series[0]:
            return None
        return series[-1] / series[0]


# ----------------------------------------------------------------------
# File-shape helpers
# ----------------------------------------------------------------------
def _scan_documents(text: str) -> Tuple[List[Dict[str, Any]], str, int]:
    """Split ``text`` into complete JSON documents plus a damage note.

    Returns ``(documents, damage, damage_offset)`` where ``damage`` is an
    empty string for a clean file and a short description otherwise
    (truncated tail, non-JSON garbage, ...), and ``damage_offset`` is
    where the undecodable tail begins.  ``raw_decode`` walks concatenated
    documents, which is exactly the concurrent-append failure shape.
    """
    decoder = json.JSONDecoder()
    documents: List[Dict[str, Any]] = []
    index = 0
    length = len(text)
    while index < length:
        while index < length and text[index].isspace():
            index += 1
        if index >= length:
            break
        try:
            payload, end = decoder.raw_decode(text, index)
        except json.JSONDecodeError as error:
            return documents, f"undecodable from offset {index}: {error.msg}", index
        if isinstance(payload, dict):
            documents.append(payload)
        else:
            return documents, f"non-object document at offset {index}", index
        index = end
    return documents, "", length


def _runs_of(
    document: Dict[str, Any], file: Path, strict: bool
) -> List[BenchRecord]:
    """Extract the run records of one trajectory document."""
    if "runs" not in document:
        if strict:
            raise ReproError(f"{file} is not a bench trajectory (no 'runs')")
        return []
    schema = document.get("schema")
    if schema not in SUPPORTED_SCHEMAS:
        if strict:
            raise ReproError(
                f"{file} has schema {schema!r}, "
                f"expected one of {SUPPORTED_SCHEMAS}"
            )
        return []
    runs = document["runs"]
    if not isinstance(runs, list):
        if strict:
            raise ReproError(f"{file}: 'runs' is not a list")
        return []
    records = []
    for run in runs:
        try:
            records.append(BenchRecord.from_dict(run))
        except ReproError:
            if strict:
                raise
    return records


def _salvage_runs(text: str) -> List[BenchRecord]:
    """Recover complete run objects from a damaged trajectory file.

    Scans for the run-shaped objects inside a (possibly truncated)
    ``"runs": [...]`` array by decoding at every object start after the
    array opener; incomplete trailing objects simply fail to decode and
    are skipped.  Best effort by design — used only under
    ``load(..., repair=True)``.
    """
    marker = text.find('"runs"')
    if marker < 0:
        return []
    start = text.find("[", marker)
    if start < 0:
        return []
    decoder = json.JSONDecoder()
    records: List[BenchRecord] = []
    index = start + 1
    length = len(text)
    while index < length:
        while index < length and text[index] in " \t\r\n,":
            index += 1
        if index >= length or text[index] != "{":
            break
        try:
            payload, index = decoder.raw_decode(text, index)
        except json.JSONDecodeError:
            break
        try:
            records.append(BenchRecord.from_dict(payload))
        except ReproError:
            pass
    return records
