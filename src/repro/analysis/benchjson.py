"""Persistent benchmark trajectory (``BENCH_substrate.json``).

The reproduction's instruments — kernel, protocol engines, checkers —
are themselves performance-sensitive: a silent 10x regression in any of
them guts the property-test coverage and caps the ``n`` the message-count
experiments can reach.  ``python -m repro.bench`` measures them and
*appends* to a JSON trajectory file, so every PR leaves a dated record
and regressions are visible as a series, not a single overwritable
number.

Schema (``schema`` is bumped on incompatible change)::

    {
      "schema": 1,
      "runs": [
        {
          "label": "<free-form run label>",
          "timestamp": "<ISO-8601 UTC>",
          "smoke": false,
          "metrics": {
            "kernel": {"events_per_sec": ..., "events": ...},
            "protocol": {"n=4": {"ops_per_sec": ..., "messages": ...,
                                  "sweeps_performed": ...,
                                  "sweeps_skipped": ...,
                                  "invalidations": ...}, ...},
            "checker": {"n=4": {"ops_per_sec": ..., "ops": ...}, ...}
          }
        }, ...
      ]
    }

Metric leaves are plain numbers; grouping keys (``"n=4"``) are strings so
the file diffs cleanly and loads without custom decoding.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.errors import ReproError

__all__ = ["SCHEMA_VERSION", "BenchRecord", "BenchTrajectory"]

SCHEMA_VERSION = 1


@dataclass(frozen=True)
class BenchRecord:
    """One benchmark run: a label, a timestamp, and a metrics tree."""

    label: str
    timestamp: str
    metrics: Dict[str, Any]
    smoke: bool = False

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict form used in the JSON file."""
        return {
            "label": self.label,
            "timestamp": self.timestamp,
            "smoke": self.smoke,
            "metrics": self.metrics,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "BenchRecord":
        """Inverse of :meth:`as_dict`; validates required keys."""
        try:
            return cls(
                label=str(payload["label"]),
                timestamp=str(payload["timestamp"]),
                smoke=bool(payload.get("smoke", False)),
                metrics=dict(payload["metrics"]),
            )
        except (KeyError, TypeError) as error:
            raise ReproError(f"malformed bench record: {error!r}") from error


@dataclass
class BenchTrajectory:
    """The append-only series of benchmark runs."""

    runs: List[BenchRecord] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    @classmethod
    def load(cls, path) -> "BenchTrajectory":
        """Read a trajectory; a missing file yields an empty trajectory."""
        file = Path(path)
        if not file.exists():
            return cls()
        try:
            payload = json.loads(file.read_text(encoding="utf-8"))
        except json.JSONDecodeError as error:
            raise ReproError(f"malformed bench JSON {file}: {error}") from error
        if not isinstance(payload, dict) or "runs" not in payload:
            raise ReproError(f"{file} is not a bench trajectory (no 'runs')")
        if payload.get("schema") != SCHEMA_VERSION:
            raise ReproError(
                f"{file} has schema {payload.get('schema')!r}, "
                f"expected {SCHEMA_VERSION}"
            )
        return cls(runs=[BenchRecord.from_dict(run) for run in payload["runs"]])

    def save(self, path) -> None:
        """Write the trajectory (stable key order, trailing newline)."""
        payload = {
            "schema": SCHEMA_VERSION,
            "runs": [run.as_dict() for run in self.runs],
        }
        Path(path).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    # ------------------------------------------------------------------
    # Recording and introspection
    # ------------------------------------------------------------------
    def append(self, record: BenchRecord) -> None:
        """Add one run to the series."""
        self.runs.append(record)

    def latest(self) -> Optional[BenchRecord]:
        """The most recent run, or None when empty."""
        return self.runs[-1] if self.runs else None

    def metric_series(self, *path: str) -> List[Any]:
        """The value at a metric path across all runs (missing -> None).

        >>> t = BenchTrajectory()
        >>> t.append(BenchRecord("a", "t0", {"kernel": {"events_per_sec": 2.0}}))
        >>> t.metric_series("kernel", "events_per_sec")
        [2.0]
        """
        series: List[Any] = []
        for run in self.runs:
            node: Any = run.metrics
            for key in path:
                if not isinstance(node, dict) or key not in node:
                    node = None
                    break
                node = node[key]
            series.append(node)
        return series

    def speedup(self, *path: str) -> Optional[float]:
        """latest/first ratio of a throughput metric, or None if undefined."""
        series = [v for v in self.metric_series(*path) if isinstance(v, (int, float))]
        if len(series) < 2 or not series[0]:
            return None
        return series[-1] / series[0]
