"""Experiment-result persistence and regression comparison.

``python -m repro all --save results.json`` records every experiment's
pass flag and data payload; a later run can be compared against the
saved baseline to catch silent drift in measured quantities (message
counts are exact in this reproduction, so any delta is a regression).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ReproError

__all__ = ["ResultsStore", "ResultDelta"]


def _jsonable(value: Any) -> Any:
    """Coerce experiment data payloads into JSON-stable structures."""
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        items = [_jsonable(item) for item in value]
        if isinstance(value, (set, frozenset)):
            items.sort(key=repr)
        return items
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


@dataclass(frozen=True)
class ResultDelta:
    """One difference between a baseline and a new run."""

    experiment: str
    field: str
    baseline: Any
    current: Any

    def __str__(self) -> str:
        return (
            f"{self.experiment}.{self.field}: "
            f"{self.baseline!r} -> {self.current!r}"
        )


class ResultsStore:
    """A collection of experiment outcomes, serializable to JSON.

    Examples
    --------
    >>> store = ResultsStore()
    >>> store.record("fig1", passed=True, data={"concurrent": True})
    >>> restored = ResultsStore.from_json(store.to_json())
    >>> restored.passed("fig1")
    True
    """

    def __init__(self) -> None:
        self._results: Dict[str, Dict[str, Any]] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(self, experiment: str, passed: bool, data: Dict[str, Any]) -> None:
        """Store one experiment's outcome (overwrites earlier entries)."""
        self._results[experiment] = {
            "passed": bool(passed),
            "data": _jsonable(data),
        }

    def record_report(self, report) -> None:
        """Store an :class:`~repro.harness.experiments.ExperimentReport`."""
        self.record(report.exp_id, report.passed, report.data)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    @property
    def experiments(self) -> List[str]:
        """Recorded experiment names, sorted."""
        return sorted(self._results)

    def passed(self, experiment: str) -> bool:
        """The stored pass flag."""
        return self._entry(experiment)["passed"]

    def data(self, experiment: str) -> Dict[str, Any]:
        """The stored data payload."""
        return self._entry(experiment)["data"]

    def all_passed(self) -> bool:
        """True iff every recorded experiment passed."""
        return all(entry["passed"] for entry in self._results.values())

    def _entry(self, experiment: str) -> Dict[str, Any]:
        try:
            return self._results[experiment]
        except KeyError:
            raise ReproError(f"no recorded result for {experiment!r}") from None

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        """Serialize (sorted keys, stable across runs)."""
        return json.dumps(self._results, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ResultsStore":
        """Deserialize a store produced by :meth:`to_json`."""
        store = cls()
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise ReproError(f"malformed results JSON: {error}") from error
        if not isinstance(payload, dict):
            raise ReproError("results JSON must be an object")
        for experiment, entry in payload.items():
            if not isinstance(entry, dict) or "passed" not in entry:
                raise ReproError(f"malformed entry for {experiment!r}")
            store._results[experiment] = {
                "passed": bool(entry["passed"]),
                "data": entry.get("data", {}),
            }
        return store

    def save(self, path) -> None:
        """Write to a file."""
        Path(path).write_text(self.to_json(), encoding="utf-8")

    @classmethod
    def load(cls, path) -> "ResultsStore":
        """Read from a file."""
        return cls.from_json(Path(path).read_text(encoding="utf-8"))

    # ------------------------------------------------------------------
    # Comparison
    # ------------------------------------------------------------------
    def compare(self, baseline: "ResultsStore") -> List[ResultDelta]:
        """Differences against a baseline store.

        Reports pass-flag changes, data-field changes, and experiments
        present in exactly one of the two stores.
        """
        deltas: List[ResultDelta] = []
        names = set(self.experiments) | set(baseline.experiments)
        for name in sorted(names):
            if name not in self._results:
                deltas.append(
                    ResultDelta(name, "<presence>", "recorded", "missing")
                )
                continue
            if name not in baseline._results:
                deltas.append(
                    ResultDelta(name, "<presence>", "missing", "recorded")
                )
                continue
            mine, theirs = self._results[name], baseline._results[name]
            if mine["passed"] != theirs["passed"]:
                deltas.append(
                    ResultDelta(name, "passed", theirs["passed"], mine["passed"])
                )
            deltas.extend(
                self._compare_data(name, theirs["data"], mine["data"])
            )
        return deltas

    @staticmethod
    def _compare_data(
        name: str, baseline: Any, current: Any, prefix: str = "data"
    ) -> List[ResultDelta]:
        deltas: List[ResultDelta] = []
        if isinstance(baseline, dict) and isinstance(current, dict):
            for key in sorted(set(baseline) | set(current)):
                deltas.extend(
                    ResultsStore._compare_data(
                        name,
                        baseline.get(key),
                        current.get(key),
                        prefix=f"{prefix}.{key}",
                    )
                )
            return deltas
        if (
            isinstance(baseline, list)
            and isinstance(current, list)
            and len(baseline) == len(current)
        ):
            for index, (old, new) in enumerate(zip(baseline, current)):
                deltas.extend(
                    ResultsStore._compare_data(
                        name, old, new, prefix=f"{prefix}[{index}]"
                    )
                )
            return deltas
        if baseline != current:
            deltas.append(ResultDelta(name, prefix, baseline, current))
        return deltas
