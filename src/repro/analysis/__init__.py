"""Analytic models and reporting for the reproduction's experiments.

:mod:`repro.analysis.message_model`
    The paper's Section 4.1 message-counting formulas (``2n + 6`` for
    causal memory, at least ``3n + 5`` for atomic memory) and helpers
    comparing them against measured counts.
:mod:`repro.analysis.tables`
    Minimal ASCII/markdown table rendering used by the CLI, the
    benchmarks, and EXPERIMENTS.md generation.
:mod:`repro.analysis.benchjson`
    The persistent substrate-benchmark trajectory behind
    ``python -m repro.bench`` (``BENCH_substrate.json``).
"""

from repro.analysis.benchjson import BenchRecord, BenchTrajectory
from repro.analysis.message_model import (
    atomic_messages_lower_bound,
    causal_messages_per_processor,
    central_messages_estimate,
    crossover_analysis,
    delta_stamp_reduction,
    stamp_bytes_per_message,
)
from repro.analysis.results import ResultDelta, ResultsStore
from repro.analysis.tables import (
    Table,
    bench_trajectory_table,
    gauge_table,
    histogram_table,
    snapshot_table,
)

__all__ = [
    "BenchRecord",
    "BenchTrajectory",
    "ResultsStore",
    "ResultDelta",
    "causal_messages_per_processor",
    "atomic_messages_lower_bound",
    "central_messages_estimate",
    "crossover_analysis",
    "delta_stamp_reduction",
    "stamp_bytes_per_message",
    "Table",
    "snapshot_table",
    "histogram_table",
    "gauge_table",
    "bench_trajectory_table",
]
