"""Schedule exploration: systematic DFS and randomized (PCT) search.

Strategies
----------
``dfs``
    Bounded depth-first enumeration of every selectable-action sequence,
    with *dominance pruning*: a prefix whose per-unit action projections
    (Mazurkiewicz trace) match an already-visited prefix is abandoned —
    both prefixes reach the same protocol state, so continuations from
    one cover the other.  With pruning off the walk is a plain
    exhaustive enumeration (useful for validating the pruning itself).

``random`` / ``pct``
    Seeded stochastic schedules: ``random`` picks uniformly among
    selectable actions; ``pct`` assigns each chain (a channel, a task) a
    random priority and always runs the highest, lowering the running
    chain's priority at a few random change points — the classic
    probabilistic-concurrency-testing shape that surfaces ordering bugs
    bounded DFS depth would miss.

Every leaf execution records a history that is checked against the
model its protocol promises (``EXPECTED_MODEL``); crashes and reliable-
network deadlocks are violations too.  Checking goes through one shared
:class:`~repro.checker.CachedCausalChecker` plus a per-model history
memo, so dominated schedules that still reach distinct interleavings of
the *same* recorded history cost O(1) to re-verify — the measurable
payoff of the checker-memoisation work (see ``bench.py``'s checker
section).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.checker import (
    CachedCausalChecker,
    check_pram,
    check_sequential,
    check_slow,
    history_fingerprint,
)
from repro.checker.history import History
from repro.mc.counterexample import Counterexample
from repro.mc.program import McError, ProgramSpec
from repro.mc.scheduler import Action, ControlledRun, RunOutcome

__all__ = [
    "EXPECTED_MODEL",
    "CheckerZoo",
    "ExploreConfig",
    "ExplorationResult",
    "evaluate_outcome",
    "explore",
]

#: The consistency model each protocol engine promises.  Broadcast
#: memory is the paper's negative result: it looks causal but admits
#: Figure 3, so only slow memory can be promised for it.
EXPECTED_MODEL: Dict[str, str] = {
    "causal": "causal",
    "atomic": "sequential",
    "li": "sequential",
    "central": "sequential",
    "broadcast": "slow",
}

ALL_MODELS: Tuple[str, ...] = ("sequential", "causal", "pram", "slow")

_MODEL_FNS = {
    "sequential": lambda history: check_sequential(history).ok,
    "pram": lambda history: check_pram(history).ok,
    "slow": lambda history: check_slow(history).ok,
}


class CheckerZoo:
    """Memoised verdicts for every consistency model.

    Causal checking runs through a :class:`CachedCausalChecker` (history
    table + shared live-set cache); the other models get a plain
    per-history-fingerprint memo.  One zoo is shared across all leaves
    of an exploration, so dominated schedules re-verify in O(1).
    """

    def __init__(self) -> None:
        self.causal = CachedCausalChecker()
        self._memo: Dict[Tuple[str, Tuple], bool] = {}

    def verdict(self, history: History, model: str) -> bool:
        if model == "causal":
            return self.causal.check(history).ok
        try:
            check = _MODEL_FNS[model]
        except KeyError:
            raise McError(f"unknown consistency model {model!r}") from None
        key = (model, history_fingerprint(history))
        cached = self._memo.get(key)
        if cached is None:
            cached = check(history)
            self._memo[key] = cached
        return cached

    def stats(self) -> Dict[str, float]:
        return {
            "history_hits": self.causal.history_hits,
            "history_misses": self.causal.history_misses,
            "history_hit_rate": round(self.causal.history_hit_rate, 4),
            "live_hits": self.causal.live_cache.hits,
            "live_misses": self.causal.live_cache.misses,
            "live_hit_rate": round(self.causal.live_cache.hit_rate, 4),
        }


def evaluate_outcome(
    outcome: RunOutcome,
    protocol: str,
    models: Optional[Tuple[str, ...]] = None,
    zoo: Optional[CheckerZoo] = None,
    expected_model: Optional[str] = None,
) -> Tuple[Dict[str, bool], bool, Tuple[str, Optional[str], str]]:
    """Judge one leaf execution.

    Returns ``(verdicts, violated, (kind, model, description))``.  A
    crash is always a violation; blocked tasks are a violation only on a
    reliable network (no drops — the paper's protocols may legitimately
    block forever once messages are lost); otherwise the recorded
    history must satisfy the protocol's expected model.
    """
    expected = expected_model or EXPECTED_MODEL[protocol]
    zoo = zoo or CheckerZoo()
    wanted = models or (expected,)
    verdicts = {
        model: zoo.verdict(outcome.history, model) for model in wanted
    }
    if outcome.crashed is not None:
        return verdicts, True, (
            "crash", None, f"execution crashed: {outcome.crashed}"
        )
    if not outcome.completed:
        blocked = ", ".join(outcome.blocked)
        if outcome.drops == 0:
            return verdicts, True, (
                "deadlock", None,
                f"tasks blocked on a reliable network: {blocked}",
            )
        return verdicts, False, (
            "deadlock", None,
            f"tasks blocked after {outcome.drops} dropped messages: {blocked}",
        )
    if not verdicts.get(expected, True):
        return verdicts, True, (
            "consistency", expected,
            f"{protocol!r} execution violates {expected} consistency",
        )
    return verdicts, False, ("ok", None, "no violation")


@dataclass(frozen=True)
class ExploreConfig:
    """Exploration parameters (all deterministic given ``seed``)."""

    strategy: str = "dfs"  # "dfs" | "random" | "pct"
    max_schedules: int = 2000
    max_steps: int = 5000
    max_drops: int = 0
    prune: bool = True
    seed: int = 0
    full_zoo: bool = False
    expected_model: Optional[str] = None
    stop_on_violation: bool = False
    pct_changes: int = 3

    def __post_init__(self) -> None:
        if self.strategy not in ("dfs", "random", "pct"):
            raise McError(f"unknown strategy {self.strategy!r}")


@dataclass
class ExplorationResult:
    """What an exploration covered and what it found."""

    spec: ProgramSpec
    config: ExploreConfig
    schedules: int = 0
    pruned: int = 0
    completed: int = 0
    blocked: int = 0
    crashes: int = 0
    distinct_histories: int = 0
    exhausted: bool = False
    violations: List[Counterexample] = field(default_factory=list)
    checker_stats: Dict[str, float] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        shape = "exhausted" if self.exhausted else "budget-bounded"
        lines = [
            f"explored {self.schedules} schedules "
            f"({self.pruned} pruned, {shape}) "
            f"over protocol {self.spec.protocol!r} [{self.config.strategy}]",
            f"leaves: {self.completed} completed, {self.blocked} blocked, "
            f"{self.crashes} crashed; "
            f"{self.distinct_histories} distinct histories",
            f"violations: {len(self.violations)}",
        ]
        stats = self.checker_stats
        if stats:
            lines.append(
                "checker memo: history hit rate "
                f"{stats['history_hit_rate']:.0%}, live-set hit rate "
                f"{stats['live_hit_rate']:.0%}"
            )
        return "\n".join(lines)

    def to_jsonable(self) -> Dict:
        return {
            "schedules": self.schedules,
            "pruned": self.pruned,
            "completed": self.completed,
            "blocked": self.blocked,
            "crashes": self.crashes,
            "distinct_histories": self.distinct_histories,
            "exhausted": self.exhausted,
            "violations": len(self.violations),
            "checker": dict(self.checker_stats),
        }


class _TraceDigest:
    """Incremental Mazurkiewicz-trace identity of an action sequence.

    Actions are projected onto the units they touch; two sequences with
    equal projections are reorderings of each other by swaps of adjacent
    independent actions only, hence reach the same state.  Globally-
    dependent actions (unit ``("g",)``) additionally stamp an *epoch*
    into every later entry, so no action commutes across them.
    """

    __slots__ = ("_proj", "_epoch")

    def __init__(self) -> None:
        self._proj: Dict[Tuple, List] = {}
        self._epoch = 0

    def push(self, action: Action, units: Tuple[Tuple, ...]) -> None:
        entry = (self._epoch, action)
        for unit in units:
            self._proj.setdefault(unit, []).append(entry)
            if unit == ("g",):
                self._epoch += 1

    def key(self) -> Tuple:
        return tuple(
            sorted((unit, tuple(entries)) for unit, entries in self._proj.items())
        )


class _LeafTally:
    """Shared leaf bookkeeping for both exploration strategies."""

    def __init__(self, spec: ProgramSpec, config: ExploreConfig) -> None:
        self.spec = spec
        self.config = config
        self.zoo = CheckerZoo()
        self.result = ExplorationResult(spec=spec, config=config)
        self._fingerprints: Set[Tuple] = set()
        self.models = ALL_MODELS if config.full_zoo else None

    def record(self, outcome: RunOutcome) -> bool:
        """Count one leaf; returns True when exploration should stop."""
        result = self.result
        verdicts, violated, (kind, model, description) = evaluate_outcome(
            outcome,
            self.spec.protocol,
            models=self.models,
            zoo=self.zoo,
            expected_model=self.config.expected_model,
        )
        self._fingerprints.add(history_fingerprint(outcome.history))
        result.distinct_histories = len(self._fingerprints)
        if outcome.crashed is not None:
            result.crashes += 1
        elif outcome.completed:
            result.completed += 1
        else:
            result.blocked += 1
        if violated:
            result.violations.append(
                Counterexample(
                    spec=self.spec,
                    trace=outcome.trace,
                    kind=kind,
                    model=model,
                    description=description,
                    history_text=outcome.history.to_text(),
                    verdicts=verdicts,
                )
            )
            if self.config.stop_on_violation:
                return True
        return False

    def finish(self, schedules: int, pruned: int, exhausted: bool) -> ExplorationResult:
        self.result.schedules = schedules
        self.result.pruned = pruned
        self.result.exhausted = exhausted
        self.result.checker_stats = self.zoo.stats()
        return self.result


# ----------------------------------------------------------------------
# Systematic search
# ----------------------------------------------------------------------
def _explore_dfs(spec: ProgramSpec, config: ExploreConfig) -> ExplorationResult:
    tally = _LeafTally(spec, config)
    visited: Set[Tuple] = set()
    chosen: List[Action] = []
    remaining: List[List[Action]] = []
    schedules = 0
    pruned = 0
    exhausted = False
    stop = False

    while not stop:
        if schedules >= config.max_schedules:
            break
        # One execution: replay `chosen`, then extend first-choice-first,
        # recording untried siblings.  `fresh_from` marks the first depth
        # whose action was never executed before (everything shallower is
        # a replay and its digests are already in `visited`).
        fresh_from = max(len(chosen) - 1, 0)
        run = ControlledRun(spec, max_drops=config.max_drops)
        digest = _TraceDigest()
        was_pruned = False
        depth = 0
        while depth < config.max_steps:
            if run.crashed is not None:
                break
            actions = run.actions()
            if not actions:
                break
            if depth < len(chosen):
                action = chosen[depth]
            else:
                action = actions[0]
                chosen.append(action)
                remaining.append(actions[1:])
            run.apply(action)
            digest.push(action, run.units_of(action))
            if config.prune and depth >= fresh_from:
                key = digest.key()
                if key in visited:
                    was_pruned = True
                    depth += 1
                    break
                visited.add(key)
            depth += 1
        else:
            raise McError(
                f"schedule exceeded {config.max_steps} steps; "
                "raise max_steps or shrink the program"
            )
        schedules += 1
        if was_pruned:
            pruned += 1
        else:
            stop = tally.record(run.outcome())
        # Backtrack to the deepest depth with untried siblings.
        while remaining and not remaining[-1]:
            remaining.pop()
            chosen.pop()
        if not remaining:
            exhausted = True
            break
        chosen[-1] = remaining[-1].pop(0)

    return tally.finish(schedules, pruned, exhausted)


# ----------------------------------------------------------------------
# Randomized search
# ----------------------------------------------------------------------
def _chain_of(action: Action) -> Tuple:
    kind, key = action
    if key[0] == "m":
        return ("c", key[1], key[2], kind)
    if key[0] == "t":
        return ("t", key[1])
    return ("e",)


class _PctChooser:
    """Priority-based scheduling with a few random change points."""

    def __init__(self, rng: random.Random, changes: int, horizon: int):
        self._rng = rng
        self._priority: Dict[Tuple, float] = {}
        self._step = 0
        # Change points sampled once per schedule, PCT-style.
        points = min(changes, max(horizon - 1, 0))
        self._change_at = set(
            rng.sample(range(1, horizon), points) if points else []
        )

    def __call__(self, actions: List[Action], run: ControlledRun) -> Action:
        best = None
        best_priority = -1.0
        for action in actions:
            chain = _chain_of(action)
            priority = self._priority.get(chain)
            if priority is None:
                priority = self._rng.random()
                self._priority[chain] = priority
            if priority > best_priority:
                best_priority = priority
                best = action
        assert best is not None
        self._step += 1
        if self._step in self._change_at:
            # Demote the chain that just ran below every current priority.
            floor = min(self._priority.values(), default=1.0)
            self._priority[_chain_of(best)] = self._rng.random() * floor
        return best


def _explore_random(spec: ProgramSpec, config: ExploreConfig) -> ExplorationResult:
    tally = _LeafTally(spec, config)
    schedules = 0
    horizon = 4 * spec.n_ops + 8
    for index in range(config.max_schedules):
        rng = random.Random(f"mc/{config.strategy}/{config.seed}/{index}")
        if config.strategy == "pct":
            chooser = _PctChooser(rng, config.pct_changes, horizon)
        else:
            def chooser(actions, run, _rng=rng):
                return actions[_rng.randrange(len(actions))]
        run = ControlledRun(spec, max_drops=config.max_drops)
        for _ in range(config.max_steps):
            if run.crashed is not None:
                break
            actions = run.actions()
            if not actions:
                break
            run.apply(chooser(actions, run))
        else:
            raise McError(
                f"schedule exceeded {config.max_steps} steps; "
                "raise max_steps or shrink the program"
            )
        schedules += 1
        if tally.record(run.outcome()):
            break
    return tally.finish(schedules, pruned=0, exhausted=False)


def explore(
    spec: ProgramSpec, config: Optional[ExploreConfig] = None, **overrides
) -> ExplorationResult:
    """Explore ``spec``'s schedule space per ``config`` (or overrides)."""
    if config is None:
        config = ExploreConfig(**overrides)
    elif overrides:
        raise McError("pass either a config or keyword overrides, not both")
    if config.strategy == "dfs":
        return _explore_dfs(spec, config)
    return _explore_random(spec, config)
