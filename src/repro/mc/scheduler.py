"""Controlled execution: one program, one explorer-chosen schedule.

A :class:`ControlledRun` replaces the kernel's time-ordered event loop
with explicit choice: at every decision point it computes the set of
*selectable actions* — which pending events may legally fire next — and
the explorer picks one.  Legality encodes the network contract:

* **Per-channel FIFO** — of the pending deliveries on a directed channel
  ``(src, dst)``, only the oldest (lowest kernel sequence number, i.e.
  send order) is selectable.  Later deliveries become selectable as the
  channel drains.  This is exactly the reordering freedom a reliable
  FIFO network grants: cross-channel interleaving is arbitrary, in-channel
  order is fixed.
* **Stable action keys** — actions are named by *logical position*, not
  by kernel timestamps: the ``n``-th message on channel ``(s, d)`` is
  ``("m", s, d, n)`` whether it is delivered or dropped; the ``n``-th
  resumption of task ``T`` is ``("t", T, n)``; any other event (a sleep,
  a fault boundary) is ``("e", tag, n)``.  Keys are invariant under
  replay and across equivalent interleavings, which makes traces —
  sequences of ``("x", key)`` (execute) and ``("d", key)`` (drop)
  entries — replayable and comparable.
* **Drops as choices** — with a drop budget, every selectable delivery
  also offers a ``("d", key)`` action: cancel the delivery, modelling
  message loss at the moment the reliable-network assumption would have
  fired the handler.

Determinism caveat: controlled runs build their cluster with
:class:`~repro.sim.latency.ConstantLatency` and no random drop rate, so
executing a handler never consumes simulator randomness.  That is what
makes two schedules with the same per-process action order reach the
same state — the property the explorer's dominance pruning relies on
(DESIGN.md Section 4.6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.checker.history import History
from repro.mc.program import McError, ProgramSpec
from repro.memory import Namespace
from repro.protocols.base import DSMCluster
from repro.sim.kernel import ScheduledEvent
from repro.sim.latency import ConstantLatency

__all__ = [
    "Action",
    "ControlledRun",
    "RunOutcome",
    "run_controlled",
    "replay_trace",
]

#: ("x", key) executes the keyed event; ("d", key) drops a delivery.
Action = Tuple[str, Tuple]


@dataclass(frozen=True)
class RunOutcome:
    """What one controlled execution produced."""

    history: History
    trace: Tuple[Action, ...]
    steps: int
    completed: bool
    blocked: Tuple[str, ...]
    crashed: Optional[str]
    drops: int

    @property
    def clean(self) -> bool:
        """True when every process finished and nothing raised."""
        return self.completed and self.crashed is None


def _program_process(api, ops):
    for op in ops:
        if op[0] == "w":
            yield api.write(op[1], op[2])
        elif op[0] == "r":
            yield api.read(op[1])
        else:
            api.discard(op[1])
    return None


class ControlledRun:
    """One program execution driven action-by-action by an explorer."""

    def __init__(self, spec: ProgramSpec, max_drops: int = 0, collector=None):
        self.spec = spec
        self.max_drops = max_drops
        namespace = None
        if spec.owners is not None:
            namespace = Namespace.explicit(spec.n_procs, dict(spec.owners))
        self.cluster = DSMCluster(
            spec.n_procs,
            protocol=spec.protocol,
            seed=0,
            latency=ConstantLatency(1.0),
            namespace=namespace,
            initial_value=spec.initial_value,
            record_history=True,
        )
        if collector is not None:
            self.cluster.attach_obs(collector)
        self._proc_of_task: Dict[str, int] = {}
        self.tasks = []
        for proc, ops in enumerate(spec.processes):
            task = self.cluster.spawn(
                proc, _program_process, ops, name=f"P{proc}"
            )
            self._proc_of_task[f"P{proc}"] = proc
            self.tasks.append(task)
        # Logical position counters: how many messages each channel has
        # consumed (delivered or dropped), how many times each task has
        # resumed, how many "other" events of each tag have fired.
        self._chan_pos: Dict[Tuple[int, int], int] = {}
        self._task_pos: Dict[str, int] = {}
        self._other_pos: Dict[Optional[tuple], int] = {}
        self.trace: List[Action] = []
        self.drops_used = 0
        self.crashed: Optional[str] = None

    # ------------------------------------------------------------------
    # Decision points
    # ------------------------------------------------------------------
    def _key_of(self, event: ScheduledEvent) -> Tuple:
        tag = event.tag
        if tag is not None and tag[0] == "deliver":
            src, dst = tag[1], tag[2]
            return ("m", src, dst, self._chan_pos.get((src, dst), 0))
        if tag is not None and tag[0] == "task":
            name = tag[1]
            return ("t", name, self._task_pos.get(name, 0))
        return ("e", tag, self._other_pos.get(tag, 0))

    def _selectable(self) -> Dict[Tuple, ScheduledEvent]:
        """Key -> event for every currently selectable event.

        ``enabled_events`` is (time, seq)-sorted and the FIFO clamp keeps
        per-channel delivery times monotone, so the first event seen for
        a key is the channel/tag head — later same-key events are not
        selectable until the head is consumed.
        """
        selectable: Dict[Tuple, ScheduledEvent] = {}
        for event in self.cluster.sim.enabled_events():
            key = self._key_of(event)
            if key not in selectable:
                selectable[key] = event
        return selectable

    def actions(self) -> List[Action]:
        """The selectable actions, in deterministic order."""
        keys = list(self._selectable())
        actions: List[Action] = [("x", key) for key in keys]
        if self.drops_used < self.max_drops:
            actions.extend(("d", key) for key in keys if key[0] == "m")
        return actions

    def apply(self, action: Action) -> None:
        """Perform one action (execute or drop its keyed event)."""
        kind, key = action
        event = self._selectable().get(key)
        if event is None:
            raise McError(f"action {action!r} is not selectable here")
        if kind == "d":
            if key[0] != "m":
                raise McError(f"cannot drop non-delivery action {action!r}")
            if self.drops_used >= self.max_drops:
                raise McError("drop budget exhausted")
        elif kind != "x":
            raise McError(f"unknown action kind {kind!r}")
        self._advance_pos(key)
        self.trace.append(action)
        if kind == "d":
            self.drops_used += 1
            event.cancel()
            network = self.cluster.network
            if network.codec is not None:
                network.codec.mark_dirty(key[1], key[2])
            return
        try:
            self.cluster.sim.execute_event(event)
        except Exception as exc:  # noqa: BLE001 - crash is a model-checking verdict
            self.crashed = f"{type(exc).__name__}: {exc}"

    def _advance_pos(self, key: Tuple) -> None:
        if key[0] == "m":
            chan = (key[1], key[2])
            self._chan_pos[chan] = self._chan_pos.get(chan, 0) + 1
        elif key[0] == "t":
            self._task_pos[key[1]] = self._task_pos.get(key[1], 0) + 1
        else:
            self._other_pos[key[1]] = self._other_pos.get(key[1], 0) + 1

    # ------------------------------------------------------------------
    # Dependence units (the explorer's dominance digests)
    # ------------------------------------------------------------------
    def units_of(self, action: Action) -> Tuple[Tuple, ...]:
        """The state components ``action`` touches.

        Two adjacent actions with disjoint units commute: executing them
        in either order reaches the same protocol state and records the
        same history (timestamps may differ; nothing reads them).  The
        explorer prunes schedules whose per-unit action projections it
        has already seen.
        """
        kind, key = action
        if key[0] == "m":
            src, dst = key[1], key[2]
            if kind == "d":
                return (("c", src, dst),)
            return (("n", dst), ("c", src, dst))
        if key[0] == "t":
            return (("n", self._proc_of_task[key[1]]),)
        # Unknown event classes (sleeps, fault boundaries) are treated as
        # globally dependent — sound, never prunes across them.
        return (("g",),)

    # ------------------------------------------------------------------
    # Leaf evaluation
    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        return self.crashed is not None or not self._selectable()

    def outcome(self) -> RunOutcome:
        blocked = tuple(
            task.name for task in self.tasks if not task.resolved
        )
        failed = [
            task for task in self.tasks if task.resolved and task.failed
        ]
        crashed = self.crashed
        if crashed is None and failed:
            exc = failed[0].exception()
            crashed = f"{type(exc).__name__}: {exc}"
        return RunOutcome(
            history=self.cluster.history(),
            trace=tuple(self.trace),
            steps=len(self.trace),
            completed=not blocked and not failed,
            blocked=blocked,
            crashed=crashed,
            drops=self.drops_used,
        )


Chooser = Callable[[List[Action], ControlledRun], Action]


def run_controlled(
    spec: ProgramSpec,
    chooser: Chooser,
    max_drops: int = 0,
    max_steps: int = 100_000,
) -> RunOutcome:
    """Run ``spec`` to completion, asking ``chooser`` at every step."""
    run = ControlledRun(spec, max_drops=max_drops)
    for _ in range(max_steps):
        if run.crashed is not None:
            break
        actions = run.actions()
        if not actions:
            break
        run.apply(chooser(actions, run))
    else:
        raise McError(f"run exceeded {max_steps} steps; livelocked program?")
    return run.outcome()


def replay_trace(
    spec: ProgramSpec, trace: Tuple[Action, ...]
) -> RunOutcome:
    """Re-execute a recorded trace action-for-action.

    Raises :class:`McError` if the trace diverges (an action is not
    selectable where the trace claims it was) — which would mean the
    program or the runner changed since the trace was recorded.
    """
    max_drops = sum(1 for kind, _ in trace if kind == "d")
    run = ControlledRun(spec, max_drops=max_drops)
    for step, action in enumerate(trace):
        if run.crashed is not None:
            raise McError(
                f"replay crashed at step {step} before trace end: {run.crashed}"
            )
        run.apply(action)
    return run.outcome()
