"""Schedule exploration (model checking) for the DSM protocols.

The simulator runs one interleaving per seed; this package runs *all* of
them (bounded): small straight-line programs are executed under every
message-delivery interleaving a reliable FIFO network permits —
systematically (DFS with dominance pruning) or randomly (seeded uniform
and PCT-style priority schedules) — and every leaf's recorded history is
validated against the consistency model its protocol promises.
Violations are shrunk to minimal programs and serialised as replayable
JSON counterexamples.

Entry points: :func:`explore` in Python, ``python -m repro.mc`` on the
command line (also reachable as ``python -m repro.harness.cli explore``).
"""

from repro.mc.counterexample import Counterexample, ReplayMismatch, replay
from repro.mc.explore import (
    ALL_MODELS,
    EXPECTED_MODEL,
    CheckerZoo,
    ExplorationResult,
    ExploreConfig,
    evaluate_outcome,
    explore,
)
from repro.mc.program import (
    McError,
    PRESETS,
    ProgramSpec,
    make_spec,
    preset,
    random_program,
)
from repro.mc.scheduler import (
    Action,
    ControlledRun,
    RunOutcome,
    replay_trace,
    run_controlled,
)
from repro.mc.shrink import find_violation, shrink

__all__ = [
    "Action",
    "ALL_MODELS",
    "CheckerZoo",
    "ControlledRun",
    "Counterexample",
    "EXPECTED_MODEL",
    "ExplorationResult",
    "ExploreConfig",
    "McError",
    "PRESETS",
    "ProgramSpec",
    "ReplayMismatch",
    "RunOutcome",
    "evaluate_outcome",
    "explore",
    "find_violation",
    "make_spec",
    "preset",
    "random_program",
    "replay",
    "replay_trace",
    "run_controlled",
    "shrink",
]
