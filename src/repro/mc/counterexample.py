"""Replayable counterexamples — the explorer's falsification artifacts.

A :class:`Counterexample` bundles everything needed to re-observe a
violation with zero search: the exact program, the exact action trace,
the recorded history and the checker verdicts.  It serialises to plain
JSON (``save``/``load``) so CI can upload failing schedules as artifacts
and ``python -m repro.mc replay`` can re-execute them anywhere.

Replay is *checked*: the trace is re-run action-for-action and the
verdicts recomputed; if the violation no longer reproduces,
:func:`replay` raises — a drifted counterexample is a test failure, not
a silent pass.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace as dc_replace
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.mc.program import McError, ProgramSpec
from repro.mc.scheduler import Action, ControlledRun, RunOutcome, replay_trace

__all__ = ["Counterexample", "ReplayMismatch", "replay"]

#: Version 2 added the embedded causal trace (``events``); version-1
#: files still load, with an empty trace.
FORMAT_VERSION = 2


class ReplayMismatch(McError):
    """A replayed counterexample no longer exhibits its violation."""


@dataclass(frozen=True)
class Counterexample:
    """One falsifying schedule, self-contained and replayable."""

    spec: ProgramSpec
    trace: Tuple[Action, ...]
    kind: str  # "consistency" | "crash" | "deadlock"
    model: Optional[str]  # the violated model, for kind == "consistency"
    description: str
    history_text: str
    verdicts: Dict[str, bool] = field(default_factory=dict)
    #: The violating run's causal trace: TraceEvent.to_jsonable() dicts
    #: in emission order (empty for v1 files or un-traced finds).  See
    #: :meth:`with_causal_trace`.
    events: Tuple[Dict[str, Any], ...] = ()

    @property
    def n_ops(self) -> int:
        """Program size — the quantity the shrinker minimises."""
        return self.spec.n_ops

    def summary(self) -> str:
        lines = [
            f"counterexample: {self.description}",
            f"protocol: {self.spec.protocol}   kind: {self.kind}"
            + (f"   violated model: {self.model}" if self.model else ""),
            "program:",
        ]
        lines += ["  " + line for line in self.spec.describe().splitlines()]
        lines.append(f"schedule: {len(self.trace)} actions")
        if self.history_text:
            lines.append("recorded history:")
            lines += ["  " + line for line in self.history_text.splitlines()]
        if self.verdicts:
            verdict_text = ", ".join(
                f"{model}={'ok' if ok else 'VIOLATED'}"
                for model, ok in sorted(self.verdicts.items())
            )
            lines.append(f"verdicts: {verdict_text}")
        if self.events:
            lines.append(f"causal trace: {len(self.events)} events embedded")
        return "\n".join(lines)

    def with_causal_trace(self) -> "Counterexample":
        """Replay this schedule with tracing on and embed the trace.

        The replay is exact (the recorded action sequence, step by step)
        with a :class:`~repro.obs.collector.TraceCollector` attached to
        every layer, and the recorded history is re-checked with the
        collector observing the verdict — so the embedded trace ends
        with the violation's ``check.verdict`` event and carries the
        full happens-before structure of the violating run.
        """
        from repro.checker import check_causal
        from repro.obs.collector import TraceCollector

        collector = TraceCollector()
        max_drops = sum(1 for kind, _ in self.trace if kind == "d")
        run = ControlledRun(
            self.spec, max_drops=max_drops, collector=collector
        )
        for step, action in enumerate(self.trace):
            if run.crashed is not None:
                break
            run.apply(action)
        if run.crashed is None:
            check_causal(run.cluster.history(), obs=collector)
        return dc_replace(
            self, events=tuple(collector.to_jsonable())
        )

    def causal_trace_events(self):
        """The embedded trace as TraceEvent objects (empty list if none)."""
        from repro.obs.events import TraceEvent

        return [TraceEvent.from_jsonable(item) for item in self.events]

    # ------------------------------------------------------------------
    # JSON round-trip
    # ------------------------------------------------------------------
    def to_jsonable(self) -> Dict[str, Any]:
        return {
            "format_version": FORMAT_VERSION,
            "spec": self.spec.to_jsonable(),
            "trace": [[kind, list(key)] for kind, key in self.trace],
            "kind": self.kind,
            "model": self.model,
            "description": self.description,
            "history": self.history_text,
            "verdicts": dict(self.verdicts),
            "events": [dict(event) for event in self.events],
        }

    @classmethod
    def from_jsonable(cls, data: Dict[str, Any]) -> "Counterexample":
        version = data.get("format_version")
        if version not in (1, FORMAT_VERSION):
            raise McError(f"unsupported counterexample format {version!r}")
        trace = tuple(
            (kind, _key_from_json(key)) for kind, key in data["trace"]
        )
        return cls(
            spec=ProgramSpec.from_jsonable(data["spec"]),
            trace=trace,
            kind=data["kind"],
            model=data.get("model"),
            description=data["description"],
            history_text=data.get("history", ""),
            verdicts=dict(data.get("verdicts", {})),
            events=tuple(data.get("events", ())),
        )

    def save(self, path) -> None:
        Path(path).write_text(
            json.dumps(self.to_jsonable(), indent=2, sort_keys=True) + "\n"
        )

    @classmethod
    def load(cls, path) -> "Counterexample":
        return cls.from_jsonable(json.loads(Path(path).read_text()))


def _key_from_json(key: List[Any]) -> Tuple:
    # Keys nest one level at most: ("e", tag_tuple_or_None, n).
    return tuple(
        tuple(part) if isinstance(part, list) else part for part in key
    )


def replay(cex: Counterexample, check: bool = True) -> RunOutcome:
    """Re-execute a counterexample's schedule.

    With ``check`` (the default), verify the violation reproduces:
    crash/deadlock kinds must crash/block again, and consistency kinds
    must record a history the violated model still rejects.
    """
    # Deferred import: evaluate_outcome lives in explore, which imports
    # the scheduler this module also uses.
    from repro.mc.explore import evaluate_outcome

    outcome = replay_trace(cex.spec, cex.trace)
    if not check:
        return outcome
    verdicts, violated, _ = evaluate_outcome(
        outcome, cex.spec.protocol, models=tuple(cex.verdicts) or None
    )
    if cex.kind == "crash" and outcome.crashed is None:
        raise ReplayMismatch("expected a crash; replay finished cleanly")
    if cex.kind == "deadlock" and (outcome.completed or outcome.crashed):
        raise ReplayMismatch("expected blocked tasks; replay ran to completion")
    if cex.kind == "consistency":
        if cex.model is not None and verdicts.get(cex.model, True):
            raise ReplayMismatch(
                f"history satisfies {cex.model!r} on replay; "
                f"original verdicts {cex.verdicts!r}"
            )
        if cex.model is None and not violated:
            raise ReplayMismatch("no violation on replay")
    return outcome
