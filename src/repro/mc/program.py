"""Straight-line DSM programs — the inputs of schedule exploration.

The explorer runs *programs*, not histories: a :class:`ProgramSpec` is a
small fixed set of per-process operation lists (reads, writes, discards)
that gets executed under every message-delivery interleaving the
explorer selects.  Each execution records a history, and the checker zoo
decides whether that history matches the protocol's promised model.

Programs are deliberately tiny — schedule spaces grow factorially — and
deliberately *value-transparent*: every write carries a distinct value,
so the recorded reads-from relation identifies writes unambiguously
(the same trick :mod:`repro.checker.generator` uses).

Specs are frozen and JSON-serialisable so a shrunk counterexample can
embed the exact program it falsifies (see :mod:`repro.mc.counterexample`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ReproError

__all__ = [
    "McError",
    "Op",
    "ProgramSpec",
    "make_spec",
    "random_program",
    "preset",
    "PRESETS",
]

#: ("w", location, value) | ("r", location) | ("d", location)
Op = Tuple


class McError(ReproError):
    """The schedule explorer was misused or reached an impossible state."""


_PROTOCOLS = ("causal", "atomic", "li", "central", "broadcast")


@dataclass(frozen=True)
class ProgramSpec:
    """One explorable program: a protocol plus per-process op lists.

    ``owners`` optionally pins location ownership (as a sorted tuple of
    ``(location, node)`` pairs, keeping the spec hashable); unlisted
    locations fall back to the default hashed namespace.
    """

    processes: Tuple[Tuple[Op, ...], ...]
    protocol: str = "causal"
    owners: Optional[Tuple[Tuple[str, int], ...]] = None
    initial_value: Any = 0

    def __post_init__(self) -> None:
        if self.protocol not in _PROTOCOLS:
            raise McError(f"unknown protocol {self.protocol!r}")
        if not self.processes:
            raise McError("a program needs at least one process")
        for ops in self.processes:
            for op in ops:
                if op[0] == "w" and len(op) == 3:
                    continue
                if op[0] in ("r", "d") and len(op) == 2:
                    continue
                raise McError(f"malformed op {op!r}")

    @property
    def n_procs(self) -> int:
        return len(self.processes)

    @property
    def n_ops(self) -> int:
        """Total application operations (the shrinker minimises this)."""
        return sum(len(ops) for ops in self.processes)

    @property
    def locations(self) -> Tuple[str, ...]:
        seen: List[str] = []
        for ops in self.processes:
            for op in ops:
                if op[1] not in seen:
                    seen.append(op[1])
        return tuple(seen)

    def describe(self) -> str:
        """Paper-style notation, one line per process."""
        lines = []
        for proc, ops in enumerate(self.processes):
            tokens = []
            for op in ops:
                if op[0] == "w":
                    tokens.append(f"w({op[1]}){op[2]}")
                elif op[0] == "r":
                    tokens.append(f"r({op[1]})")
                else:
                    tokens.append(f"d({op[1]})")
            lines.append(f"P{proc}: " + " ".join(tokens))
        return "\n".join(lines)

    def without_op(self, proc: int, index: int) -> "ProgramSpec":
        """A copy with one operation removed (the shrinker's step)."""
        processes = list(self.processes)
        ops = list(processes[proc])
        del ops[index]
        processes[proc] = tuple(ops)
        return ProgramSpec(
            processes=tuple(processes),
            protocol=self.protocol,
            owners=self.owners,
            initial_value=self.initial_value,
        )

    def op_positions(self) -> List[Tuple[int, int]]:
        """All ``(proc, index)`` positions, in deterministic order."""
        return [
            (proc, index)
            for proc, ops in enumerate(self.processes)
            for index in range(len(ops))
        ]

    # ------------------------------------------------------------------
    # Serialisation (counterexample files)
    # ------------------------------------------------------------------
    def to_jsonable(self) -> Dict[str, Any]:
        return {
            "protocol": self.protocol,
            "processes": [[list(op) for op in ops] for ops in self.processes],
            "owners": [list(pair) for pair in self.owners] if self.owners else None,
            "initial_value": self.initial_value,
        }

    @classmethod
    def from_jsonable(cls, data: Dict[str, Any]) -> "ProgramSpec":
        owners = data.get("owners")
        return cls(
            processes=tuple(
                tuple(tuple(op) for op in ops) for ops in data["processes"]
            ),
            protocol=data["protocol"],
            owners=tuple((loc, node) for loc, node in owners) if owners else None,
            initial_value=data.get("initial_value", 0),
        )


def make_spec(
    processes: Sequence[Sequence[Op]],
    protocol: str = "causal",
    owners: Optional[Dict[str, int]] = None,
    initial_value: Any = 0,
) -> ProgramSpec:
    """Build a :class:`ProgramSpec` from plain lists/dicts."""
    return ProgramSpec(
        processes=tuple(tuple(tuple(op) for op in ops) for ops in processes),
        protocol=protocol,
        owners=tuple(sorted(owners.items())) if owners else None,
        initial_value=initial_value,
    )


def random_program(
    seed: int,
    protocol: str = "causal",
    n_procs: int = 3,
    n_locations: int = 2,
    ops_per_proc: int = 3,
    read_fraction: float = 0.5,
) -> ProgramSpec:
    """A random small program with globally unique write values.

    The same generator parameters as :func:`repro.checker.random_history`,
    but producing a *program* (reads have no predetermined value — the
    schedule decides what they return).
    """
    rng = random.Random(f"mc-program/{seed}")
    locations = [f"l{i}" for i in range(n_locations)]
    value = 0
    processes: List[List[Op]] = []
    for _ in range(n_procs):
        ops: List[Op] = []
        for _ in range(ops_per_proc):
            location = rng.choice(locations)
            if rng.random() < read_fraction:
                ops.append(("r", location))
            else:
                value += 1
                ops.append(("w", location, value))
        processes.append(ops)
    # Pin ownership round-robin so every program exercises remote paths
    # deterministically (the hashed default could put everything on one
    # node for small location sets).
    owners = {loc: i % n_procs for i, loc in enumerate(locations)}
    return make_spec(processes, protocol=protocol, owners=owners)


def _fig3_spec(protocol: str = "broadcast") -> ProgramSpec:
    """The paper's Figure 3 program (broadcast memory's non-causal run).

    P2 reads y then x after writing x; P3 reads z then x.  Under
    broadcast memory some interleaving records Figure 3's history, which
    violates causality (P3 sees w(z)4 — causally after r(x)5 — yet then
    reads x as 2).
    """
    return make_spec(
        [
            [("w", "x", 5), ("w", "y", 3)],
            [("w", "x", 2), ("r", "y"), ("r", "x"), ("w", "z", 4)],
            [("r", "z"), ("r", "x")],
        ],
        protocol=protocol,
        owners={"x": 0, "y": 1, "z": 2},
    )


def _fig5_spec() -> ProgramSpec:
    """The paper's Figure 5 weak execution (causal but not sequential).

    Each process reads the other's flag (miss — caches the initial 0),
    raises its own, and re-reads the other's from its now-stale cache.
    The causal protocol admits the schedule where both re-reads return
    0 — legal causal memory, impossible on sequential memory.
    """
    return make_spec(
        [
            [("r", "y"), ("w", "x", 1), ("r", "y")],
            [("r", "x"), ("w", "y", 1), ("r", "x")],
        ],
        protocol="causal",
        owners={"x": 0, "y": 1},
    )


def _exhaustive_spec() -> ProgramSpec:
    """The acceptance-criteria config: 3 procs, 2 locations, 4 ops each."""
    return random_program(
        seed=0, protocol="causal", n_procs=3, n_locations=2, ops_per_proc=4
    )


PRESETS: Dict[str, Any] = {
    "fig3": _fig3_spec,
    "fig5": _fig5_spec,
    "exhaustive": _exhaustive_spec,
}


def preset(name: str) -> ProgramSpec:
    """A named example program (``fig3``, ``fig5``, ``exhaustive``)."""
    try:
        factory = PRESETS[name]
    except KeyError:
        raise McError(
            f"unknown preset {name!r}; have {sorted(PRESETS)}"
        ) from None
    return factory()
