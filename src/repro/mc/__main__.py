"""Command-line front end: ``python -m repro.mc``.

Subcommands
-----------
``explore``
    Explore a program's schedule space and report (optionally saving the
    first shrunk counterexample as JSON).  Programs come from a preset
    (``--program fig3|fig5|exhaustive``) or the seeded random generator.
``replay``
    Re-execute a saved counterexample and verify its violation still
    reproduces.

Exit status: 0 when the observed outcome matches expectation (no
violations, or — with ``--expect-violation`` — at least one), 1
otherwise.  CI's explorer smoke job is exactly these invocations.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.mc.counterexample import Counterexample, ReplayMismatch, replay
from repro.mc.explore import ExploreConfig, explore
from repro.mc.program import PRESETS, preset, random_program
from repro.mc.shrink import shrink


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.mc",
        description="Schedule exploration for the DSM protocols",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    ex = sub.add_parser("explore", help="explore a program's schedule space")
    ex.add_argument(
        "--program",
        default="random",
        choices=sorted(PRESETS) + ["random"],
        help="preset program, or 'random' for the seeded generator",
    )
    ex.add_argument("--protocol", default="causal",
                    help="protocol for random programs (presets pin theirs)")
    ex.add_argument("--seed", type=int, default=0)
    ex.add_argument("--procs", type=int, default=3)
    ex.add_argument("--locations", type=int, default=2)
    ex.add_argument("--ops", type=int, default=3,
                    help="operations per process (random programs)")
    ex.add_argument("--read-fraction", type=float, default=0.5)
    ex.add_argument("--strategy", default="dfs",
                    choices=["dfs", "random", "pct"])
    ex.add_argument("--model", default=None,
                    choices=["sequential", "causal", "pram", "slow"],
                    help="model to check leaves against (default: the "
                         "protocol's promised model)")
    ex.add_argument("--max-schedules", type=int, default=2000)
    ex.add_argument("--max-steps", type=int, default=5000)
    ex.add_argument("--drops", type=int, default=0,
                    help="message-drop budget per schedule")
    ex.add_argument("--no-prune", action="store_true",
                    help="disable dominance pruning (DFS only)")
    ex.add_argument("--stop-on-violation", action="store_true")
    ex.add_argument("--full-zoo", action="store_true",
                    help="check all four models at every leaf")
    ex.add_argument("--expect-violation", action="store_true",
                    help="exit 0 iff a violation IS found (regression mode)")
    ex.add_argument("--shrink", action="store_true",
                    help="shrink the first violation before reporting")
    ex.add_argument("--save", metavar="PATH",
                    help="write the first (shrunk) counterexample as JSON")
    ex.add_argument("--json", action="store_true",
                    help="print a machine-readable summary")

    rp = sub.add_parser("replay", help="re-execute a saved counterexample")
    rp.add_argument("path", help="counterexample JSON file")
    rp.add_argument("--json", action="store_true")
    return parser


def _spec_from_args(args: argparse.Namespace):
    if args.program != "random":
        return preset(args.program)
    return random_program(
        seed=args.seed,
        protocol=args.protocol,
        n_procs=args.procs,
        n_locations=args.locations,
        ops_per_proc=args.ops,
        read_fraction=args.read_fraction,
    )


def _cmd_explore(args: argparse.Namespace) -> int:
    spec = _spec_from_args(args)
    config = ExploreConfig(
        strategy=args.strategy,
        max_schedules=args.max_schedules,
        max_steps=args.max_steps,
        max_drops=args.drops,
        prune=not args.no_prune,
        seed=args.seed,
        full_zoo=args.full_zoo,
        expected_model=args.model,
        stop_on_violation=args.stop_on_violation or args.expect_violation,
    )
    result = explore(spec, config)
    cex: Optional[Counterexample] = (
        result.violations[0] if result.violations else None
    )
    if cex is not None and args.shrink:
        cex = shrink(cex, config)
    if args.save and cex is not None:
        # Saved artifacts are self-explaining: replay once with tracing
        # on and embed the violating run's causal trace.
        cex = cex.with_causal_trace()
        cex.save(args.save)
    if args.json:
        payload = result.to_jsonable()
        payload["program"] = spec.describe().splitlines()
        payload["counterexample"] = (
            cex.to_jsonable() if cex is not None else None
        )
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(spec.describe())
        print()
        print(result.summary())
        if cex is not None:
            print()
            print(cex.summary())
            if args.save:
                print(f"saved counterexample to {args.save}")
    found = cex is not None
    return 0 if found == args.expect_violation else 1


def _cmd_replay(args: argparse.Namespace) -> int:
    cex = Counterexample.load(args.path)
    try:
        outcome = replay(cex)
    except ReplayMismatch as mismatch:
        print(f"REPLAY MISMATCH: {mismatch}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps({
            "reproduced": True,
            "kind": cex.kind,
            "model": cex.model,
            "steps": outcome.steps,
            "history": outcome.history.to_text().splitlines(),
        }, indent=2, sort_keys=True))
    else:
        print(cex.summary())
        print()
        print(f"violation reproduced in {outcome.steps} scheduled actions")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "explore":
        return _cmd_explore(args)
    return _cmd_replay(args)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
