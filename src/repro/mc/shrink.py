"""Counterexample shrinking: smallest program that still fails.

A raw counterexample from exploration carries the whole original
program; most of its operations are usually irrelevant to the violation.
The shrinker greedily deletes one operation at a time and re-explores
the reduced program (bounded, find-first) — if the *same kind* of
violation is still reachable, the deletion sticks.  The loop restarts
after every successful deletion and terminates at a 1-minimal program:
removing any single remaining operation makes the violation unreachable
within the re-exploration budget.

Deletion changes the program, so the shrunk counterexample's trace is
the one found on the reduced program, not a projection of the original —
it replays directly via :func:`repro.mc.counterexample.replay`.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.mc.counterexample import Counterexample
from repro.mc.explore import ExploreConfig, explore
from repro.mc.program import ProgramSpec

__all__ = ["find_violation", "shrink"]


def find_violation(
    spec: ProgramSpec, config: ExploreConfig
) -> Optional[Counterexample]:
    """First violation reachable in ``spec``'s schedule space, if any."""
    result = explore(spec, replace(config, stop_on_violation=True))
    return result.violations[0] if result.violations else None


def _matches(candidate: Counterexample, original: Counterexample) -> bool:
    """Same failure class: kind and (for consistency) violated model."""
    return (
        candidate.kind == original.kind
        and candidate.model == original.model
    )


def shrink(
    cex: Counterexample,
    config: ExploreConfig,
    max_attempts: int = 200,
) -> Counterexample:
    """Greedily minimise ``cex``'s program while its violation survives.

    ``config`` bounds each re-exploration (use the configuration that
    found the violation; its budget is per-deletion-attempt).
    ``max_attempts`` caps total re-explorations, so shrinking a large
    program degrades to partial shrinking, never to non-termination.
    """
    best = cex
    attempts = 0
    improved = True
    while improved and attempts < max_attempts:
        improved = False
        # Delete from the back so earlier positions stay valid within
        # one sweep; restart the sweep after any success.
        for proc, index in reversed(best.spec.op_positions()):
            if attempts >= max_attempts:
                break
            candidate_spec = best.spec.without_op(proc, index)
            if candidate_spec.n_ops == 0:
                continue
            attempts += 1
            found = find_violation(candidate_spec, config)
            if found is not None and _matches(found, best):
                best = found
                improved = True
                break
    return best
