"""Real execution: the asyncio/socket driver behind the runtime handle.

The same protocol-engine code that runs under the deterministic
simulator runs here over real byte streams: every node gets a listening
socket (Unix-domain by default, TCP on request), every ordered node
pair a framed channel, and application generators are driven by the
*simulator's own* :class:`~repro.sim.tasks.Task` machinery pointed at
the asyncio event loop instead of the event heap.  Zero engine forks —
the engines cannot tell which driver they are on.

Wire format
-----------
Each frame is a 4-byte big-endian length followed by a pickled payload.
With a :class:`~repro.protocols.wire.WireCodec` installed the payload is
the codec's :class:`~repro.protocols.wire.EncodedMessage` — the same
per-channel delta-stamp chain as the simulator's wire model, which is
sound here because a SOCK_STREAM connection gives exactly the
per-channel FIFO the codec requires.  Pickle is acceptable framing for
this harness because every endpoint lives in one trusted process; a
cross-host deployment would swap the serializer, not the protocol.

What is and is not preserved
----------------------------
* Handler atomicity: the event loop is single-threaded and handlers are
  plain synchronous calls — an engine's ``handle_message`` runs to
  completion exactly as in the simulator.
* Per-channel FIFO: frames are encoded by a single writer task per
  directed channel and decoded in stream order.
* Determinism is **not** preserved: wall-clock scheduling makes message
  interleavings racy.  The differential harness therefore compares
  checker *verdicts*, never raw histories.

Faults
------
``fail_link`` mirrors the simulator's partition (sends dropped before
encoding, channel marked dirty).  ``kill_connection`` is a harder fault
with no simulator twin: it aborts the live transport mid-run, losing
any frames still queued or buffered in the socket — frames that already
consumed a channel sequence number.  The receiver sees a sequence gap,
the sender's next frame carries a full writestamp (``mark_dirty``), and
the codec's resync path recovers; connections re-establish
automatically.  ``drop_next_frames`` deterministically forces the same
encoded-then-lost gap (the live analogue of the simulator's
crash-on-arrival drop) for tests that must not race.
"""

from __future__ import annotations

import asyncio
import os
import pickle
import struct
import tempfile
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import SimulationError
from repro.runtime.base import Runtime
from repro.sim.kernel import NO_ARG
from repro.sim.tasks import Future, Task
from repro.sim.trace import NetworkStats

__all__ = ["AsyncioRuntime", "LinkStats"]


@dataclass(frozen=True)
class LinkStats:
    """One directed channel's live accounting, model beside actual.

    ``model_bytes`` is the wire-model cost (the number the simulator
    would report for the same messages); ``socket_bytes`` is what
    actually hit the socket (pickled frames + headers).  ``queue_depth``
    is the outbound backlog at sampling time.
    """

    src: int
    dst: int
    messages: int
    model_bytes: int
    socket_bytes: int
    queue_depth: int

_HEADER = struct.Struct(">I")

#: Default artificial per-link one-way delay (seconds).  Real loopback
#: latency is microseconds, which collapses every interleaving the
#: scenarios rely on; a small floor keeps message flight observable.
DEFAULT_LINK_DELAY = 0.002


class _LiveScheduler:
    """Adapter letting the simulator's Task machinery drive generators here.

    :class:`~repro.sim.tasks.Task` touches its scheduler only as
    ``self._scheduler.sim.call_soon(...)`` — so a shim whose ``sim`` is
    the live runtime re-targets every resume at the asyncio loop.
    """

    def __init__(self, runtime: "AsyncioRuntime"):
        self.sim = runtime
        self.tasks: List[Task] = []

    def spawn(self, gen, name: str = "") -> Task:
        if not name:
            name = f"task-{len(self.tasks)}"
        task = Task(self, gen, name)
        self.tasks.append(task)
        self.sim.call_soon(task._step, tag=task._tag, arg=None)
        return task


class _Side:
    """One endpoint's live view of a connection: its reader and writer."""

    __slots__ = ("owner", "peer", "reader", "writer", "tasks")

    def __init__(self, owner: int, peer: int, reader, writer):
        self.owner = owner
        self.peer = peer
        self.reader = reader
        self.writer = writer
        self.tasks: List[asyncio.Task] = []


class _OutQueue:
    """Persistent outbound queue for one directed channel.

    Survives connection loss: messages enqueued while the link is down
    are transmitted after reconnection (the codec's full-stamp resync
    covers the frames that were lost in flight)."""

    __slots__ = ("items", "wake")

    def __init__(self):
        self.items: deque = deque()
        self.wake = asyncio.Event()


class AsyncioRuntime(Runtime):
    """Run protocol engines over real sockets on one asyncio loop.

    Parameters
    ----------
    n_nodes:
        Endpoint count; ids ``0..n_nodes-1`` (plus any extra ids that
        register, e.g. the central server at id ``n_nodes``).
    transport:
        ``"uds"`` (Unix-domain sockets in a temp dir) or ``"tcp"``
        (127.0.0.1, ephemeral ports).
    codec:
        Optional :class:`~repro.protocols.wire.WireCodec`; frames then
        carry delta-encoded writestamps per directed channel.
    link_delay:
        Artificial one-way delay: a float applied to every link, or a
        ``{(src, dst): seconds}`` map (missing pairs get the default).
        Static per channel, so FIFO is preserved.
    seed:
        Seeds :meth:`derived_rng` exactly like the simulator, so a
        workload generator draws the identical op sequence under both
        drivers.
    """

    def __init__(
        self,
        n_nodes: int,
        *,
        transport: str = "uds",
        codec=None,
        link_delay=None,
        seed: int = 0,
        settle: float = 0.05,
        reconnect_delay: float = 0.02,
    ):
        if transport not in ("uds", "tcp"):
            raise SimulationError(f"unknown transport {transport!r}")
        self.n_nodes = n_nodes
        self.transport = transport
        self.codec = codec
        self.seed = seed
        self.settle = settle
        self.reconnect_delay = reconnect_delay
        if isinstance(link_delay, dict):
            self._delay_map = dict(link_delay)
            self._delay_default = DEFAULT_LINK_DELAY
        else:
            self._delay_map = {}
            self._delay_default = (
                DEFAULT_LINK_DELAY if link_delay is None else float(link_delay)
            )
        self.stats = NetworkStats()
        #: Actual bytes written to sockets (frames + headers); the
        #: NetworkStats byte column keeps the wire *model* cost so live
        #: and simulated runs stay comparable.
        self.socket_bytes = 0
        #: Same, broken down per directed channel (LinkStats feedstock).
        self.socket_bytes_by_link: Dict[Tuple[int, int], int] = {}
        self.frames_delivered = 0
        #: Attached :class:`~repro.obs.plane.TelemetryPlane`, if any.
        #: The runtime starts its sideband after the protocol servers,
        #: notifies it on timeout/crash (flight-recorder triggers) and
        #: stops it before tear-down — observation rides the same loop
        #: but never the same sockets.
        self.plane = None
        self._handlers: Dict[int, Callable[[int, object], None]] = {}
        self._scheduler = _LiveScheduler(self)
        self.tasks: List[Task] = []
        self._pending_spawns: List[Tuple[Any, str]] = []
        #: Observability hooks (collector / kernel-stream compatible).
        self.obs = None
        self.stream = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._t0: Optional[float] = None
        self.elapsed = 0.0
        self._closing = False
        self._error: Optional[BaseException] = None
        self._done = None  # asyncio.Event, created inside the loop
        self._failed_links: Set[Tuple[int, int]] = set()
        self._force_drop: Dict[Tuple[int, int], int] = {}
        self._out: Dict[Tuple[int, int], _OutQueue] = {}
        self._sides: Dict[Tuple[int, int], _Side] = {}
        self._servers: List = []
        self._supervisors: List[asyncio.Task] = []
        self._io_tasks: Set[asyncio.Task] = set()
        self._accept_tasks: Set[asyncio.Task] = set()
        self._tmpdir: Optional[tempfile.TemporaryDirectory] = None
        self._addrs: Dict[int, Any] = {}
        #: Channels forced full-stamp at least once (resync evidence).
        self.resyncs = 0
        #: Task names still alive after tear-down (always empty unless
        #: shutdown accounting has a bug); populated by :meth:`_shutdown`.
        self.leaked_tasks: List[str] = []

    # ------------------------------------------------------------------
    # Runtime interface: time, callbacks, rng, tasks
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        if self._t0 is None:
            return 0.0
        return time.monotonic() - self._t0

    def call_soon(self, callback, tag=None, arg=NO_ARG):
        if arg is NO_ARG:
            self._loop.call_soon(callback)
        else:
            self._loop.call_soon(callback, arg)

    def schedule(self, delay: float, callback, tag=None, arg=NO_ARG):
        if arg is NO_ARG:
            self._loop.call_later(delay, callback)
        else:
            self._loop.call_later(delay, callback, arg)

    def derived_rng(self, label: str):
        import random

        return random.Random(f"{self.seed}/{label}")

    def sleep(self, duration: float) -> Future:
        future = Future(label=f"sleep:{duration}")
        self._loop.call_later(duration, future.resolve, None)
        return future

    def spawn(self, gen, name: str = "") -> Optional[Task]:
        """Queue a generator; it starts when :meth:`run` brings the loop up."""
        if self._loop is None:
            self._pending_spawns.append((gen, name))
            return None
        task = self._scheduler.spawn(gen, name=name)
        self.tasks.append(task)
        return task

    # ------------------------------------------------------------------
    # Runtime interface: messaging
    # ------------------------------------------------------------------
    def register(self, node_id: int, handler) -> None:
        if node_id in self._handlers:
            raise SimulationError(f"node {node_id} registered twice")
        self._handlers[node_id] = handler

    def send(self, src: int, dst: int, message: object) -> None:
        if src == dst or dst not in self._handlers or src not in self._handlers:
            raise SimulationError(f"invalid live channel {src}->{dst}")
        if (src, dst) in self._failed_links:
            # Mirror of the simulator's partition drop: the receiver
            # never sees the frame, so the delta chain must restart.
            if self.codec is not None:
                self.codec.mark_dirty(src, dst)
            self.stats.dropped += 1
            return
        queue = self._out.get((src, dst))
        if queue is None:
            queue = self._out[(src, dst)] = _OutQueue()
        ready_at = time.monotonic() + self._link_delay(src, dst)
        queue.items.append((ready_at, message))
        queue.wake.set()

    def send_fanout(self, src: int, dsts: Sequence[int], message: object) -> None:
        for dst in dsts:
            self.send(src, dst, message)

    def _link_delay(self, src: int, dst: int) -> float:
        return self._delay_map.get((src, dst), self._delay_default)

    # ------------------------------------------------------------------
    # Back-compat views: DSMNode exposes .sim/.network through these.
    # ------------------------------------------------------------------
    @property
    def sim(self):
        return self

    @property
    def network(self):
        return self

    # ------------------------------------------------------------------
    # Link accounting (the obs-gauge surface of the live transport)
    # ------------------------------------------------------------------
    def link_stats(self) -> List[LinkStats]:
        """Per-directed-channel accounting, model beside socket truth."""
        pairs = self.stats.by_pair
        byte_pairs = self.stats.bytes_by_pair
        channels = sorted(
            set(pairs) | set(self.socket_bytes_by_link) | set(self._out)
        )
        out = []
        for src, dst in channels:
            queue = self._out.get((src, dst))
            out.append(
                LinkStats(
                    src=src,
                    dst=dst,
                    messages=pairs.get((src, dst), 0),
                    model_bytes=byte_pairs.get((src, dst), 0),
                    socket_bytes=self.socket_bytes_by_link.get((src, dst), 0),
                    queue_depth=len(queue.items) if queue is not None else 0,
                )
            )
        return out

    def export_gauges(self, metrics) -> None:
        """Publish live link/transport stats as obs gauges.

        Makes socket bytes, resyncs and queue depths visible to
        ``metrics.snapshot()`` and :func:`repro.analysis.tables.snapshot_table`
        — not only to bench output.  Called automatically at the end of
        every observed run; callable any time for a mid-run sample.
        """
        for link in self.link_stats():
            prefix = f"live.link.{link.src}->{link.dst}"
            metrics.gauge(f"{prefix}.socket_bytes").set(link.socket_bytes)
            metrics.gauge(f"{prefix}.model_bytes").set(link.model_bytes)
            metrics.gauge(f"{prefix}.queue_depth").set(link.queue_depth)
        metrics.gauge("live.socket_bytes").set(self.socket_bytes)
        metrics.gauge("live.model_bytes").set(self.stats.bytes_total)
        metrics.gauge("live.resyncs").set(self.resyncs)
        metrics.gauge("live.frames_delivered").set(self.frames_delivered)
        metrics.gauge("live.dropped").set(self.stats.dropped)

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def fail_link(self, src: int, dst: int) -> None:
        """Drop all (src → dst) sends until :meth:`heal_link`."""
        self._failed_links.add((src, dst))

    def heal_link(self, src: int, dst: int) -> None:
        self._failed_links.discard((src, dst))

    def drop_next_frames(self, src: int, dst: int, count: int = 1) -> None:
        """Lose the next ``count`` frames *after* encoding.

        The frames consume channel sequence numbers, so the receiver
        sees a gap — the deterministic analogue of frames lost in
        socket buffers when a connection dies."""
        self._force_drop[(src, dst)] = self._force_drop.get((src, dst), 0) + count

    def kill_connection(self, a: int, b: int) -> None:
        """Abort the live connection between ``a`` and ``b`` mid-run.

        Everything in flight is lost: queued outbound messages (never
        encoded — no gap) and frames buffered in the sockets (encoded —
        a real sequence gap).  Both directions resync from full stamps
        and the client side reconnects automatically."""
        for channel in ((a, b), (b, a)):
            queue = self._out.get(channel)
            if queue is not None:
                self.stats.dropped += len(queue.items)
                queue.items.clear()
            if self.codec is not None:
                self.codec.mark_dirty(*channel)
        for channel in ((a, b), (b, a)):
            side = self._sides.get(channel)
            if side is not None:
                for task in side.tasks:
                    task.cancel()
                side.writer.transport.abort()

    # ------------------------------------------------------------------
    # Top-level run
    # ------------------------------------------------------------------
    def run(self, timeout: float = 30.0) -> None:
        """Bring the mesh up, run every spawned program, tear down.

        Raises the first application/task failure, or
        :class:`~repro.errors.SimulationError` on timeout (the live
        analogue of the simulator's deadlock detection)."""
        asyncio.run(self._main(timeout))
        for task in self.tasks:
            if task.resolved and task.failed:
                exc = task.exception()
                if self.plane is not None:
                    self.plane.on_crash(
                        f"task {task.name}: {type(exc).__name__}: {exc}"
                    )
                raise exc
        if self._error is not None:
            raise self._error

    async def _main(self, timeout: float) -> None:
        self._loop = asyncio.get_running_loop()
        self._done = asyncio.Event()
        self._t0 = time.monotonic()
        try:
            await self._start_servers()
            if self.plane is not None:
                # Telemetry sideband up before any protocol task runs,
                # so the very first op.commit is already streamable.
                await self.plane.start_live()
            self._start_supervisors()
            for gen, name in self._pending_spawns:
                task = self._scheduler.spawn(gen, name=name)
                self.tasks.append(task)
            self._pending_spawns.clear()
            try:
                await asyncio.wait_for(self._wait_tasks(), timeout)
            except asyncio.TimeoutError:
                blocked = [t.name for t in self.tasks if not t.resolved]
                if self.plane is not None:
                    # Flight-recorder trigger: snapshot the rings *now*,
                    # while they still hold the ops that led here.
                    self.plane.on_timeout(blocked)
                raise SimulationError(
                    f"live run timed out after {timeout}s; "
                    f"blocked tasks: {blocked}"
                ) from None
            if self._error is None and self.settle > 0:
                # Grace period: let fire-and-forget deliveries (broadcast
                # writes, trailing acks) drain before tear-down.
                await asyncio.sleep(self.settle)
        finally:
            self.elapsed = time.monotonic() - self._t0
            registry = None
            if self.plane is not None:
                registry = self.plane.out.metrics
            elif self.obs is not None:
                registry = self.obs.metrics
            if registry is not None:
                self.export_gauges(registry)
            if self.plane is not None:
                await self.plane.stop_live()
            await self._shutdown()

    async def _wait_tasks(self) -> None:
        if not self.tasks:
            return
        remaining = [len(self.tasks)]
        done = asyncio.Event()

        def on_done(_):
            remaining[0] -= 1
            if remaining[0] == 0:
                done.set()

        for task in self.tasks:
            task.add_done_callback(on_done)
        waiter = asyncio.ensure_future(done.wait())
        aborted = asyncio.ensure_future(self._done.wait())
        try:
            await asyncio.wait(
                {waiter, aborted}, return_when=asyncio.FIRST_COMPLETED
            )
        finally:
            waiter.cancel()
            aborted.cancel()

    def _abort(self, exc: BaseException) -> None:
        if self._error is None:
            self._error = exc
            if self.plane is not None:
                # First failure only: later aborts are cascade, and the
                # flight recorder wants the rings at the root cause.
                self.plane.on_crash(f"{type(exc).__name__}: {exc}")
        if self._done is not None:
            self._done.set()

    # ------------------------------------------------------------------
    # Connection establishment
    # ------------------------------------------------------------------
    async def _start_servers(self) -> None:
        node_ids = sorted(self._handlers)
        if self.transport == "uds":
            self._tmpdir = tempfile.TemporaryDirectory(prefix="repro-live-")
            for node in node_ids:
                path = os.path.join(self._tmpdir.name, f"node{node}.sock")
                server = await asyncio.start_unix_server(
                    self._make_accept_handler(node), path=path
                )
                self._servers.append(server)
                self._addrs[node] = path
        else:
            for node in node_ids:
                server = await asyncio.start_server(
                    self._make_accept_handler(node), host="127.0.0.1", port=0
                )
                self._servers.append(server)
                self._addrs[node] = server.sockets[0].getsockname()[:2]

    def _make_accept_handler(self, node: int):
        async def handle(reader, writer):
            # The Server owns this task; track it ourselves because (on
            # 3.11) Server.wait_closed does not wait for open handlers,
            # and _shutdown must retire it before the leak audit runs.
            self._accept_tasks.add(asyncio.current_task())
            try:
                header = await reader.readexactly(_HEADER.size)
                (length,) = _HEADER.unpack(header)
                tag, peer = pickle.loads(await reader.readexactly(length))
                if tag != "hello":
                    raise SimulationError(f"bad hello from peer: {tag!r}")
            except (asyncio.IncompleteReadError, ConnectionError, OSError):
                writer.close()
                return
            side = _Side(node, peer, reader, writer)
            await self._serve_side(side)
            if not self._closing and self.codec is not None:
                # Lost connection: this endpoint's outbound chain must
                # restart from a full stamp once the peer reconnects.
                self.codec.mark_dirty(node, peer)
                self.resyncs += 1

        return handle

    def _start_supervisors(self) -> None:
        node_ids = sorted(self._handlers)
        for i, a in enumerate(node_ids):
            for b in node_ids[i + 1 :]:
                task = asyncio.ensure_future(self._client_supervisor(a, b))
                self._supervisors.append(task)

    async def _client_supervisor(self, a: int, b: int) -> None:
        """Node ``a``'s side of the (a, b) connection; reconnects on loss."""
        while not self._closing:
            try:
                if self.transport == "uds":
                    reader, writer = await asyncio.open_unix_connection(
                        self._addrs[b]
                    )
                else:
                    host, port = self._addrs[b]
                    reader, writer = await asyncio.open_connection(host, port)
            except (ConnectionError, OSError):
                await asyncio.sleep(self.reconnect_delay)
                continue
            hello = pickle.dumps(("hello", a))
            writer.write(_HEADER.pack(len(hello)) + hello)
            try:
                await writer.drain()
            except (ConnectionError, OSError):
                writer.close()
                continue
            side = _Side(a, b, reader, writer)
            await self._serve_side(side)
            if self._closing:
                return
            if self.codec is not None:
                self.codec.mark_dirty(a, b)
                self.resyncs += 1
            await asyncio.sleep(self.reconnect_delay)

    async def _serve_side(self, side: _Side) -> None:
        """Pump one endpoint's reader+writer until the connection dies."""
        self._sides[(side.owner, side.peer)] = side
        side.tasks = [
            asyncio.ensure_future(self._read_loop(side)),
            asyncio.ensure_future(self._write_loop(side)),
        ]
        self._io_tasks.update(side.tasks)
        try:
            await asyncio.wait(side.tasks, return_when=asyncio.FIRST_COMPLETED)
        finally:
            for task in side.tasks:
                task.cancel()
            await asyncio.gather(*side.tasks, return_exceptions=True)
            self._io_tasks.difference_update(side.tasks)
            if self._sides.get((side.owner, side.peer)) is side:
                del self._sides[(side.owner, side.peer)]
            side.writer.close()

    # ------------------------------------------------------------------
    # Per-connection I/O loops
    # ------------------------------------------------------------------
    async def _read_loop(self, side: _Side) -> None:
        reader = side.reader
        src, dst = side.peer, side.owner
        try:
            while True:
                header = await reader.readexactly(_HEADER.size)
                (length,) = _HEADER.unpack(header)
                data = await reader.readexactly(length)
                self._deliver(src, dst, data)
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            return  # connection lost; the supervisor handles resync

    def _deliver(self, src: int, dst: int, data: bytes) -> None:
        try:
            payload = pickle.loads(data)
            if self.codec is not None:
                payload = self.codec.decode(src, dst, payload)
            self.frames_delivered += 1
            if self.stream is not None:
                self.stream((src, dst))
            self._handlers[dst](src, payload)
        except BaseException as exc:  # noqa: BLE001 - fail the whole run
            self._abort(exc)

    async def _write_loop(self, side: _Side) -> None:
        src, dst = side.owner, side.peer
        writer = side.writer
        queue = self._out.get((src, dst))
        if queue is None:
            queue = self._out[(src, dst)] = _OutQueue()
        codec = self.codec
        try:
            while True:
                while not queue.items:
                    queue.wake.clear()
                    await queue.wake.wait()
                ready_at, message = queue.items[0]
                delay = ready_at - time.monotonic()
                if delay > 0:
                    await asyncio.sleep(delay)
                    continue  # re-check: the queue may have been cleared
                queue.items.popleft()
                try:
                    kind = message.kind
                except AttributeError:
                    kind = type(message).__name__
                if codec is not None:
                    frame = codec.encode(src, dst, message)
                    payload: object = frame
                    nbytes = frame.byte_size
                    stamp_entries = frame.stamp_entries
                    stamp_entries_full = frame.stamp_entries_full
                else:
                    from repro.protocols.wire import measure_message

                    payload = message
                    cost = measure_message(message)
                    nbytes = cost.byte_size
                    stamp_entries = cost.stamp_entries
                    stamp_entries_full = cost.stamp_entries
                force = self._force_drop.get((src, dst), 0)
                if force > 0:
                    # Encoded (sequence number consumed) then lost: the
                    # receiver will see a gap on the next frame.
                    self._force_drop[(src, dst)] = force - 1
                    if codec is not None:
                        codec.mark_dirty(src, dst)
                    self.stats.dropped += 1
                    continue
                data = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
                self.stats.count_sent(
                    kind, src, dst, self._link_delay(src, dst),
                    byte_size=nbytes,
                    stamp_entries=stamp_entries,
                    stamp_entries_full=stamp_entries_full,
                )
                nbytes_wire = _HEADER.size + len(data)
                self.socket_bytes += nbytes_wire
                self.socket_bytes_by_link[(src, dst)] = (
                    self.socket_bytes_by_link.get((src, dst), 0) + nbytes_wire
                )
                writer.write(_HEADER.pack(len(data)) + data)
                await writer.drain()
        except asyncio.CancelledError:
            raise
        except (ConnectionError, OSError):
            return  # connection lost mid-write; frames in flight are gone
        except BaseException as exc:  # noqa: BLE001 - fail the whole run
            self._abort(exc)

    # ------------------------------------------------------------------
    # Tear-down
    # ------------------------------------------------------------------
    async def _shutdown(self) -> None:
        self._closing = True
        for task in self._supervisors:
            task.cancel()
        for task in list(self._io_tasks):
            task.cancel()
        pending = self._supervisors + list(self._io_tasks)
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        self._io_tasks.clear()
        for side in list(self._sides.values()):
            side.writer.close()
        self._sides.clear()
        for server in self._servers:
            server.close()
        for server in self._servers:
            await server.wait_closed()
        self._servers.clear()
        for task in list(self._accept_tasks):
            task.cancel()
        if self._accept_tasks:
            await asyncio.gather(*self._accept_tasks, return_exceptions=True)
        self._accept_tasks.clear()
        if self._tmpdir is not None:
            self._tmpdir.cleanup()
            self._tmpdir = None
        # Anything still alive at this point (besides the _main task
        # itself) escaped the supervisor/IO-task accounting — the leak
        # test asserts this list is empty after every run.
        current = asyncio.current_task()
        self.leaked_tasks = [
            task.get_name()
            for task in asyncio.all_tasks()
            if task is not current and not task.done()
        ]
