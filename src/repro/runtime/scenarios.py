"""Driver-agnostic scenario programs: one program, two runtimes.

The Figure 3/4/5 programs here are the same generators the simulator
harness runs (`repro.harness.scenarios` / `repro.obs.runs`), written
once against the cluster surface both drivers share — ``spawn``,
``api.read/write/watch``, ``sleep`` through the runtime handle.  A
``tick`` parameter scales the think-time sleeps: seconds of virtual
time in the simulator, hundredths of a wall-clock second live.

Figure 3's anomaly depends on message timing (P2's concurrent ``x=2``
must reach P3 *after* P1's ``x=5``); the simulator gets this from its
latency model, the live driver from a static per-link delay map with a
slow (P2 → P3) link — milliseconds of margin against scheduler jitter,
so the differential suite is not a coin flip.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from repro.memory import Namespace
from repro.protocols.base import DSMCluster
from repro.runtime.cluster import LiveCluster, LiveOutcome
from repro.sim.tasks import sleep

__all__ = [
    "Scenario",
    "SCENARIOS",
    "run_scenario_sim",
    "run_scenario_live",
    "run_workload_live",
]


def _spawn_figure3(cluster, tick: float) -> None:
    """Figure 3 on broadcast memory (NOT causal; the checker rejects it)."""

    def p1(api):
        yield api.write("x", 5)
        yield api.write("y", 3)

    def p2(api):
        yield api.write("x", 2)
        yield api.watch("y", lambda v: v == 3)
        yield api.read("y")
        yield api.read("x")
        yield api.write("z", 4)

    def p3(api):
        yield api.watch("z", lambda v: v == 4)
        yield api.read("z")
        yield api.read("x")

    cluster.spawn(0, p1, name="P1")
    cluster.spawn(1, p2, name="P2")
    cluster.spawn(2, p3, name="P3")


def _spawn_figure4(cluster, tick: float) -> None:
    """The owner-protocol invalidation scenario (causal; both sweep paths)."""

    def p0(api):
        yield sleep(cluster.sim, 2.0 * tick)
        yield api.write("x", 1)
        yield api.write("y", 1)

    def p1(api):
        yield api.read("x")  # cache x before P0 rewrites it

    def p2(api):
        yield api.read("x")  # cache x before P0 rewrites it
        yield sleep(cluster.sim, 6.0 * tick)
        yield api.read("y")  # reply stamp sweeps the stale cached x
        yield api.read("x")

    cluster.spawn(0, p0, name="P0")
    cluster.spawn(1, p1, name="P1")
    cluster.spawn(2, p2, name="P2")


def _spawn_figure5(cluster, tick: float) -> None:
    """Figure 5: causal but not sequentially consistent (stale re-reads)."""

    def p1(api):
        yield api.read("y")
        yield api.write("x", 1)
        yield api.read("y")

    def p2(api):
        yield api.read("x")
        yield api.write("y", 1)
        yield api.read("x")

    cluster.spawn(0, p1, name="P1")
    cluster.spawn(1, p2, name="P2")


@dataclass(frozen=True)
class Scenario:
    """One paper scenario runnable under either driver."""

    name: str
    protocol: str
    n_nodes: int
    spawn: Callable[[Any, float], None]
    #: Offline checker verdict both drivers must produce.
    expect_causal: bool
    namespace: Optional[Callable[[], Namespace]] = None
    #: Live per-link delay map enforcing the orderings the scenario
    #: needs (missing pairs get the runtime default).
    live_link_delay: Optional[Dict] = None


SCENARIOS: Dict[str, Scenario] = {
    "fig3": Scenario(
        name="fig3",
        protocol="broadcast",
        n_nodes=3,
        spawn=_spawn_figure3,
        expect_causal=False,
        # P2's concurrent x=2 must reach P3 well after P1's x=5.
        live_link_delay={(1, 2): 0.04},
    ),
    "fig4": Scenario(
        name="fig4",
        protocol="causal",
        n_nodes=3,
        spawn=_spawn_figure4,
        expect_causal=True,
        namespace=lambda: Namespace.explicit(3, {"x": 0, "y": 1, "z": 2}),
    ),
    "fig5": Scenario(
        name="fig5",
        protocol="causal",
        n_nodes=2,
        spawn=_spawn_figure5,
        expect_causal=True,
        namespace=lambda: Namespace.explicit(2, {"x": 0, "y": 1}),
    ),
}

#: Sleep scale per driver: simulated seconds vs wall-clock hundredths.
SIM_TICK = 1.0
LIVE_TICK = 0.01


def run_scenario_sim(name: str, seed: int = 0):
    """Run one scenario under the simulator; returns its History."""
    spec = SCENARIOS[name]
    cluster = DSMCluster(
        n_nodes=spec.n_nodes,
        protocol=spec.protocol,
        seed=seed,
        namespace=spec.namespace() if spec.namespace else None,
    )
    spec.spawn(cluster, SIM_TICK)
    cluster.run()
    return cluster.history()


#: Explicit location owners per scenario (the flight recorder's
#: ``make_spec`` pins; mirrors each scenario's namespace).
SCENARIO_OWNERS: Dict[str, Dict[str, int]] = {
    "fig3": {"x": 0, "y": 1, "z": 2},
    "fig4": {"x": 0, "y": 1, "z": 2},
    "fig5": {"x": 0, "y": 1},
}


def run_scenario_live(
    name: str,
    seed: int = 0,
    transport: str = "uds",
    delta_stamps: bool = False,
    monitor: bool = False,
    timeout: float = 30.0,
    plane=None,
    flight: bool = False,
    fault=None,
) -> LiveOutcome:
    """Run one scenario on the asyncio driver; optionally monitored.

    With ``monitor=True`` a :class:`~repro.monitor.CausalStreamMonitor`
    rides the run via the live collector, and the outcome carries its
    result plus the per-read online verdicts keyed ``(proc, index)``.

    ``plane`` attaches a :class:`~repro.obs.plane.TelemetryPlane`
    (pass ``True`` for a default one) — per-node shards over the
    telemetry sideband; the monitor then observes the *aggregated*
    stream.  ``flight`` arms the plane's flight recorder.  ``fault``
    is an optional generator function called with the runtime and
    plane, spawned alongside the scenario (telemetry-fault injection).
    """
    spec = SCENARIOS[name]
    cluster = LiveCluster(
        n_nodes=spec.n_nodes,
        protocol=spec.protocol,
        seed=seed,
        namespace=spec.namespace() if spec.namespace else None,
        delta_stamps=delta_stamps,
        transport=transport,
        link_delay=spec.live_link_delay,
        timeout=timeout,
    )
    if plane is True:
        from repro.obs.plane import TelemetryPlane

        plane = TelemetryPlane()
    if plane is not None:
        cluster.attach_plane(plane)
        if flight:
            plane.enable_flight(owners=SCENARIO_OWNERS.get(name), seed=seed)
    subscription = None
    online: Dict = {}
    if monitor:
        from repro.monitor import attach_monitor

        subscription = attach_monitor(
            cluster,
            on_verdict=lambda v: online.__setitem__((v.op.proc, v.op.index), v.ok),
        )
        if plane is not None:
            plane.watch_monitor(subscription.monitor)
    if fault is not None:
        cluster.runtime.spawn(fault(cluster.runtime, plane), name="fault")
    spec.spawn(cluster, LIVE_TICK)
    cluster.run()
    return LiveOutcome(
        cluster,
        cluster.history(),
        monitor_result=subscription.result() if subscription else None,
        online_verdicts=online if monitor else None,
    )


def _zipf_cdf(n_locations: int, exponent: float):
    weights = [1.0 / (rank + 1) ** exponent for rank in range(n_locations)]
    total = 0.0
    cdf = []
    for weight in weights:
        total += weight
        cdf.append(total)
    return cdf


def run_workload_live(
    config,
    zipf: float = 0.0,
    transport: str = "uds",
    link_delay=None,
    monitor: bool = False,
    timeout: float = 60.0,
    sample_latencies: bool = False,
    plane=None,
    flight: bool = False,
) -> LiveOutcome:
    """The random workload of :mod:`repro.apps.workload`, run live.

    With ``zipf == 0`` the per-process RNG draws the *identical*
    operation sequence as :func:`~repro.apps.workload.run_random_execution`
    for the same config (same derived-RNG labels, same draw order) — the
    differential suite leans on that.  ``zipf > 0`` skews location
    choice Zipf-style (rank-``k`` location drawn with weight
    ``1/k**zipf``), the classic contended-hot-key mix.
    """
    cluster = LiveCluster(
        n_nodes=config.n_nodes,
        protocol=config.protocol,
        seed=config.seed,
        no_cache=config.no_cache,
        batching=config.batching,
        delta_stamps=config.delta_stamps,
        wire_fast_lanes=config.wire_fast_lanes,
        arena_backend=config.arena_backend,
        transport=transport,
        link_delay=link_delay,
        timeout=timeout,
    )
    if plane is True:
        from repro.obs.plane import TelemetryPlane

        plane = TelemetryPlane()
    if plane is not None:
        cluster.attach_plane(plane)
        if flight:
            plane.enable_flight(seed=config.seed)
    subscription = None
    online: Dict = {}
    if monitor:
        from repro.monitor import attach_monitor

        subscription = attach_monitor(
            cluster,
            on_verdict=lambda v: online.__setitem__((v.op.proc, v.op.index), v.ok),
        )
        if plane is not None:
            plane.watch_monitor(subscription.monitor)
    runtime = cluster.runtime
    cdf = _zipf_cdf(config.n_locations, zipf) if zipf > 0 else None
    latencies: list = []
    if plane is not None and plane.dashboard is not None:
        # Live latency feed for the `repro top` panel.
        plane.dashboard.latencies = latencies

    def process(api, proc: int):
        rng = runtime.derived_rng(f"workload-{proc}")
        counter = 0
        for _ in range(config.ops_per_proc):
            if cdf is not None:
                draw = rng.random() * cdf[-1]
                location = config.location(bisect_left(cdf, draw))
            else:
                location = config.location(rng.randrange(config.n_locations))
            roll = rng.random()
            started = runtime.now
            if roll < config.discard_fraction:
                api.discard(location)
                # A discard alone is not an operation; follow with a read
                # so the slot's fresh value actually enters the history.
                yield api.read(location)
            elif roll < config.discard_fraction + config.read_fraction:
                yield api.read(location)
            else:
                counter += 1
                yield api.write(location, f"n{proc}v{counter}")
            if sample_latencies:
                latencies.append(runtime.now - started)
            if config.think_time > 0:
                yield sleep(cluster.sim, rng.uniform(0, config.think_time))

    for proc in range(config.n_nodes):
        cluster.spawn(proc, process, proc, name=f"wl-{proc}")
    cluster.run()
    return LiveOutcome(
        cluster,
        cluster.history(),
        monitor_result=subscription.result() if subscription else None,
        online_verdicts=online if monitor else None,
        latencies=latencies,
    )
