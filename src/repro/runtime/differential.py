"""Sim ↔ live differential equivalence: the headline harness.

Run the same program under both drivers, feed both histories through
the offline :func:`~repro.checker.check_causal` and attach the
streaming :class:`~repro.monitor.CausalStreamMonitor` to the live run,
then compare *verdicts*:

* the two drivers' offline verdicts must agree (``sim_ok == live_ok``)
  — live nondeterminism may change the history, never its legality
  class for these scenarios;
* on the live history, the online monitor must agree with the offline
  checker overall **and read for read** (the Bouajjani-style testing
  discipline the monitor suite established, now applied to a stream
  produced by real sockets).

Any disagreement lands in ``mismatches`` — the test suite asserts it
empty, and the CLI prints it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.checker import check_causal
from repro.runtime.cluster import LiveOutcome
from repro.runtime.scenarios import SCENARIOS, run_scenario_live, run_scenario_sim

__all__ = ["DifferentialResult", "compare_live_verdicts", "run_differential"]


@dataclass
class DifferentialResult:
    """Verdict comparison for one scenario run under both drivers."""

    scenario: str
    sim_ok: bool
    live_ok: bool
    monitor_ok: Optional[bool]
    sim_history: object
    live_history: object
    live_outcome: LiveOutcome
    #: Human-readable disagreements; empty iff the drivers are equivalent.
    mismatches: List[str] = field(default_factory=list)

    @property
    def equivalent(self) -> bool:
        return not self.mismatches

    def explain(self) -> str:
        if self.equivalent:
            verdict = "causal" if self.sim_ok else "NOT causal"
            return (
                f"{self.scenario}: drivers agree ({verdict}); "
                f"monitor agrees on every live read"
            )
        return f"{self.scenario}: DISAGREEMENT\n" + "\n".join(
            f"  - {item}" for item in self.mismatches
        )


def compare_live_verdicts(
    live_history,
    monitor_result,
    online_verdicts: Dict,
    mismatches: List[str],
) -> None:
    """Check online-monitor agreement with the offline checker.

    Appends one line per disagreement: overall verdict drift, a missing
    online verdict, or per-read drift.  A cyclic live history (possible
    only for non-causal protocols) must park online reads forever.
    """
    offline = check_causal(live_history)
    if offline.cycle is not None:
        if monitor_result.ok or not monitor_result.unresolved:
            mismatches.append(
                "offline checker found a causality cycle but the monitor "
                "did not park the cycle's reads"
            )
        return
    if monitor_result.ok != offline.ok:
        mismatches.append(
            f"live overall verdict drift: offline ok={offline.ok}, "
            f"online ok={monitor_result.ok}"
        )
    for verdict in offline.verdicts:
        op_id = verdict.read.op_id
        if op_id not in online_verdicts:
            mismatches.append(f"monitor produced no verdict for read {op_id}")
        elif online_verdicts[op_id] != verdict.ok:
            mismatches.append(
                f"per-read drift at {op_id}: offline {verdict.ok}, "
                f"online {online_verdicts[op_id]}"
            )


def run_differential(
    name: str,
    seed: int = 0,
    transport: str = "uds",
    delta_stamps: bool = False,
    timeout: float = 30.0,
) -> DifferentialResult:
    """Run one named scenario under both drivers and compare verdicts."""
    spec = SCENARIOS[name]
    sim_history = run_scenario_sim(name, seed=seed)
    sim_result = check_causal(sim_history)
    outcome = run_scenario_live(
        name,
        seed=seed,
        transport=transport,
        delta_stamps=delta_stamps,
        monitor=True,
        timeout=timeout,
    )
    live_result = check_causal(outcome.history)

    mismatches: List[str] = []
    if sim_result.ok != spec.expect_causal:
        mismatches.append(
            f"simulator verdict ok={sim_result.ok} does not match the "
            f"scenario's expected ok={spec.expect_causal}"
        )
    if sim_result.ok != live_result.ok:
        mismatches.append(
            f"driver verdict drift: sim ok={sim_result.ok}, "
            f"live ok={live_result.ok}"
        )
    compare_live_verdicts(
        outcome.history, outcome.monitor_result, outcome.online_verdicts,
        mismatches,
    )
    return DifferentialResult(
        scenario=name,
        sim_ok=sim_result.ok,
        live_ok=live_result.ok,
        monitor_ok=outcome.monitor_result.ok,
        sim_history=sim_history,
        live_history=outcome.history,
        live_outcome=outcome,
        mismatches=mismatches,
    )
