"""Pluggable execution runtimes for the DSM protocol engines.

The protocol engines (Figure 4 causal owner, causal broadcast, atomic
owner, Li/Hudak, central server) are pure state machines: they interact
with the world only through a tiny driver-facing surface — ``now``,
``call_soon``, ``send``/``send_fanout``, ``register``.  This package
names that surface (:class:`Runtime`) and provides two drivers:

:class:`SimRuntime`
    The deterministic discrete-event simulator the repo has always run
    on, refactored behind the runtime handle.  Byte-identical behaviour;
    the handle is bound-method forwarding, so the hot path is unchanged.
:class:`AsyncioRuntime`
    Real execution — the same unmodified engine code driven by an
    asyncio event loop, exchanging length-prefixed frames over Unix
    domain sockets or TCP, with the wire codec's per-channel delta-stamp
    state and full-stamp resync on reconnect.

:class:`LiveCluster` mirrors :class:`~repro.protocols.base.DSMCluster`
over the live driver; :mod:`repro.runtime.scenarios` holds the
driver-agnostic Figure 3/4/5 programs and the random workload; and
:mod:`repro.runtime.differential` runs each scenario under both drivers
and asserts checker/monitor verdict equality — the histories may differ
(live nondeterminism), the legality verdicts must not.
"""

from repro.runtime.base import Runtime, SimRuntime
from repro.runtime.live import AsyncioRuntime, LinkStats
from repro.runtime.cluster import LiveCluster, LiveOutcome
from repro.runtime.scenarios import (
    SCENARIOS,
    run_scenario_live,
    run_scenario_sim,
    run_workload_live,
)
from repro.runtime.differential import DifferentialResult, run_differential

__all__ = [
    "Runtime",
    "SimRuntime",
    "AsyncioRuntime",
    "LinkStats",
    "LiveCluster",
    "LiveOutcome",
    "SCENARIOS",
    "run_scenario_live",
    "run_scenario_sim",
    "run_workload_live",
    "DifferentialResult",
    "run_differential",
]
