"""The driver-facing runtime interface and its simulator driver.

Everything a protocol engine may ask of its execution environment is
collected here.  The surface was extracted *descriptively*: it is the
grep-verified closure of what the engines actually call on the
simulator and network (``now``, ``call_soon``, ``send``,
``send_fanout``, plus ``register`` from the :class:`DSMNode` base
constructor), with ``schedule``/``sleep``/``spawn``/``derived_rng``
added for application programs and harnesses.  Engines hold a single
``self.runtime`` handle; which driver sits behind it decides whether an
execution is a deterministic simulation or a real multi-socket run.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Optional, Sequence

from repro.sim.kernel import NO_ARG, Simulator
from repro.sim.network import Network

__all__ = ["Runtime", "SimRuntime"]


class Runtime:
    """Abstract driver interface for protocol engines and programs.

    Concrete drivers (:class:`SimRuntime`, :class:`AsyncioRuntime`)
    provide these as plain attributes or methods; the class exists to
    document the contract, not to dispatch.  The contract the engines
    rely on:

    * **Handler atomicity** — a registered message handler runs to
      completion before any other handler or callback runs.
    * **Per-channel FIFO** — messages between one ordered pair of nodes
      are delivered in send order (the wire codec's delta-stamp chain
      depends on this).
    * **Monotone time** — ``now`` never decreases.
    """

    def call_soon(self, callback: Callable, tag=None, arg=NO_ARG):
        """Run ``callback`` (optionally with ``arg``) as soon as possible."""
        raise NotImplementedError

    def schedule(self, delay: float, callback: Callable, tag=None, arg=NO_ARG):
        """Run ``callback`` after ``delay`` seconds of runtime time."""
        raise NotImplementedError

    def send(self, src: int, dst: int, message: object) -> None:
        """Send one protocol message over the (src, dst) channel."""
        raise NotImplementedError

    def send_fanout(self, src: int, dsts: Sequence[int], message: object) -> None:
        """Send one message to several destinations."""
        raise NotImplementedError

    def register(self, node_id: int, handler: Callable[[int, object], None]) -> None:
        """Bind ``handler(src, message)`` as ``node_id``'s delivery target."""
        raise NotImplementedError

    def derived_rng(self, label: str) -> random.Random:
        """A deterministically seeded RNG stream named ``label``."""
        raise NotImplementedError

    def sleep(self, duration: float):
        """A future that resolves after ``duration`` runtime seconds."""
        raise NotImplementedError

    def spawn(self, gen, name: str = ""):
        """Drive an application generator as a runtime task."""
        raise NotImplementedError

    @property
    def now(self) -> float:
        """Current runtime time in seconds (virtual or wall-clock)."""
        raise NotImplementedError


class SimRuntime(Runtime):
    """The deterministic simulator behind the :class:`Runtime` handle.

    Pure forwarding: the hot-path members (``call_soon``, ``send``,
    ``send_fanout``) are the simulator's and network's own bound methods
    assigned as instance attributes, so an engine call through the
    handle costs the same attribute lookup it always did — the PR 8
    allocation-free message path is untouched.  Only ``now`` needs a
    property (the kernel mutates it in place).
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        scheduler=None,
    ):
        self.sim = sim
        self.network = network
        self.scheduler = scheduler
        # Hot-path fast lanes: engine calls hit the kernel directly.
        self.call_soon = sim.call_soon
        self.schedule = sim.schedule
        self.send = network.send
        self.send_fanout = network.send_fanout
        self.register = network.register
        self.derived_rng = sim.derived_rng

    @property
    def now(self) -> float:
        return self.sim.now

    @property
    def stats(self):
        """Network-level message statistics."""
        return self.network.stats

    def sleep(self, duration: float):
        from repro.sim.tasks import sleep as sim_sleep

        return sim_sleep(self.sim, duration)

    def spawn(self, gen, name: str = ""):
        if self.scheduler is None:
            from repro.sim.tasks import TaskScheduler

            self.scheduler = TaskScheduler(self.sim)
        return self.scheduler.spawn(gen, name=name)
