"""A DSM cluster on the live asyncio driver.

:class:`LiveCluster` mirrors :class:`~repro.protocols.base.DSMCluster`'s
construction surface but wires the nodes onto an
:class:`~repro.runtime.live.AsyncioRuntime` instead of a simulator.  The
protocol dispatch is *inherited*, not copied: ``_build_nodes`` (and
``spawn``/``attach_obs``/``history``/``stats``/``watch``) run unchanged
against the live runtime, because after the runtime refactor they only
touch the driver through the handle.  Zero protocol-engine forks.
"""

from __future__ import annotations

import time
from typing import Any, Optional

from repro.checker.history import HistoryRecorder
from repro.errors import ProtocolError
from repro.memory import Namespace
from repro.protocols.base import DSMCluster, DSMNode
from repro.runtime.live import AsyncioRuntime

__all__ = ["LiveCluster", "LiveOutcome"]


class LiveCluster(DSMCluster):
    """``n`` processors running one DSM protocol over real sockets.

    Accepts the :class:`DSMCluster` protocol/policy knobs plus the live
    driver's: ``transport`` (``"uds"``/``"tcp"``), ``link_delay`` (float
    or ``{(src, dst): seconds}``), ``settle`` (post-completion drain),
    and ``timeout`` (wall-clock deadline for :meth:`run` — the live
    analogue of deadlock detection).

    ``seed`` feeds :meth:`~repro.runtime.base.Runtime.derived_rng`
    exactly as the simulator's does, so a seeded workload issues the
    identical operation sequence under both drivers; only the message
    interleavings differ.
    """

    def __init__(
        self,
        n_nodes: int,
        protocol: str = "causal",
        seed: int = 0,
        namespace: Optional[Namespace] = None,
        policy: Optional[object] = None,
        initial_value: Any = 0,
        record_history: bool = True,
        no_cache: bool = False,
        unsafe_write_behind: bool = False,
        batching: bool = False,
        delta_stamps: bool = False,
        wire_fast_lanes: bool = True,
        arena_backend: Optional[str] = None,
        transport: str = "uds",
        link_delay=None,
        settle: float = 0.05,
        timeout: float = 30.0,
    ):
        if n_nodes <= 0:
            raise ProtocolError(f"need at least one node, got {n_nodes}")
        self.n_nodes = n_nodes
        self.protocol = protocol
        self.batching = batching
        self.delta_stamps = delta_stamps
        self.arena_backend = arena_backend
        self.timeout = timeout
        codec = None
        if delta_stamps:
            from repro.protocols.wire import WireCodec

            codec = WireCodec(fast_lanes=wire_fast_lanes)
        self.runtime = AsyncioRuntime(
            n_nodes,
            transport=transport,
            codec=codec,
            link_delay=link_delay,
            seed=seed,
            settle=settle,
        )
        # DSMCluster's methods reach the driver through these two names;
        # on the live runtime both resolve to the runtime itself.
        self.scheduler = self.runtime
        self.namespace = namespace or Namespace.hashed(n_nodes)
        self.recorder = HistoryRecorder() if record_history else None
        self._obs = None
        self.server: Optional[DSMNode] = None
        self.nodes = self._build_nodes(
            protocol, policy, initial_value, no_cache, unsafe_write_behind,
            batching, arena_backend,
        )

    # The inherited machinery addresses the kernel as ``self.sim`` and
    # the message layer as ``self.network``; both are the runtime here.
    @property
    def sim(self):
        return self.runtime

    @property
    def network(self):
        return self.runtime

    def attach_obs(self, collector) -> None:
        """Attach a collector; live traces also carry wall timestamps."""
        super().attach_obs(collector)
        collector.bind_wall(time.monotonic)

    def attach_plane(self, plane=None):
        """Attach a sharded telemetry plane instead of one collector.

        Every node gets its own ring-buffered shard streaming over the
        runtime's telemetry sideband; ``cluster.obs`` becomes the
        aggregator's merged collector (so ``attach_monitor`` and the
        exporters ride the aggregated stream).  Mutually exclusive with
        :meth:`attach_obs`.  Returns the plane.
        """
        from repro.obs.plane import TelemetryPlane

        if plane is None:
            plane = TelemetryPlane()
        plane.attach(self)
        return plane

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        check_deadlock: bool = True,
        timeout: Optional[float] = None,
    ) -> None:
        """Run the mesh to completion (bounded by the wall-clock timeout).

        ``until``/``max_events`` are simulator concepts and are not
        accepted here; ``check_deadlock`` is subsumed by the timeout.
        """
        if until is not None or max_events is not None:
            raise ProtocolError(
                "until/max_events are simulator-only; use timeout= live"
            )
        self.runtime.run(timeout=timeout if timeout is not None else self.timeout)


class LiveOutcome:
    """A finished live execution, ready for checking and benchmarking."""

    def __init__(self, cluster: LiveCluster, history, monitor_result=None,
                 online_verdicts=None, latencies=None):
        self.cluster = cluster
        self.history = history
        self.monitor_result = monitor_result
        self.online_verdicts = online_verdicts
        #: Per-operation completion latencies (seconds), when sampled.
        self.latencies = latencies or []
        runtime = cluster.runtime
        self.elapsed = runtime.elapsed
        self.total_messages = runtime.stats.total
        self.dropped_messages = runtime.stats.dropped
        self.model_bytes = runtime.stats.bytes_total
        self.socket_bytes = runtime.socket_bytes
        self.resyncs = runtime.resyncs
        #: Per-directed-channel accounting at teardown.
        self.link_stats = runtime.link_stats()
        #: Telemetry-plane summary (merge/loss/skew/sideband bytes),
        #: None for unobserved runs.
        self.telemetry = (
            runtime.plane.stats() if runtime.plane is not None else None
        )
