"""PRAM (pipelined RAM) consistency checking.

PRAM consistency [Lipton & Sandberg 1988] requires, for each process
``P_i`` separately, a serialization of ``P_i``'s operations together with
*all* writes of the system that respects program order of every process
and makes each of ``P_i``'s reads return the most recent preceding write.

Causal memory is strictly stronger than PRAM (causality adds the
reads-from transitivity), so PRAM is included for two purposes:

* situating the models in the consistency zoo example;
* property tests asserting the implication "causal => PRAM" on both
  hand-written and protocol-generated histories.

The per-process check reuses the sequential-consistency search on a
projected history: process ``i``'s full operation sequence plus every
other process's writes (as one-op-per-process sequences in program
order).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.checker.history import History, Operation
from repro.checker.sequential_checker import check_sequential

__all__ = ["PramCheckResult", "check_pram"]


@dataclass(frozen=True)
class PramCheckResult:
    """Per-process verdicts for the PRAM condition."""

    ok: bool
    failing_processes: tuple

    def explain(self) -> str:
        if self.ok:
            return "execution is PRAM consistent"
        procs = ", ".join(f"P{p + 1}" for p in self.failing_processes)
        return f"execution is NOT PRAM consistent (no view for: {procs})"


def check_pram(history: History, max_states: int = 2_000_000) -> PramCheckResult:
    """Check the PRAM condition for every process.

    Examples
    --------
    >>> h = History.parse('''
    ...     P1: w(x)1 w(x)2
    ...     P2: r(x)2 r(x)1
    ... ''')
    >>> check_pram(h).ok   # P2 regresses P1's program order
    False
    >>> causal_not_pram_free = History.parse('''
    ...     P1: w(x)1
    ...     P2: r(x)1 w(x)2
    ...     P3: r(x)2 r(x)1
    ... ''')
    >>> check_pram(causal_not_pram_free).ok  # PRAM ignores reads-from
    True
    """
    failing: List[int] = []
    for proc in range(history.n_procs):
        projected = _project_for(history, proc)
        result = check_sequential(
            projected, max_states=max_states, want_witness=False
        )
        if not result.ok:
            failing.append(proc)
    return PramCheckResult(ok=not failing, failing_processes=tuple(failing))


def _project_for(history: History, proc: int) -> History:
    """Process ``proc``'s ops plus every other process's writes."""
    sequences: List[List[Operation]] = []
    for other, ops in enumerate(history.processes):
        if other == proc:
            kept = list(ops)
        else:
            kept = [op for op in ops if op.is_write]
        sequences.append(kept)
    reindexed = [
        [
            Operation(
                proc=p,
                index=i,
                kind=op.kind,
                location=op.location,
                value=op.value,
                write_id=op.write_id,
                read_from=op.read_from,
            )
            for i, op in enumerate(ops)
        ]
        for p, ops in enumerate(sequences)
    ]
    return History(reindexed, initial_value=history.initial_value)
