"""The causal-memory correctness condition — Definition 2 of the paper.

"An execution on causal memory is correct if the value returned by each
read operation in the execution is live for that read."

:func:`check_causal` evaluates that condition over a :class:`History`,
returning a :class:`CausalCheckResult` with per-read live sets and a list
of violations (reads whose write source is not live for them).  A cyclic
causality relation — a read reading from a causally later write — is
reported as a violation rather than an exception, so random-workload
property tests can treat "not causal" uniformly.

Two memoisation layers serve callers that check *many* histories (the
:mod:`repro.mc` schedule explorer, the benchmark runner):

* passing a :class:`~repro.checker.live_values.LiveSetCache` to
  :func:`check_causal` memoises per-read live sets under their
  causal-past fingerprints, shared across histories;
* :class:`CachedCausalChecker` additionally memoises whole verdicts
  keyed on the history's operation content, so a dominated schedule —
  a different interleaving that recorded the *same* history — is checked
  in O(1) without even rebuilding the causality relation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.checker.causality import CausalityCycleError, CausalOrder
from repro.checker.history import History, Operation
from repro.checker.live_values import LiveSetCache, live_set

__all__ = [
    "CausalCheckResult",
    "ReadVerdict",
    "check_causal",
    "CachedCausalChecker",
    "history_fingerprint",
]


@dataclass(frozen=True)
class ReadVerdict:
    """The live-set analysis of one read operation."""

    read: Operation
    live_writes: Tuple[Operation, ...]
    ok: bool

    @property
    def live_values(self) -> Set[Any]:
        """``alpha(o)`` as a value set, as the paper's examples report it."""
        return {write.value for write in self.live_writes}

    def explain(self) -> str:
        """One-line human-readable verdict."""
        values = sorted(map(repr, self.live_values))
        status = "ok" if self.ok else "VIOLATION"
        return (
            f"{self.read}: alpha = {{{', '.join(values)}}} "
            f"returned {self.read.value!r} -> {status}"
        )


@dataclass
class CausalCheckResult:
    """Outcome of checking Definition 2 over a whole history."""

    ok: bool
    verdicts: List[ReadVerdict] = field(default_factory=list)
    cycle: Optional[CausalityCycleError] = None

    @property
    def violations(self) -> List[ReadVerdict]:
        """Reads that returned a value outside their live set."""
        return [verdict for verdict in self.verdicts if not verdict.ok]

    def verdict_for(self, proc: int, index: int) -> ReadVerdict:
        """The verdict of the ``index``-th op of process ``proc``."""
        for verdict in self.verdicts:
            if verdict.read.op_id == (proc, index):
                return verdict
        raise KeyError(f"no read verdict for op ({proc}, {index})")

    def alpha(self, proc: int, index: int) -> Set[Any]:
        """Shorthand for the live-value set of one read."""
        return self.verdict_for(proc, index).live_values

    def explain(self) -> str:
        """Multi-line report: every read's live set and verdict."""
        if self.cycle is not None:
            return f"not causal: {self.cycle}"
        lines = [verdict.explain() for verdict in self.verdicts]
        summary = "execution is causal" if self.ok else (
            f"execution is NOT causal ({len(self.violations)} violating reads)"
        )
        return "\n".join(lines + [summary])


def check_causal(
    history: History,
    cache: Optional[LiveSetCache] = None,
    obs=None,
) -> CausalCheckResult:
    """Check Definition 2: every read returns a live value.

    ``cache`` (optional) memoises per-read live sets under causal-past
    fingerprints; share one cache across calls when checking many
    related histories.  Verdicts are identical with or without it.
    ``obs`` (optional TraceCollector) receives a ``check.verdict`` event.

    Examples
    --------
    >>> h = History.parse('''
    ...     P1: w(x)5 w(y)3
    ...     P2: w(x)2 r(y)3 r(x)5 w(z)4
    ...     P3: r(z)4 r(x)2
    ... ''')
    >>> check_causal(h).ok   # the paper's Figure 3: not causal
    False
    """
    try:
        order = CausalOrder(history)
    except CausalityCycleError as cycle:
        if obs is not None:
            obs.emit("check", "verdict", ok=False, cycle=str(cycle))
        return CausalCheckResult(ok=False, cycle=cycle)

    verdicts: List[ReadVerdict] = []
    for read in history.reads():
        live = live_set(history, order, read, cache)
        live_ids = {write.write_id for write in live}
        ok = read.read_from in live_ids
        verdicts.append(
            ReadVerdict(read=read, live_writes=tuple(live), ok=ok)
        )
    result = CausalCheckResult(
        ok=all(v.ok for v in verdicts), verdicts=verdicts
    )
    if obs is not None:
        obs.emit(
            "check", "verdict", ok=result.ok,
            reads=len(verdicts), violations=len(result.violations),
            cached=False,
        )
    return result


def history_fingerprint(history: History) -> Tuple:
    """A hashable identity of a history's operation content.

    Two histories with equal fingerprints contain (dataclass-)equal
    operations — same processes, kinds, locations, values and
    reads-from/write identities — so every checker verdict coincides.
    Schedules the explorer calls *dominated* (different interleavings
    recording the same execution) collide here by construction.
    """
    return tuple(
        tuple(
            (op.kind, op.location, op.value, op.write_id, op.read_from)
            for op in ops
        )
        for ops in history.processes
    )


class CachedCausalChecker:
    """Definition 2 checking with whole-history memoisation.

    Wraps :func:`check_causal` with two cache layers: an exact-history
    table (dominated schedules are O(1) — not even the causality
    relation is rebuilt) and a shared :class:`LiveSetCache` for the
    misses (reads whose causal past already appeared in *another*
    history are served from their fingerprints).
    """

    def __init__(self) -> None:
        self.live_cache = LiveSetCache()
        self.history_hits = 0
        self.history_misses = 0
        self._results: Dict[Tuple, CausalCheckResult] = {}
        #: Attached TraceCollector, or None (all emits are guarded).
        self.obs = None

    def check(self, history: History) -> CausalCheckResult:
        """Check ``history``, reusing any memoised verdict."""
        key = history_fingerprint(history)
        result = self._results.get(key)
        if result is not None:
            self.history_hits += 1
            if self.obs is not None:
                self.obs.emit("check", "verdict", ok=result.ok, cached=True)
            return result
        self.history_misses += 1
        result = check_causal(history, cache=self.live_cache, obs=self.obs)
        self._results[key] = result
        return result

    @property
    def history_hit_rate(self) -> float:
        """Fraction of checks answered from the history table."""
        total = self.history_hits + self.history_misses
        return self.history_hits / total if total else 0.0
