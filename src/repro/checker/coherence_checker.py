"""Per-location coherence checking.

*Coherence* (cache consistency) requires that, for each location taken in
isolation, all operations on that location can be totally ordered
respecting program order and read legality — i.e. the history projected
onto each single location is sequentially consistent.

Causal memory is incomparable with coherence: Figure 2's execution is
causal yet not coherent (readers disagree on the order of the concurrent
writes of ``x``), while the classic "independent reads of independent
writes" histories are coherent but not causal.  The consistency-zoo
example and property tests use this checker to draw those boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.checker.history import History, Operation
from repro.checker.sequential_checker import check_sequential

__all__ = ["CoherenceCheckResult", "check_coherence"]


@dataclass(frozen=True)
class CoherenceCheckResult:
    """Per-location verdicts for the coherence condition."""

    ok: bool
    failing_locations: Tuple[str, ...]

    def explain(self) -> str:
        if self.ok:
            return "execution is coherent (per-location SC)"
        locs = ", ".join(repr(loc) for loc in self.failing_locations)
        return f"execution is NOT coherent (locations: {locs})"


def check_coherence(
    history: History, max_states: int = 2_000_000
) -> CoherenceCheckResult:
    """Check that every per-location projection is sequentially consistent.

    Examples
    --------
    >>> h = History.parse('''
    ...     P1: w(x)1 r(x)2 r(x)1
    ...     P2: w(x)2
    ... ''')
    >>> check_coherence(h).ok   # P1 sees x=2 then the older x=1
    False
    """
    failing: List[str] = []
    for location in history.locations:
        projected = _project_location(history, location)
        result = check_sequential(
            projected, max_states=max_states, want_witness=False
        )
        if not result.ok:
            failing.append(location)
    return CoherenceCheckResult(ok=not failing, failing_locations=tuple(failing))


def _project_location(history: History, location: str) -> History:
    """The history restricted to operations on one location."""
    sequences: List[List[Operation]] = []
    for proc, ops in enumerate(history.processes):
        kept = [op for op in ops if op.location == location]
        sequences.append(
            [
                Operation(
                    proc=proc,
                    index=i,
                    kind=op.kind,
                    location=op.location,
                    value=op.value,
                    write_id=op.write_id,
                    read_from=op.read_from,
                )
                for i, op in enumerate(kept)
            ]
        )
    return History(
        sequences,
        initial_value=history.initial_value,
        locations=[location],
    )
