"""The causality relation over a history.

Section 2 of the paper: causality (``->``) is the union of two rules —
program order (successive operations of one process) and reads-from (a
read is caused by the write it reads) — and ``*->`` is the transitive
closure.  Operations unrelated by ``*->`` are *concurrent*.  Initial
writes causally precede every operation of every process.

This module materializes ``*->`` once per history as bitset descendant
maps (one Python int per operation), giving O(1) ``precedes`` queries;
the live-set computation of Definition 1 then needs one pass over writes
per read.

A special accessor, :meth:`CausalOrder.precedes_excluding_rf`, computes
reachability to a read *excluding the reads-from edge established by that
read itself* — exactly the caveat in the paper's Definition 1.  Because a
read's only other incoming edges are its program-order predecessor (and
the initial writes, for a process's first operation), this reduces to
reachability to those predecessors.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.checker.history import History, INIT_PROC, Operation
from repro.errors import CheckError

__all__ = ["CausalOrder", "CausalityCycleError", "LocationOps"]

OpId = Tuple[int, int]


@dataclass(frozen=True)
class LocationOps:
    """Bitset view of all operations touching one location.

    ``indices`` are positions in :attr:`CausalOrder.ops`; ``mask`` is
    their union as a bitset; ``source_masks`` groups the same positions
    by the write whose value each op carries (the write itself plus every
    read of it) — the paper's "serves notice" exclusion, precomputed so
    the live-set check is pure bit arithmetic.
    """

    indices: Tuple[int, ...]
    mask: int
    source_masks: Dict[Any, int]


class CausalityCycleError(CheckError):
    """The history's causality relation is cyclic.

    A cyclic ``*->`` means some read reads from a write that causally
    follows it (e.g. a process reading its *own later* write) — such an
    execution is trivially incorrect on causal memory, since "writes that
    causally follow o are never live for o".
    """

    def __init__(self, cycle_members: List[Operation]):
        self.cycle_members = cycle_members
        ops = ", ".join(str(op) for op in cycle_members[:8])
        suffix = "..." if len(cycle_members) > 8 else ""
        super().__init__(f"causality relation is cyclic: {ops}{suffix}")


class CausalOrder:
    """Precomputed ``->`` edges and ``*->`` reachability for a history.

    Raises
    ------
    CausalityCycleError
        If program order plus reads-from contains a cycle.
    """

    def __init__(self, history: History):
        self.history = history
        self.ops: List[Operation] = history.operations(include_init=True)
        self._pos: Dict[OpId, int] = {
            op.op_id: i for i, op in enumerate(self.ops)
        }
        self._succ: List[List[int]] = [[] for _ in self.ops]
        self._pred_non_rf: List[List[int]] = [[] for _ in self.ops]
        self._rf_pred: List[Optional[int]] = [None] * len(self.ops)
        self._build_edges()
        self._desc: List[int] = self._transitive_closure()
        # Non-rf predecessor bitset per op (Definition 1's "excluding the
        # reads-from ordering established by o itself" reduces to
        # reachability into these — see precedes_excluding_rf).
        self._pred_non_rf_mask: List[int] = [
            _mask_of(preds) for preds in self._pred_non_rf
        ]
        self._loc_ops: Optional[Dict[str, LocationOps]] = None

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------
    def _build_edges(self) -> None:
        history = self.history
        # Rule 1: program order.
        for ops in history.processes:
            for earlier, later in zip(ops, ops[1:]):
                self._add_edge(earlier.op_id, later.op_id, is_rf=False)
        # Initial writes precede the first operation of every process.
        for init_write in history.init_writes:
            for ops in history.processes:
                if ops:
                    self._add_edge(init_write.op_id, ops[0].op_id, is_rf=False)
        # Rule 2: reads-from.
        for op in self.ops:
            if op.is_read:
                source = history.write_by_id(op.read_from)
                self._add_edge(source.op_id, op.op_id, is_rf=True)

    def _add_edge(self, src: OpId, dst: OpId, is_rf: bool) -> None:
        i, j = self._pos[src], self._pos[dst]
        if i == j:
            raise CausalityCycleError([self.ops[i]])
        self._succ[i].append(j)
        if is_rf:
            # If the reads-from source is also the program-order
            # predecessor, the program-order edge remains in the
            # "excluding rf" view — record rf separately.
            self._rf_pred[j] = i
        else:
            self._pred_non_rf[j].append(i)

    # ------------------------------------------------------------------
    # Transitive closure (bitsets over a topological order)
    # ------------------------------------------------------------------
    def _transitive_closure(self) -> List[int]:
        n = len(self.ops)
        indegree = [0] * n
        for succs in self._succ:
            for j in succs:
                indegree[j] += 1
        queue = deque(i for i in range(n) if indegree[i] == 0)
        topo: List[int] = []
        while queue:
            i = queue.popleft()
            topo.append(i)
            for j in self._succ[i]:
                indegree[j] -= 1
                if indegree[j] == 0:
                    queue.append(j)
        if len(topo) != n:
            members = [self.ops[i] for i in range(n) if indegree[i] > 0]
            raise CausalityCycleError(members)
        desc = [0] * n
        for i in reversed(topo):
            bits = 0
            for j in self._succ[i]:
                bits |= desc[j] | (1 << j)
            desc[i] = bits
        return desc

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def index_of(self, op: Operation) -> int:
        """Internal index of an operation (stable across queries)."""
        try:
            return self._pos[op.op_id]
        except KeyError:
            raise CheckError(f"{op} is not part of this history") from None

    def precedes(self, a: Operation, b: Operation) -> bool:
        """``a *-> b`` (strict: an operation does not precede itself)."""
        i, j = self.index_of(a), self.index_of(b)
        return bool(self._desc[i] >> j & 1)

    def concurrent(self, a: Operation, b: Operation) -> bool:
        """Neither ``a *-> b`` nor ``b *-> a`` (and ``a != b``)."""
        if a.op_id == b.op_id:
            return False
        return not self.precedes(a, b) and not self.precedes(b, a)

    def precedes_excluding_rf(self, a: Operation, read: Operation) -> bool:
        """``a *-> read`` in the graph without ``read``'s reads-from edge.

        Definition 1 considers "all the causal relationships in the
        execution except the reads-from ordering established by o itself".
        A read's other in-edges are its program-order predecessor and (for
        first operations) the initial writes, so reachability reduces to
        reaching one of those.
        """
        if not read.is_read:
            raise CheckError(f"{read} is not a read operation")
        j = self.index_of(read)
        i = self.index_of(a)
        return bool((self._desc[i] | (1 << i)) & self._pred_non_rf_mask[j])

    # ------------------------------------------------------------------
    # Bitset accessors (the live-set computation runs on these)
    # ------------------------------------------------------------------
    def descendant_mask(self, index: int) -> int:
        """Bitset of strict ``*->`` descendants of the op at ``index``."""
        return self._desc[index]

    def non_rf_pred_mask(self, index: int) -> int:
        """Bitset of direct non-reads-from predecessors of ``index``."""
        return self._pred_non_rf_mask[index]

    def location_ops(self, location: str) -> LocationOps:
        """The precomputed :class:`LocationOps` for ``location``.

        Built lazily for *all* locations in one pass over the history on
        first use, then served from cache.
        """
        table = self._loc_ops
        if table is None:
            grouped: Dict[str, Tuple[List[int], Dict[Any, int]]] = {}
            for i, op in enumerate(self.ops):
                entry = grouped.get(op.location)
                if entry is None:
                    entry = ([], {})
                    grouped[op.location] = entry
                entry[0].append(i)
                source = op.write_id if op.is_write else op.read_from
                entry[1][source] = entry[1].get(source, 0) | (1 << i)
            table = {
                location: LocationOps(
                    indices=tuple(indices),
                    mask=_mask_of(indices),
                    source_masks=sources,
                )
                for location, (indices, sources) in grouped.items()
            }
            self._loc_ops = table
        entry = table.get(location)
        if entry is None:
            entry = LocationOps(indices=(), mask=0, source_masks={})
            table[location] = entry
        return entry

    def followers(self, op: Operation) -> List[Operation]:
        """All operations ``b`` with ``op *-> b`` (diagnostics)."""
        i = self.index_of(op)
        bits = self._desc[i]
        return [self.ops[j] for j in _bit_indices(bits)]

    def sort_key(self) -> Dict[OpId, int]:
        """A topological position per op (for deterministic reports)."""
        return dict(self._pos)


def _mask_of(indices: Iterable[int]) -> int:
    bits = 0
    for index in indices:
        bits |= 1 << index
    return bits


def _bit_indices(bits: int) -> Iterable[int]:
    index = 0
    while bits:
        if bits & 1:
            yield index
        bits >>= 1
        index += 1
