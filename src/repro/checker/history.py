"""Operation histories.

A history is what the paper calls an *execution*: one sequence of read and
write operations per process.  This module provides:

* :class:`Operation` — ``r(x)v`` / ``w(x)v`` with process and position;
* :class:`History` — validated histories with explicit or inferred
  reads-from, plus the distinguished initial writes the paper assumes
  ("all locations are initialized by writes of a distinguished value that
  precede all operations in any process sequence");
* a parser for the paper's own notation, so the figures can be written
  down verbatim::

      History.parse('''
          P1: w(x)1 w(y)2 r(y)2 r(x)1
          P2: w(z)1 r(y)2 r(x)1
      ''')

* :class:`HistoryRecorder` — the sink protocol engines write into, with
  *explicit* reads-from identities (the simulator knows exactly which
  write produced every value it returns, so recorded histories need no
  unique-values assumption).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.errors import HistoryError

__all__ = [
    "Operation",
    "History",
    "HistoryRecorder",
    "INIT_PROC",
    "initial_write_id",
]

#: Process id of the virtual process performing the initial writes.
INIT_PROC = -1

READ = "r"
WRITE = "w"

_OP_RE = re.compile(r"^(?P<kind>[rw])\((?P<loc>[^()]+)\)(?P<value>\S+)$")
_PROC_RE = re.compile(r"^\s*(?P<name>\w+)\s*:\s*(?P<ops>.*)$")


def initial_write_id(location: str) -> Tuple:
    """The write identity of the distinguished initial write to a location."""
    return ("init", location)


@dataclass(frozen=True)
class Operation:
    """One read or write operation in a history.

    ``write_id`` (writes) is a globally unique, hashable identity; reads
    carry ``read_from``, the identity of the write they read.  The pair
    ``(proc, index)`` identifies the operation itself.
    """

    proc: int
    index: int
    kind: str
    location: str
    value: Any
    write_id: Optional[Tuple] = None
    read_from: Optional[Tuple] = None

    @property
    def op_id(self) -> Tuple[int, int]:
        """Unique (process, position) identity of this operation."""
        return (self.proc, self.index)

    @property
    def is_read(self) -> bool:
        return self.kind == READ

    @property
    def is_write(self) -> bool:
        return self.kind == WRITE

    def __str__(self) -> str:
        proc = "Pinit" if self.proc == INIT_PROC else f"P{self.proc + 1}"
        return f"{proc}.{self.kind}({self.location}){self.value}"


class History:
    """A validated multi-process execution.

    Use :meth:`parse` for paper-notation text, :meth:`from_operations`
    for programmatic construction, or :class:`HistoryRecorder` to capture
    protocol runs.
    """

    def __init__(
        self,
        processes: List[List[Operation]],
        initial_value: Any = 0,
        locations: Optional[Iterable[str]] = None,
    ):
        self.processes = processes
        self.initial_value = initial_value
        locs = set(locations or ())
        for op in self._app_operations():
            locs.add(op.location)
        self.locations = sorted(locs)
        self.init_writes = [
            Operation(
                proc=INIT_PROC,
                index=k,
                kind=WRITE,
                location=loc,
                value=initial_value,
                write_id=initial_write_id(loc),
            )
            for k, loc in enumerate(self.locations)
        ]
        self._writes_by_id: Dict[Tuple, Operation] = {}
        self._index_writes()
        self._resolve_reads()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, text: str, initial_value: Any = 0) -> "History":
        """Parse the paper's figure notation.

        Each non-empty line is ``Pk: op op op`` with ops like ``w(x)1``
        and ``r(y)2``.  Values are parsed as ints when possible, else
        kept as strings (so ``T``, ``F`` and the dictionary's free marker
        work).  Writes must be unique per (location, value) — the paper's
        standing assumption — so reads-from can be inferred.
        """
        processes: List[List[Operation]] = []
        for line in text.strip().splitlines():
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            match = _PROC_RE.match(line)
            if not match:
                raise HistoryError(f"cannot parse process line: {line!r}")
            proc = len(processes)
            ops: List[Operation] = []
            for token in match.group("ops").split():
                op_match = _OP_RE.match(token)
                if not op_match:
                    raise HistoryError(f"cannot parse operation: {token!r}")
                value: Any = op_match.group("value")
                try:
                    value = int(value)
                except ValueError:
                    pass
                ops.append(
                    Operation(
                        proc=proc,
                        index=len(ops),
                        kind=op_match.group("kind"),
                        location=op_match.group("loc"),
                        value=value,
                    )
                )
            processes.append(ops)
        return cls(processes, initial_value=initial_value)

    @classmethod
    def from_operations(
        cls,
        ops_per_process: List[List[Tuple]],
        initial_value: Any = 0,
    ) -> "History":
        """Build from ``[(kind, location, value), ...]`` per process."""
        processes = [
            [
                Operation(proc=p, index=i, kind=kind, location=loc, value=value)
                for i, (kind, loc, value) in enumerate(ops)
            ]
            for p, ops in enumerate(ops_per_process)
        ]
        return cls(processes, initial_value=initial_value)

    # ------------------------------------------------------------------
    # Validation / linking
    # ------------------------------------------------------------------
    def _index_writes(self) -> None:
        for op in self.init_writes:
            self._writes_by_id[op.write_id] = op
        needs_id: List[Tuple[int, int]] = []
        for op in self._app_operations():
            if not op.is_write:
                continue
            if op.write_id is None:
                needs_id.append(op.op_id)
            elif op.write_id in self._writes_by_id:
                raise HistoryError(f"duplicate write identity {op.write_id!r}")
            else:
                self._writes_by_id[op.write_id] = op
        # Synthesize identities for parsed writes: unique (loc, value).
        by_value: Dict[Tuple[str, Any], Operation] = {}
        for proc, index in needs_id:
            op = self.processes[proc][index]
            key = (op.location, op.value)
            if key in by_value:
                raise HistoryError(
                    f"writes are not unique: two writes of {op.value!r} to "
                    f"{op.location!r} ({by_value[key]} and {op})"
                )
            identified = Operation(
                proc=op.proc,
                index=op.index,
                kind=op.kind,
                location=op.location,
                value=op.value,
                write_id=("val", op.location, op.value),
            )
            self.processes[proc][index] = identified
            by_value[key] = identified
            self._writes_by_id[identified.write_id] = identified

    def _resolve_reads(self) -> None:
        """Fill in ``read_from`` for reads that lack it (parsed histories)."""
        value_index: Dict[Tuple[str, Any], Tuple] = {
            (w.location, w.value): wid
            for wid, w in self._writes_by_id.items()
            if w.proc != INIT_PROC
        }
        for proc, ops in enumerate(self.processes):
            for i, op in enumerate(ops):
                if not op.is_read or op.read_from is not None:
                    continue
                key = (op.location, op.value)
                if key in value_index:
                    source = value_index[key]
                elif op.value == self.initial_value:
                    source = initial_write_id(op.location)
                else:
                    raise HistoryError(
                        f"{op} reads a value never written to {op.location!r}"
                    )
                ops[i] = Operation(
                    proc=op.proc,
                    index=op.index,
                    kind=op.kind,
                    location=op.location,
                    value=op.value,
                    read_from=source,
                )
        for op in self._app_operations():
            if op.is_read and op.read_from not in self._writes_by_id:
                raise HistoryError(
                    f"{op} reads from unknown write {op.read_from!r}"
                )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def n_procs(self) -> int:
        """Number of application processes."""
        return len(self.processes)

    def _app_operations(self) -> Iterator[Operation]:
        for ops in self.processes:
            yield from ops

    def operations(self, include_init: bool = True) -> List[Operation]:
        """All operations; initial writes first if included."""
        out: List[Operation] = []
        if include_init:
            out.extend(self.init_writes)
        out.extend(self._app_operations())
        return out

    def reads(self) -> List[Operation]:
        """All application read operations."""
        return [op for op in self._app_operations() if op.is_read]

    def writes(self, location: Optional[str] = None, include_init: bool = True) -> List[Operation]:
        """All writes (optionally restricted to one location)."""
        ops = self.operations(include_init=include_init)
        return [
            op
            for op in ops
            if op.is_write and (location is None or op.location == location)
        ]

    def write_by_id(self, write_id: Tuple) -> Operation:
        """Look up a write operation by its identity."""
        try:
            return self._writes_by_id[write_id]
        except KeyError:
            raise HistoryError(f"no write with identity {write_id!r}") from None

    def op(self, proc: int, index: int) -> Operation:
        """The ``index``-th operation of process ``proc``."""
        if proc == INIT_PROC:
            return self.init_writes[index]
        return self.processes[proc][index]

    def __len__(self) -> int:
        return sum(len(ops) for ops in self.processes)

    def to_text(self) -> str:
        """Render back into (approximate) paper notation."""
        lines = []
        for proc, ops in enumerate(self.processes):
            tokens = " ".join(f"{o.kind}({o.location}){o.value}" for o in ops)
            lines.append(f"P{proc + 1}: {tokens}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<History procs={self.n_procs} ops={len(self)}>"


class HistoryRecorder:
    """Collects operations as protocol engines complete them.

    One application process per node is assumed (as in the paper); each
    node's operations are recorded in completion order, which equals
    program order because the paper's operations block.
    """

    def __init__(self) -> None:
        self._ops: Dict[int, List[Tuple]] = {}

    def record_read(
        self, proc: int, location: str, value: Any, read_from: Tuple
    ) -> None:
        """Record a completed read and the identity of the write it saw."""
        self._ops.setdefault(proc, []).append((READ, location, value, read_from))

    def record_write(
        self, proc: int, location: str, value: Any, write_id: Tuple
    ) -> None:
        """Record an issued write under its globally unique identity."""
        self._ops.setdefault(proc, []).append((WRITE, location, value, write_id))

    def build(self, n_procs: Optional[int] = None) -> History:
        """Materialize a :class:`History` from everything recorded."""
        if n_procs is None:
            n_procs = max(self._ops, default=-1) + 1
        processes: List[List[Operation]] = []
        for proc in range(n_procs):
            ops: List[Operation] = []
            for kind, location, value, identity in self._ops.get(proc, []):
                if kind == READ:
                    ops.append(
                        Operation(
                            proc=proc, index=len(ops), kind=READ,
                            location=location, value=value, read_from=identity,
                        )
                    )
                else:
                    ops.append(
                        Operation(
                            proc=proc, index=len(ops), kind=WRITE,
                            location=location, value=value, write_id=identity,
                        )
                    )
            processes.append(ops)
        return History(processes)
