"""One-call classification of a history across every consistency model.

Convenience layer over the individual checkers: classify a history under
sequential consistency, causal memory, PRAM, slow memory and per-location
coherence at once, with a rendered table — what the consistency-zoo
example and downstream users exploring executions actually want.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.analysis.tables import Table
from repro.checker.causal_checker import CausalCheckResult, check_causal
from repro.checker.coherence_checker import check_coherence
from repro.checker.history import History
from repro.checker.pram_checker import check_pram
from repro.checker.sequential_checker import check_sequential
from repro.checker.slow_memory import check_slow

__all__ = ["ConsistencyProfile", "classify"]

#: Model names in strength order (strongest first, for display).
MODELS = ("sequential", "causal", "pram", "slow", "coherent")


@dataclass(frozen=True)
class ConsistencyProfile:
    """The verdicts of every checker on one history."""

    sequential: bool
    causal: bool
    pram: bool
    slow: bool
    coherent: bool
    causal_detail: CausalCheckResult

    def as_dict(self) -> Dict[str, bool]:
        """Model name -> admitted."""
        return {
            "sequential": self.sequential,
            "causal": self.causal,
            "pram": self.pram,
            "slow": self.slow,
            "coherent": self.coherent,
        }

    def strongest(self) -> Optional[str]:
        """The strongest model (in the linear chain) admitting the
        history, or None if even slow memory rejects it."""
        for model in ("sequential", "causal", "pram", "slow"):
            if self.as_dict()[model]:
                return model
        return None

    def hierarchy_consistent(self) -> bool:
        """Sanity: SC => causal => PRAM => slow must hold."""
        chain = [self.sequential, self.causal, self.pram, self.slow]
        return all(not a or b for a, b in zip(chain, chain[1:]))

    def render(self, title: str = "consistency profile") -> str:
        """A small yes/no table."""
        table = Table(["model", "admitted"], title=title)
        for model, verdict in self.as_dict().items():
            table.add_row(model, "yes" if verdict else "no")
        return table.render()


def classify(history: History, max_states: int = 2_000_000) -> ConsistencyProfile:
    """Run every checker on ``history``.

    Examples
    --------
    >>> h = History.parse('''
    ...     P1: r(y)0 w(x)1 r(y)0
    ...     P2: r(x)0 w(y)1 r(x)0
    ... ''')
    >>> profile = classify(h)
    >>> profile.strongest()
    'causal'
    >>> profile.hierarchy_consistent()
    True
    """
    causal_detail = check_causal(history)
    return ConsistencyProfile(
        sequential=check_sequential(
            history, max_states=max_states, want_witness=False
        ).ok,
        causal=causal_detail.ok,
        pram=check_pram(history, max_states=max_states).ok,
        slow=check_slow(history).ok,
        coherent=check_coherence(history, max_states=max_states).ok,
        causal_detail=causal_detail,
    )
