"""Random history generation for cross-checker property testing.

The protocol fuzz tests exercise the checkers only on histories real
protocols can produce; this module generates *arbitrary* histories —
including inconsistent ones — so properties of the checkers themselves
(the SC => causal => PRAM => slow implication chain, parser round-trips,
determinism) can be tested over a much wider input space.

Generation strategy: lay down a random set of unique writes, then assign
every read a random same-location write (or the initial value) to read
from.  Nothing guarantees the result is consistent under any model —
that is the point.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.checker.history import History

__all__ = ["random_history"]


def random_history(
    seed: int,
    n_procs: int = 3,
    n_locations: int = 3,
    ops_per_proc: int = 6,
    read_fraction: float = 0.5,
    n_procs_max: Optional[int] = None,
) -> History:
    """Generate a random (not necessarily consistent) history.

    Parameters mirror the workload generator's, but reads-from links are
    chosen uniformly among all writes to the location plus the initial
    write — histories may violate every consistency model, or none.

    >>> history = random_history(seed=1)
    >>> history.n_procs
    3
    """
    rng = random.Random(seed)
    if n_procs_max is not None:
        n_procs = rng.randint(n_procs, n_procs_max)
    locations = [f"l{i}" for i in range(n_locations)]

    # First pass: decide op kinds and place writes with unique values.
    skeleton: List[List[Tuple[str, str]]] = []
    writes_per_location = {loc: [] for loc in locations}
    value_counter = 0
    for proc in range(n_procs):
        ops: List[Tuple[str, str]] = []
        for _ in range(ops_per_proc):
            location = rng.choice(locations)
            if rng.random() < read_fraction:
                ops.append(("r", location))
            else:
                value_counter += 1
                writes_per_location[location].append(value_counter)
                ops.append(("w", location, value_counter))  # type: ignore
        skeleton.append(ops)

    # Second pass: assign read values among same-location writes + init.
    rows: List[str] = []
    for proc, ops in enumerate(skeleton):
        tokens: List[str] = []
        for op in ops:
            if op[0] == "w":
                _, location, value = op  # type: ignore[misc]
                tokens.append(f"w({location}){value}")
            else:
                location = op[1]
                candidates = [0] + writes_per_location[location]
                value = rng.choice(candidates)
                tokens.append(f"r({location}){value}")
        rows.append(f"P{proc + 1}: " + " ".join(tokens))
    return History.parse("\n".join(rows))
