"""Sequential-consistency checking by explicit interleaving search.

Used to reproduce the paper's separation claims: the Figure 5 execution
("a weakly consistent execution") is admitted by causal memory and by the
owner protocol but by *no* sequentially consistent memory, and the
no-cache variant of the protocol (Section 3.2) yields executions that are
sequentially consistent.

Verifying sequential consistency of an arbitrary history is NP-hard in
general [Gibbons & Korach 1997]; this checker does a memoized depth-first
search over frontier states, which is exact and fast for the small
histories the reproduction checks (figures, unit tests, fuzzed runs of a
few hundred operations with few processes).

A history is sequentially consistent iff there is a single total order of
all operations that (a) contains every process's operations in program
order and (b) makes every read return the value of the most recent
preceding write to its location (with the distinguished initial writes at
the start).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.checker.history import History, Operation, initial_write_id

__all__ = ["SequentialCheckResult", "check_sequential"]


@dataclass(frozen=True)
class SequentialCheckResult:
    """Outcome of the interleaving search."""

    ok: bool
    witness: Optional[Tuple[Operation, ...]] = None
    states_explored: int = 0

    def explain(self) -> str:
        """Human-readable summary, with the witness order if one exists."""
        if not self.ok:
            return (
                "no legal total order exists: the execution is NOT "
                f"sequentially consistent ({self.states_explored} states "
                "explored)"
            )
        assert self.witness is not None
        order = " < ".join(str(op) for op in self.witness)
        return f"sequentially consistent; witness: {order}"


def check_sequential(
    history: History,
    max_states: int = 2_000_000,
    want_witness: bool = True,
) -> SequentialCheckResult:
    """Search for a legal serialization of the history.

    Parameters
    ----------
    max_states:
        Abort (raising MemoryError-avoiding RuntimeError) if the memoized
        search would exceed this many states — a guard for adversarial
        inputs; the reproduction's histories stay far below it.
    want_witness:
        If True and the history is SC, return one witness total order.

    Examples
    --------
    >>> h = History.parse('''
    ...     P1: r(y)0 w(x)1 r(y)0
    ...     P2: r(x)0 w(y)1 r(x)0
    ... ''')
    >>> check_sequential(h).ok   # the paper's Figure 5
    False
    """
    processes = history.processes
    n = len(processes)
    lengths = tuple(len(ops) for ops in processes)

    # Memory state maps location -> write identity currently stored.
    initial_memory = tuple(
        sorted((loc, initial_write_id(loc)) for loc in history.locations)
    )

    seen: set = set()
    states_explored = 0
    # Iterative DFS carrying the chosen-op path for witness reconstruction.
    # Each stack frame: (frontier, memory, path)
    start = (tuple([0] * n), initial_memory)
    stack: List[Tuple[Tuple[int, ...], Tuple, Tuple[Operation, ...]]] = [
        (start[0], start[1], ())
    ]

    while stack:
        frontier, memory, path = stack.pop()
        key = (frontier, memory)
        if key in seen:
            continue
        seen.add(key)
        states_explored += 1
        if states_explored > max_states:
            raise RuntimeError(
                f"sequential-consistency search exceeded {max_states} states"
            )
        if frontier == lengths:
            witness = path if want_witness else None
            return SequentialCheckResult(
                ok=True, witness=witness, states_explored=states_explored
            )
        memory_map = dict(memory)
        for proc in range(n):
            position = frontier[proc]
            if position >= lengths[proc]:
                continue
            op = processes[proc][position]
            if op.is_read:
                if memory_map.get(op.location) != op.read_from:
                    continue  # this read cannot go next in this state
                next_memory = memory
            else:
                updated = dict(memory_map)
                updated[op.location] = op.write_id
                next_memory = tuple(sorted(updated.items()))
            next_frontier = list(frontier)
            next_frontier[proc] += 1
            next_path = path + (op,) if want_witness else ()
            stack.append((tuple(next_frontier), next_memory, next_path))

    return SequentialCheckResult(ok=False, states_explored=states_explored)
