"""Slow memory — the authors' prior weak model (Hutto & Ahamad 1990).

The paper builds on the authors' ICDCS 1990 "slow memory" (its citation
[10]), the weakest location-relative consistency they consider: reads of
a location must respect the *per-writer, per-location* write order.
Formally, for every reader ``P_i``, location ``x`` and writer ``P_j``,
the sequence of ``P_j``-written values that ``P_i`` reads from ``x``
must be a (possibly stuttering) subsequence of ``P_j``'s writes to ``x``
in program order — a reader may be arbitrarily stale, but never observes
one writer's values regressing.  Additionally, as in all these models, a
process observes its own writes immediately (local writes are totally
ordered with its reads by program order).

Causal memory is strictly stronger than slow memory; the zoo example
and property tests use this checker to exhibit both the implication and
the separation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.checker.history import History, INIT_PROC

__all__ = ["SlowCheckResult", "check_slow"]


@dataclass(frozen=True)
class SlowCheckResult:
    """Verdict plus the first offending read per failing process."""

    ok: bool
    failures: Tuple[Tuple[int, int], ...]  # op_ids of offending reads

    def explain(self) -> str:
        if self.ok:
            return "execution satisfies slow memory"
        ops = ", ".join(f"(P{p + 1}, op {i})" for p, i in self.failures)
        return f"execution violates slow memory at: {ops}"


def check_slow(history: History) -> SlowCheckResult:
    """Check the slow-memory condition.

    Two requirements per reader process:

    1. per-(location, writer) monotonicity of observed write positions;
    2. read-your-writes: after ``P_i`` writes ``x``, ``P_i`` never again
       observes an *earlier own* write of ``x`` (its own-writer position
       is pinned by its latest write).

    Examples
    --------
    >>> h = History.parse('''
    ...     P1: w(x)1 w(x)2
    ...     P2: r(x)2 r(x)1
    ... ''')
    >>> check_slow(h).ok
    False
    """
    # Position of each write in its writer's per-location sequence.
    position: Dict[Tuple, int] = {}
    per_writer_counts: Dict[Tuple[int, str], int] = {}
    for ops in history.processes:
        for op in ops:
            if op.is_write:
                key = (op.proc, op.location)
                per_writer_counts[key] = per_writer_counts.get(key, 0) + 1
                position[op.write_id] = per_writer_counts[key]
    for init in history.init_writes:
        position[init.write_id] = 0

    failures: List[Tuple[int, int]] = []
    for proc, ops in enumerate(history.processes):
        # Latest observed position per (location, writer).
        seen: Dict[Tuple[str, int], int] = {}
        own_writes: Dict[str, int] = {}
        for op in ops:
            if op.is_write:
                own_writes[op.location] = position[op.write_id]
                continue
            source = history.write_by_id(op.read_from)
            writer = source.proc
            pos = position[op.read_from]
            key = (op.location, writer)
            if pos < seen.get(key, -1):
                failures.append(op.op_id)
                continue
            if (
                writer == proc
                and pos < own_writes.get(op.location, -1)
            ):
                failures.append(op.op_id)
                continue
            if writer == INIT_PROC and op.location in own_writes:
                # Reading the initial value after writing it yourself
                # regresses your own write.
                failures.append(op.op_id)
                continue
            seen[key] = pos
    return SlowCheckResult(ok=not failures, failures=tuple(failures))
