"""Consistency checkers for operation histories.

This package implements the paper's Section 2 semantics as executable
mathematics: operation histories with program order and reads-from, the
causality relation and its transitive closure, the live sets
``alpha(o)`` of Definition 1, and the causal-memory correctness condition
of Definition 2.  Every protocol execution recorded by the simulator can
be validated against these definitions — the reproduction's ground truth.

Checkers for neighbouring consistency models (sequential consistency,
PRAM, per-location coherence) are included to situate causal memory in
the consistency hierarchy and to reproduce the paper's negative claims
(Figure 5 is causal but not sequentially consistent; Figure 3 is PRAM-ish
broadcast behaviour but not causal).
"""

from repro.checker.history import (
    History,
    HistoryRecorder,
    Operation,
    INIT_PROC,
    initial_write_id,
)
from repro.checker.causality import CausalOrder, CausalityCycleError
from repro.checker.live_values import (
    LiveSetCache,
    live_set,
    live_values,
    read_fingerprint,
)
from repro.checker.causal_checker import (
    CachedCausalChecker,
    CausalCheckResult,
    check_causal,
    history_fingerprint,
)
from repro.checker.sequential_checker import (
    SequentialCheckResult,
    check_sequential,
)
from repro.checker.pram_checker import check_pram
from repro.checker.coherence_checker import check_coherence
from repro.checker.slow_memory import check_slow
from repro.checker.generator import random_history
from repro.checker.report import ConsistencyProfile, classify

__all__ = [
    "History",
    "HistoryRecorder",
    "Operation",
    "INIT_PROC",
    "initial_write_id",
    "CausalOrder",
    "CausalityCycleError",
    "live_set",
    "live_values",
    "read_fingerprint",
    "LiveSetCache",
    "check_causal",
    "CausalCheckResult",
    "CachedCausalChecker",
    "history_fingerprint",
    "check_sequential",
    "SequentialCheckResult",
    "check_pram",
    "check_coherence",
    "check_slow",
    "random_history",
    "classify",
    "ConsistencyProfile",
]
