"""Live sets — Definition 1 of the paper.

Given a read ``o = r(x)v`` and a write ``o' = w(x)v'``, the value ``v'``
is *live* for ``o`` iff either:

1. ``o'`` is concurrent with ``o`` (with the reads-from edge established
   by ``o`` itself excluded from the causality relation); or
2. ``o' *-> o`` with no intervening operation ``o'' = a(x)u`` (read or
   write, ``u`` from a different write) such that ``o' *-> o'' *-> o``.

The initial write of each location participates like any other write, so
``alpha`` sets can contain the distinguished initial value, matching the
paper's worked examples (``alpha(r1(z)5) = {0, 5}`` in Figure 2).

The computation runs entirely on the :class:`CausalOrder` bitsets: for a
read ``o`` we first build the bitset of same-location operations that
reach ``o`` with its reads-from edge excluded (one big-int test per op on
the location), then every candidate write is classified with O(1) bitwise
operations — "causally later", "concurrent", and "overwritten by an
intervening op carrying a different value" are all mask intersections.
This replaces the previous per-pair ``precedes`` loops, which made the
causal checker quadratic in the number of same-location operations per
candidate and dominated property-test time.
"""

from __future__ import annotations

from typing import Any, List, Set

from repro.checker.causality import CausalOrder
from repro.checker.history import History, Operation
from repro.errors import CheckError

__all__ = ["live_set", "live_values"]


def live_set(
    history: History,
    order: CausalOrder,
    read: Operation,
) -> List[Operation]:
    """The writes whose values are live for ``read`` (``alpha(o)`` as ops).

    Returns write operations rather than raw values so callers can
    distinguish distinct writes of equal values.
    """
    if not read.is_read:
        raise CheckError(f"live_set called on non-read {read}")
    j = order.index_of(read)
    pred_mask = order.non_rf_pred_mask(j)
    loc = order.location_ops(read.location)
    read_bit = 1 << j
    # Same-location ops that reach `read` with its rf edge excluded
    # (candidates for condition 2's intervening operation o'').
    reaching = 0
    for k in loc.indices:
        if k == j:
            continue
        if (order.descendant_mask(k) | (1 << k)) & pred_mask:
            reaching |= 1 << k
    desc_of_read = order.descendant_mask(j)
    candidates = history.writes(location=read.location, include_init=True)
    live: List[Operation] = []
    for write in candidates:
        i = order.index_of(write)
        # Writes that causally follow the read are never live.
        if (desc_of_read >> i) & 1:
            continue
        desc_of_write = order.descendant_mask(i)
        if not ((desc_of_write | (1 << i)) & pred_mask):
            # Not following, not preceding (rf edge excluded): concurrent.
            live.append(write)
            continue
        # Condition 2: an intervening same-location op between `write` and
        # `read` serves notice unless it carries `write`'s own value.
        same_source = loc.source_masks.get(write.write_id, 0)
        if desc_of_write & reaching & ~same_source & ~read_bit:
            continue
        live.append(write)
    return live


def live_values(
    history: History,
    order: CausalOrder,
    read: Operation,
) -> Set[Any]:
    """``alpha(o)`` as a set of values (the form the paper's examples use)."""
    return {write.value for write in live_set(history, order, read)}
