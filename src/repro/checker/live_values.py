"""Live sets — Definition 1 of the paper.

Given a read ``o = r(x)v`` and a write ``o' = w(x)v'``, the value ``v'``
is *live* for ``o`` iff either:

1. ``o'`` is concurrent with ``o`` (with the reads-from edge established
   by ``o`` itself excluded from the causality relation); or
2. ``o' *-> o`` with no intervening operation ``o'' = a(x)u`` (read or
   write, ``u`` from a different write) such that ``o' *-> o'' *-> o``.

The initial write of each location participates like any other write, so
``alpha`` sets can contain the distinguished initial value, matching the
paper's worked examples (``alpha(r1(z)5) = {0, 5}`` in Figure 2).

The computation runs entirely on the :class:`CausalOrder` bitsets: for a
read ``o`` we first build the bitset of same-location operations that
reach ``o`` with its reads-from edge excluded (one big-int test per op on
the location), then every candidate write is classified with O(1) bitwise
operations — "causally later", "concurrent", and "overwritten by an
intervening op carrying a different value" are all mask intersections.
This replaces the previous per-pair ``precedes`` loops, which made the
causal checker quadratic in the number of same-location operations per
candidate and dominated property-test time.

Memoisation (the ROADMAP "checker search pruning" item): the live set of
a read is fully determined by its *causal-past fingerprint* — the read's
identity, the reads-from assignments of every read in its causal past
(with the read's own rf edge excluded), the same-location operations
that reach it, the candidate-write layout, and which candidates causally
follow it.  Program order contributes nothing extra: it is derivable
from the operation ids in the fingerprint, and every causal path into
the past runs entirely through past operations, whose rf edges the
fingerprint pins down.  A :class:`LiveSetCache` keyed on that
fingerprint therefore serves reads of *different* histories — exactly
the situation the :mod:`repro.mc` schedule explorer creates, where
thousands of dominated schedules re-derive the same causal pasts — with
a guaranteed-identical result.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from repro.checker.causality import CausalOrder
from repro.checker.history import History, Operation
from repro.errors import CheckError

__all__ = ["live_set", "live_values", "read_fingerprint", "LiveSetCache"]


class LiveSetCache:
    """Memoises live-set computation across reads *and histories*.

    The key is :func:`read_fingerprint`; the value is the tuple of
    positions (into the read's candidate-write list) that are live.
    Positions, not operations, so a hit from one history can be replayed
    onto the equal-shaped candidates of another.

    Share one instance across many :func:`check_causal` calls (the
    explorer and the benchmark runner do); verdicts are unchanged — see
    ``test_checker_memo.py``, which pins cached == uncached over
    thousands of generated histories.
    """

    __slots__ = ("hits", "misses", "_table")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self._table: Dict[Tuple, Tuple[int, ...]] = {}

    def __len__(self) -> int:
        return len(self._table)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the table."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def clear(self) -> None:
        """Drop all memoised entries (counters are kept)."""
        self._table.clear()


def read_fingerprint(
    history: History, order: CausalOrder, read: Operation
) -> Tuple:
    """The causal-past fingerprint that determines ``read``'s live set.

    Two reads (in the same history or different ones) with equal
    fingerprints have equal live sets *as candidate positions*.  The
    components, and why they suffice:

    * the read's id, location and source — identifies the operation and
      its rf edge (which Definition 1 excludes);
    * ``past_reads`` — every read (any location) reaching this one with
      its rf edge excluded, with its rf assignment.  All causal paths
      between past operations run through past operations, and every
      non-program-order edge on such a path is the rf edge of a past
      read, so this pins the entire causal relation over the past
      (program-order edges are derivable from the operation ids);
    * ``past_loc`` — the same-location operations serving notice
      (condition 2's candidates), with the write each one carries;
    * ``candidates`` — the candidate-write layout (positions matter);
    * ``follows`` — candidates causally *after* the read, which are
      excluded from the live set but whose ordering paths may run
      through non-past operations, so they cannot be derived from the
      past components.
    """
    j = order.index_of(read)
    pred_mask = order.non_rf_pred_mask(j)
    desc_of_read = order.descendant_mask(j)
    past_reads: List[Tuple] = []
    for op in history.reads():
        k = order.index_of(op)
        if k != j and (order.descendant_mask(k) | (1 << k)) & pred_mask:
            past_reads.append((op.proc, op.index, op.read_from))
    loc = order.location_ops(read.location)
    past_loc: List[Tuple] = []
    for k in loc.indices:
        if k == j:
            continue
        if (order.descendant_mask(k) | (1 << k)) & pred_mask:
            op = order.ops[k]
            source = op.write_id if op.is_write else op.read_from
            past_loc.append((op.proc, op.index, source))
    candidates = history.writes(location=read.location, include_init=True)
    follows = tuple(
        write.write_id
        for write in candidates
        if (desc_of_read >> order.index_of(write)) & 1
    )
    return (
        read.op_id,
        read.location,
        read.read_from,
        tuple(past_reads),
        tuple(past_loc),
        tuple(write.write_id for write in candidates),
        follows,
    )


def live_set(
    history: History,
    order: CausalOrder,
    read: Operation,
    cache: Optional[LiveSetCache] = None,
) -> List[Operation]:
    """The writes whose values are live for ``read`` (``alpha(o)`` as ops).

    Returns write operations rather than raw values so callers can
    distinguish distinct writes of equal values.  With ``cache``, the
    result is memoised under the read's causal-past fingerprint.
    """
    if not read.is_read:
        raise CheckError(f"live_set called on non-read {read}")
    candidates = history.writes(location=read.location, include_init=True)
    key: Optional[Tuple] = None
    if cache is not None:
        key = read_fingerprint(history, order, read)
        positions = cache._table.get(key)
        if positions is not None:
            cache.hits += 1
            return [candidates[p] for p in positions]
        cache.misses += 1
    j = order.index_of(read)
    pred_mask = order.non_rf_pred_mask(j)
    loc = order.location_ops(read.location)
    read_bit = 1 << j
    # Same-location ops that reach `read` with its rf edge excluded
    # (candidates for condition 2's intervening operation o'').
    reaching = 0
    for k in loc.indices:
        if k == j:
            continue
        if (order.descendant_mask(k) | (1 << k)) & pred_mask:
            reaching |= 1 << k
    desc_of_read = order.descendant_mask(j)
    live: List[Operation] = []
    live_positions: List[int] = []
    for position, write in enumerate(candidates):
        i = order.index_of(write)
        # Writes that causally follow the read are never live.
        if (desc_of_read >> i) & 1:
            continue
        desc_of_write = order.descendant_mask(i)
        if not ((desc_of_write | (1 << i)) & pred_mask):
            # Not following, not preceding (rf edge excluded): concurrent.
            live.append(write)
            live_positions.append(position)
            continue
        # Condition 2: an intervening same-location op between `write` and
        # `read` serves notice unless it carries `write`'s own value.
        same_source = loc.source_masks.get(write.write_id, 0)
        if desc_of_write & reaching & ~same_source & ~read_bit:
            continue
        live.append(write)
        live_positions.append(position)
    if cache is not None and key is not None:
        cache._table[key] = tuple(live_positions)
    return live


def live_values(
    history: History,
    order: CausalOrder,
    read: Operation,
    cache: Optional[LiveSetCache] = None,
) -> Set[Any]:
    """``alpha(o)`` as a set of values (the form the paper's examples use)."""
    return {write.value for write in live_set(history, order, read, cache)}
