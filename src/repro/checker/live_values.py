"""Live sets — Definition 1 of the paper.

Given a read ``o = r(x)v`` and a write ``o' = w(x)v'``, the value ``v'``
is *live* for ``o`` iff either:

1. ``o'`` is concurrent with ``o`` (with the reads-from edge established
   by ``o`` itself excluded from the causality relation); or
2. ``o' *-> o`` with no intervening operation ``o'' = a(x)u`` (read or
   write, ``u`` from a different write) such that ``o' *-> o'' *-> o``.

The initial write of each location participates like any other write, so
``alpha`` sets can contain the distinguished initial value, matching the
paper's worked examples (``alpha(r1(z)5) = {0, 5}`` in Figure 2).
"""

from __future__ import annotations

from typing import Any, List, Set

from repro.checker.causality import CausalOrder
from repro.checker.history import History, Operation
from repro.errors import CheckError

__all__ = ["live_set", "live_values"]


def live_set(
    history: History,
    order: CausalOrder,
    read: Operation,
) -> List[Operation]:
    """The writes whose values are live for ``read`` (``alpha(o)`` as ops).

    Returns write operations rather than raw values so callers can
    distinguish distinct writes of equal values.
    """
    if not read.is_read:
        raise CheckError(f"live_set called on non-read {read}")
    candidates = history.writes(location=read.location, include_init=True)
    live: List[Operation] = []
    for write in candidates:
        if _is_live(order, write, read, candidates):
            live.append(write)
    return live


def live_values(
    history: History,
    order: CausalOrder,
    read: Operation,
) -> Set[Any]:
    """``alpha(o)`` as a set of values (the form the paper's examples use)."""
    return {write.value for write in live_set(history, order, read)}


def _is_live(
    order: CausalOrder,
    write: Operation,
    read: Operation,
    same_location_ops_hint: List[Operation],
) -> bool:
    # Writes that causally follow the read are never live.
    if order.precedes(read, write):
        return False
    preceding = order.precedes_excluding_rf(write, read)
    if not preceding:
        # Not following, not preceding (rf edge excluded): concurrent.
        return True
    # Condition 2: no intervening read or write of the same location with
    # a different value between `write` and `read`.
    for other in _same_location_ops(order, read.location):
        if other.op_id == write.op_id or other.op_id == read.op_id:
            continue
        if _same_write_source(other, write):
            continue
        if order.precedes(write, other) and order.precedes_excluding_rf(
            other, read
        ):
            return False
    return True


def _same_location_ops(order: CausalOrder, location: str) -> List[Operation]:
    return [op for op in order.ops if op.location == location]


def _same_write_source(op: Operation, write: Operation) -> bool:
    """True if ``op`` is ``write`` itself or a read of ``write``'s value.

    A read of the same write does not overwrite it — only operations
    carrying a *different* value "serve notice" (paper, Section 2).
    """
    if op.is_write:
        return op.write_id == write.write_id
    return op.read_from == write.write_id
