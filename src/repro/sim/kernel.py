"""The discrete-event simulation kernel.

The kernel is intentionally tiny: a clock, a priority queue of timestamped
callbacks, and a seeded random number generator.  Determinism is the load-
bearing property — two runs with the same seed execute the same events in
the same order, which makes every experiment in the reproduction exactly
repeatable (the paper's arguments are about orderings and counts, so the
measurement instrument must not itself be a source of noise).

Ties in time are broken by a monotonically increasing sequence number, so
insertion order decides between simultaneous events.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import SimulationError

__all__ = ["Simulator", "ScheduledEvent"]


@dataclass(order=True)
class ScheduledEvent:
    """A callback scheduled at a point in simulated time.

    Events compare by ``(time, seq)`` so the heap pops them in deterministic
    order.  ``cancelled`` supports O(1) cancellation: the event stays in the
    heap but is skipped when popped.
    """

    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Prevent the callback from running when its time arrives."""
        self.cancelled = True


class Simulator:
    """A deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Seed for the simulator-owned :class:`random.Random`.  All randomness
        in a simulation (latency jitter, workload choices) must come from
        :attr:`rng` or a generator derived from :meth:`derived_rng` so runs
        are reproducible.

    Examples
    --------
    >>> sim = Simulator(seed=1)
    >>> fired = []
    >>> handle = sim.schedule(5.0, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [5.0]
    """

    def __init__(self, seed: int = 0):
        self.now: float = 0.0
        self.rng = random.Random(seed)
        self._seed = seed
        self._queue: list[ScheduledEvent] = []
        self._seq = 0
        self._events_processed = 0
        self._running = False

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[[], None]) -> ScheduledEvent:
        """Schedule ``callback`` to run ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self.now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> ScheduledEvent:
        """Schedule ``callback`` at absolute simulated time ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self.now}"
            )
        event = ScheduledEvent(time=time, seq=self._next_seq(), callback=callback)
        heapq.heappush(self._queue, event)
        return event

    def call_soon(self, callback: Callable[[], None]) -> ScheduledEvent:
        """Schedule ``callback`` at the current time (after pending events)."""
        return self.schedule(0.0, callback)

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def seed(self) -> int:
        """The seed this simulator was constructed with."""
        return self._seed

    @property
    def pending_events(self) -> int:
        """Number of not-yet-cancelled events in the queue."""
        return sum(1 for event in self._queue if not event.cancelled)

    @property
    def events_processed(self) -> int:
        """Total number of callbacks executed so far."""
        return self._events_processed

    def derived_rng(self, label: str) -> random.Random:
        """A new RNG deterministically derived from the seed and ``label``.

        Use one derived RNG per independent random stream (e.g. one per
        workload process) so adding a stream does not perturb the others.
        """
        return random.Random(f"{self._seed}/{label}")

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the single next event.  Returns False if the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            if event.time < self.now:
                raise SimulationError("event queue produced a time in the past")
            self.now = event.time
            self._events_processed += 1
            event.callback()
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Run events until the queue drains, ``until`` passes, or a budget.

        Parameters
        ----------
        until:
            Stop (without executing) the first event strictly after this
            time; the clock is advanced to ``until``.
        max_events:
            Execute at most this many events — a safety net against
            accidental livelock in tests.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        executed = 0
        try:
            while self._queue:
                if max_events is not None and executed >= max_events:
                    raise SimulationError(
                        f"event budget of {max_events} exhausted at t={self.now}"
                    )
                head = self._peek()
                if head is None:
                    break
                if until is not None and head.time > until:
                    self.now = until
                    return
                self.step()
                executed += 1
            if until is not None and until > self.now:
                self.now = until
        finally:
            self._running = False

    def _peek(self) -> Optional[ScheduledEvent]:
        """Return the next live event without popping it, or None."""
        while self._queue:
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            return head
        return None
