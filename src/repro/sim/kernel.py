"""The discrete-event simulation kernel.

The kernel is intentionally tiny: a clock, a priority queue of timestamped
callbacks, and a seeded random number generator.  Determinism is the load-
bearing property — two runs with the same seed execute the same events in
the same order, which makes every experiment in the reproduction exactly
repeatable (the paper's arguments are about orderings and counts, so the
measurement instrument must not itself be a source of noise).

Ties in time are broken by a monotonically increasing sequence number, so
insertion order decides between simultaneous events.

Performance notes:

* Cancelled events stay in the heap (O(1) cancellation) but the kernel
  keeps a live count, so :attr:`Simulator.pending_events` is O(1) instead
  of a full queue scan — deadlock detection polls it after every task
  step.
* When cancelled corpses outnumber live events the heap is compacted in
  one O(n) pass; compaction only drops cancelled entries, so the
  ``(time, seq)`` pop order — and hence determinism — is unchanged.
* The skip-cancelled logic lives in one place (:meth:`Simulator._peek`
  drains cancelled heads, ``step``/``run`` pop the live head directly),
  so no event is popped twice and cancelled skips never count as
  processed events.
* The heap holds plain ``(time, seq, event)`` tuples: ``seq`` is unique,
  so ``heapq`` resolves every comparison on the first two elements at C
  speed and never calls a Python-level ``__lt__``.

Controlled scheduling (the model-checking hook):

* Every event may carry a ``tag`` — a small tuple describing *what* the
  event is (a message delivery, a task resumption, a fault action) —
  set by the scheduling site and never interpreted by the kernel.
* :meth:`Simulator.enabled_events` exposes the live pending events and
  :meth:`Simulator.execute_event` runs a chosen one regardless of its
  position in the time order; together they let an external explorer
  (:mod:`repro.mc`) enumerate message-delivery interleavings instead of
  following wall-clock order.  Executing an event "early" only ever
  advances the clock (``now`` never moves backwards), which models a
  different — but still legal — latency assignment for the remaining
  messages.
"""

from __future__ import annotations

import heapq
import random
from heapq import heappop, heappush
from typing import Callable, Optional

from repro.errors import SimulationError

__all__ = ["Simulator", "ScheduledEvent", "NO_ARG"]

#: Compact the heap when it holds more than this many cancelled events
#: and they outnumber the live ones (small queues are not worth the pass).
_COMPACT_MIN_CANCELLED = 64


class _NoArg:
    """Sentinel distinguishing "no argument" from an argument of None."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<NO_ARG>"


#: Events whose ``arg`` is this sentinel run ``callback()``; any other
#: value (including None) runs ``callback(arg)``.  Passing a preallocated
#: record as ``arg`` lets hot schedulers (message delivery, task resume)
#: reuse one bound method instead of allocating a closure per event.
NO_ARG = _NoArg()


class ScheduledEvent:
    """A callback scheduled at a point in simulated time.

    The heap orders events by ``(time, seq)``; insertion order decides
    between simultaneous events.  ``cancelled`` supports O(1)
    cancellation: the event stays in the heap but is skipped when popped
    (or dropped by a compaction).

    ``arg`` carries an optional single argument for the callback (see
    :data:`NO_ARG`): the run loops invoke ``callback(arg)`` when it is
    set, so a shared bound method plus a per-event record replaces a
    per-event closure on the hot scheduling paths.
    """

    __slots__ = (
        "time", "seq", "callback", "cancelled", "tag", "arg",
        "_sim", "_in_heap",
    )

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., None],
        cancelled: bool = False,
        _sim: Optional["Simulator"] = None,
        _in_heap: bool = False,
        tag: Optional[tuple] = None,
        arg: object = NO_ARG,
    ):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = cancelled
        self.tag = tag
        self.arg = arg
        self._sim = _sim
        self._in_heap = _in_heap

    def execute(self) -> None:
        """Invoke the callback (with its carried ``arg`` when present)."""
        arg = self.arg
        if arg is NO_ARG:
            self.callback()
        else:
            self.callback(arg)

    def __repr__(self) -> str:
        return (
            f"ScheduledEvent(time={self.time!r}, seq={self.seq!r}, "
            f"callback={self.callback!r}, cancelled={self.cancelled!r}, "
            f"tag={self.tag!r})"
        )

    def cancel(self) -> None:
        """Prevent the callback from running when its time arrives."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._in_heap and self._sim is not None:
            self._sim._note_cancelled()


class Simulator:
    """A deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Seed for the simulator-owned :class:`random.Random`.  All randomness
        in a simulation (latency jitter, workload choices) must come from
        :attr:`rng` or a generator derived from :meth:`derived_rng` so runs
        are reproducible.

    Examples
    --------
    >>> sim = Simulator(seed=1)
    >>> fired = []
    >>> handle = sim.schedule(5.0, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [5.0]
    """

    def __init__(self, seed: int = 0):
        self.now: float = 0.0
        self.rng = random.Random(seed)
        self._seed = seed
        self._queue: list[tuple[float, int, ScheduledEvent]] = []
        self._seq = 0
        self._events_processed = 0
        self._batched_callbacks = 0
        self._cancelled_in_queue = 0
        self._cancelled_skips = 0
        self._compactions = 0
        self._running = False
        #: Attached TraceCollector, or None.  The bare ``run()`` fast
        #: path branches on this ONCE before its loop, so a detached run
        #: executes byte-identical bytecode to the pre-obs kernel.
        self.obs = None
        #: Streaming-subscriber hook: a callable receiving every executed
        #: :class:`ScheduledEvent` (tagged or not) just before its
        #: callback runs, or None.  Same twin-loop discipline as ``obs``:
        #: the bare ``run()`` branches once, so a detached run pays
        #: nothing per event.  Used by ``repro monitor`` to observe
        #: kernel progress live.
        self.stream = None

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def _push_event(
        self,
        time: float,
        callback: Callable[..., None],
        tag: Optional[tuple],
        arg: object = NO_ARG,
    ) -> ScheduledEvent:
        """The single event-construction path.

        Every scheduling front-end (``schedule``, ``schedule_at``,
        ``schedule_batch``, ``schedule_fanout_at``) funnels through here,
        so the ``(time, seq)`` tie-breaking order cannot drift between
        batch and non-batch deliveries.
        """
        self._seq = seq = self._seq + 1
        event = ScheduledEvent(time, seq, callback, False, self, True, tag, arg)
        heappush(self._queue, (time, seq, event))
        return event

    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        tag: Optional[tuple] = None,
        arg: object = NO_ARG,
    ) -> ScheduledEvent:
        """Schedule ``callback`` to run ``delay`` time units from now.

        ``arg``, when given, is passed to the callback at execution time
        (``callback(arg)``) — see :data:`NO_ARG`.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self._push_event(self.now + delay, callback, tag, arg)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., None],
        tag: Optional[tuple] = None,
        arg: object = NO_ARG,
    ) -> ScheduledEvent:
        """Schedule ``callback`` at absolute simulated time ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self.now}"
            )
        return self._push_event(time, callback, tag, arg)

    def call_soon(
        self,
        callback: Callable[..., None],
        tag: Optional[tuple] = None,
        arg: object = NO_ARG,
    ) -> ScheduledEvent:
        """Schedule ``callback`` at the current time (after pending events)."""
        return self.schedule(0.0, callback, tag=tag, arg=arg)

    def schedule_batch(
        self,
        delay: float,
        callbacks,
        tag: Optional[tuple] = None,
    ) -> ScheduledEvent:
        """Schedule several callbacks as ONE heap entry at one instant.

        The callbacks run back-to-back, in the given order, when the
        entry's time arrives — amortising the per-event heap push/pop,
        trace emission, and stream call across the whole group.  Because
        consecutively scheduled events carry consecutive sequence numbers,
        a batch executes in exactly the order the same callbacks would
        have executed if scheduled individually at the same instant (no
        foreign event's ``(time, seq)`` can fall between them), so the
        two schedulings are event-order equivalent.

        Cancelling the returned event cancels the *whole* batch.
        ``batched_callbacks`` counts callbacks run through batches;
        ``events_processed`` counts a batch as the single event it is.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self._schedule_batch(self.now + delay, callbacks, tag)

    def schedule_batch_at(
        self,
        time: float,
        callbacks,
        tag: Optional[tuple] = None,
    ) -> ScheduledEvent:
        """:meth:`schedule_batch` at an absolute simulated time."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self.now}"
            )
        return self._schedule_batch(time, callbacks, tag)

    def _schedule_batch(self, time, callbacks, tag) -> ScheduledEvent:
        callbacks = tuple(callbacks)
        if len(callbacks) == 1:
            # A batch of one is a plain event — no closure overhead.
            return self._push_event(time, callbacks[0], tag)

        def run_batch() -> None:
            self._batched_callbacks += len(callbacks)
            for callback in callbacks:
                callback()

        return self._push_event(time, run_batch, tag)

    def schedule_fanout_at(
        self,
        time: float,
        callback: Callable[[object], None],
        args,
        tag: Optional[tuple] = None,
    ) -> ScheduledEvent:
        """Schedule ``callback(arg)`` for each of ``args`` as ONE heap entry.

        The arg-carrying twin of :meth:`schedule_batch_at`: one shared
        callback applied to a sequence of preallocated records (the
        network's fan-out deliveries), with the same event-order
        equivalence argument and the same batch accounting.  A group of
        one degenerates to a plain arg-carrying event.

        Cancelling the returned event cancels the whole group.
        """
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self.now}"
            )
        args = tuple(args)
        if len(args) == 1:
            return self._push_event(time, callback, tag, args[0])

        def run_group() -> None:
            self._batched_callbacks += len(args)
            for arg in args:
                callback(arg)

        return self._push_event(time, run_group, tag)

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def seed(self) -> int:
        """The seed this simulator was constructed with."""
        return self._seed

    @property
    def pending_events(self) -> int:
        """Number of not-yet-cancelled events in the queue (O(1))."""
        return len(self._queue) - self._cancelled_in_queue

    @property
    def events_processed(self) -> int:
        """Total number of callbacks executed so far.

        Cancelled events are skipped, never executed, and do not count
        here — see :attr:`cancelled_skips`.
        """
        return self._events_processed

    @property
    def batched_callbacks(self) -> int:
        """Callbacks executed through :meth:`schedule_batch` groups of >1."""
        return self._batched_callbacks

    @property
    def cancelled_skips(self) -> int:
        """Cancelled events discarded from the heap without executing."""
        return self._cancelled_skips

    @property
    def heap_compactions(self) -> int:
        """Times the heap was rebuilt to evict cancelled corpses."""
        return self._compactions

    def derived_rng(self, label: str) -> random.Random:
        """A new RNG deterministically derived from the seed and ``label``.

        Use one derived RNG per independent random stream (e.g. one per
        workload process) so adding a stream does not perturb the others.
        """
        return random.Random(f"{self._seed}/{label}")

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the single next event.  Returns False if the queue is empty."""
        event = self._peek()
        if event is None:
            return False
        self._execute_head(event)
        return True

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Run events until the queue drains, ``until`` passes, or a budget.

        Parameters
        ----------
        until:
            Stop (without executing) the first event strictly after this
            time; the clock is advanced to ``until``.
        max_events:
            Execute at most this many events — a safety net against
            accidental livelock in tests.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        executed = 0
        queue = self._queue
        try:
            if until is None and max_events is None:
                obs = self.obs
                stream = self.stream
                if obs is None and stream is None:
                    # Fast path for the by-far common bare ``run()``: no
                    # budget or horizon checks inside the event loop, and
                    # — the zero-overhead-when-disabled guarantee — no
                    # per-event obs or stream test either.
                    no_arg = NO_ARG
                    while queue:
                        time, _, event = heappop(queue)
                        event._in_heap = False
                        if event.cancelled:
                            self._cancelled_in_queue -= 1
                            self._cancelled_skips += 1
                            continue
                        if time < self.now:
                            raise SimulationError(
                                "event queue produced a time in the past"
                            )
                        self.now = time
                        self._events_processed += 1
                        arg = event.arg
                        if arg is no_arg:
                            event.callback()
                        else:
                            event.callback(arg)
                    return
                # Instrumented twin of the loop above: identical
                # semantics, plus a scheduling-decision event for every
                # tagged (externally meaningful) event executed and a
                # streaming-subscriber call for every event when a
                # stream hook is installed.
                while queue:
                    time, _, event = heappop(queue)
                    event._in_heap = False
                    if event.cancelled:
                        self._cancelled_in_queue -= 1
                        self._cancelled_skips += 1
                        continue
                    if time < self.now:
                        raise SimulationError(
                            "event queue produced a time in the past"
                        )
                    self.now = time
                    self._events_processed += 1
                    if obs is not None and event.tag is not None:
                        obs.emit("kernel", "execute", time=time, tag=event.tag)
                    if stream is not None:
                        stream(event)
                    event.execute()
                return
            while queue:
                if max_events is not None and executed >= max_events:
                    raise SimulationError(
                        f"event budget of {max_events} exhausted at t={self.now}"
                    )
                time, _, event = queue[0]
                if event.cancelled:
                    heappop(queue)
                    event._in_heap = False
                    self._cancelled_in_queue -= 1
                    self._cancelled_skips += 1
                    continue
                if until is not None and time > until:
                    self.now = until
                    return
                heappop(queue)
                event._in_heap = False
                if time < self.now:
                    raise SimulationError("event queue produced a time in the past")
                self.now = time
                self._events_processed += 1
                if self.obs is not None and event.tag is not None:
                    self.obs.emit("kernel", "execute", time=time, tag=event.tag)
                if self.stream is not None:
                    self.stream(event)
                event.execute()
                executed += 1
            if until is not None and until > self.now:
                self.now = until
        finally:
            self._running = False

    # ------------------------------------------------------------------
    # Controlled scheduling (the repro.mc explorer hook)
    # ------------------------------------------------------------------
    def enabled_events(self) -> list[ScheduledEvent]:
        """All live pending events, sorted by ``(time, seq)``.

        This is the *enabled set* an external explorer chooses from.  The
        returned order is deterministic (the same order ``run`` would pop
        them in), which keeps explorer traces replayable.  Cancelled
        corpses are filtered but deliberately left in the heap — the
        normal pop paths account for them.
        """
        live = [entry[2] for entry in self._queue if not entry[2].cancelled]
        live.sort(key=lambda event: (event.time, event.seq))
        return live

    def execute_event(self, event: ScheduledEvent) -> None:
        """Execute one chosen pending event, out of time order if need be.

        The explorer's counterpart to :meth:`step`: the event is removed
        from the queue and run, and the clock advances to its timestamp
        if that lies in the future (choosing a "late" event first models
        a latency assignment under which it arrived earlier; the clock
        never moves backwards).  Counters are maintained exactly as for a
        normally popped event.  O(n) per call — controlled runs are small
        by construction, and the normal ``run`` path is untouched.
        """
        if event.cancelled or not event._in_heap:
            raise SimulationError(f"cannot execute {event!r}: not pending")
        try:
            self._queue.remove((event.time, event.seq, event))
        except ValueError:  # pragma: no cover - _in_heap guards this
            raise SimulationError(f"{event!r} is not in this simulator's queue")
        heapq.heapify(self._queue)
        event._in_heap = False
        if event.time > self.now:
            self.now = event.time
        self._events_processed += 1
        if self.obs is not None:
            self.obs.emit(
                "kernel", "choose", time=self.now,
                tag=event.tag, scheduled_at=event.time,
            )
        if self.stream is not None:
            self.stream(event)
        event.execute()

    # ------------------------------------------------------------------
    # Queue internals (the one place cancelled events are skipped)
    # ------------------------------------------------------------------
    def _peek(self) -> Optional[ScheduledEvent]:
        """Return the next live event without popping it, or None.

        Cancelled heads are discarded on the way (counted as skips, never
        as processed events).
        """
        queue = self._queue
        while queue:
            head = queue[0][2]
            if head.cancelled:
                heappop(queue)
                head._in_heap = False
                self._cancelled_in_queue -= 1
                self._cancelled_skips += 1
                continue
            return head
        return None

    def _execute_head(self, head: ScheduledEvent) -> None:
        """Pop ``head`` (known live, at the top of the heap) and run it."""
        heappop(self._queue)
        head._in_heap = False
        if head.time < self.now:
            raise SimulationError("event queue produced a time in the past")
        self.now = head.time
        self._events_processed += 1
        if self.obs is not None and head.tag is not None:
            self.obs.emit("kernel", "execute", time=head.time, tag=head.tag)
        if self.stream is not None:
            self.stream(head)
        head.execute()

    def _note_cancelled(self) -> None:
        self._cancelled_in_queue += 1
        if (
            self._cancelled_in_queue > _COMPACT_MIN_CANCELLED
            and self._cancelled_in_queue * 2 > len(self._queue)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled events and re-heapify (order-preserving).

        The list is mutated in place so aliases held by a running
        ``run()`` loop stay valid.
        """
        live = []
        for entry in self._queue:
            event = entry[2]
            if event.cancelled:
                event._in_heap = False
                self._cancelled_skips += 1
            else:
                live.append(entry)
        self._queue[:] = live
        heapq.heapify(self._queue)
        self._cancelled_in_queue = 0
        self._compactions += 1
