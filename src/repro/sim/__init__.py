"""Deterministic discrete-event simulation substrate.

This package provides the execution environment the paper assumes: a set of
processors exchanging messages over reliable, per-channel FIFO links, with
application processes that can *block* on memory operations (the paper's
read/write operations block until a reply arrives from the owner).

Modules
-------
:mod:`repro.sim.kernel`
    The event queue and simulation clock.
:mod:`repro.sim.tasks`
    Futures and generator-based processes ("tasks") with blocking semantics.
:mod:`repro.sim.latency`
    Pluggable, deterministic message-latency models.
:mod:`repro.sim.trace`
    Message tracing and counting — the measurement instrument behind the
    paper's message-counting argument (Section 4.1).
:mod:`repro.sim.network`
    The reliable FIFO message layer connecting protocol engines.
:mod:`repro.sim.faults`
    Fault injection (partitions, delays) used by tests to probe blocking
    behaviour; the paper's protocol assumes a reliable network, so faults
    are a test instrument, not part of the reproduced system.
"""

from repro.sim.kernel import Simulator
from repro.sim.tasks import Future, Task, TaskScheduler, sleep
from repro.sim.latency import (
    ConstantLatency,
    JitteredLatency,
    LatencyModel,
    PerLinkLatency,
    UniformLatency,
)
from repro.sim.network import Network
from repro.sim.trace import MessageRecord, MessageTrace, NetworkStats

__all__ = [
    "Simulator",
    "Future",
    "Task",
    "TaskScheduler",
    "sleep",
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
    "JitteredLatency",
    "PerLinkLatency",
    "Network",
    "MessageRecord",
    "MessageTrace",
    "NetworkStats",
]
