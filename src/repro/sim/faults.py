"""Scheduled fault injection.

The reproduced protocol assumes a reliable network (paper Section 3), so
faults are *not* part of the system under test; they are a test instrument
used to demonstrate the protocol's blocking behaviour (a reader blocked on a
partitioned owner stays blocked — exactly what the paper's blocking
semantics imply) and to validate the simulator itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.sim.kernel import Simulator
from repro.sim.network import Network

__all__ = ["FaultSchedule", "PartitionWindow"]


@dataclass(frozen=True)
class PartitionWindow:
    """A link outage between ``start`` and ``end`` simulated time."""

    src: int
    dst: int
    start: float
    end: float
    bidirectional: bool = True

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"window ends before it starts: {self}")


class FaultSchedule:
    """Installs timed partitions onto a network.

    Example
    -------
    >>> from repro.sim import Simulator, Network
    >>> sim = Simulator()
    >>> net = Network(sim)
    >>> net.register(0, lambda s, m: None)
    >>> net.register(1, lambda s, m: None)
    >>> schedule = FaultSchedule(sim, net)
    >>> schedule.partition_between(0, 1, start=10.0, end=20.0)
    >>> schedule.install()
    """

    def __init__(self, sim: Simulator, network: Network):
        self.sim = sim
        self.network = network
        self.windows: List[PartitionWindow] = []
        self._installed = False

    def partition_between(
        self,
        src: int,
        dst: int,
        start: float,
        end: float,
        bidirectional: bool = True,
    ) -> None:
        """Queue a partition window (takes effect after :meth:`install`)."""
        self.windows.append(
            PartitionWindow(src=src, dst=dst, start=start, end=end,
                            bidirectional=bidirectional)
        )

    def install(self) -> None:
        """Schedule all queued windows onto the simulator."""
        if self._installed:
            raise RuntimeError("fault schedule installed twice")
        self._installed = True
        for window in self.windows:
            self.sim.schedule_at(
                window.start,
                lambda w=window: self.network.partition(
                    w.src, w.dst, bidirectional=w.bidirectional
                ),
            )
            self.sim.schedule_at(
                window.end,
                lambda w=window: self.network.heal(
                    w.src, w.dst, bidirectional=w.bidirectional
                ),
            )
