"""Scheduled fault injection.

The reproduced protocol assumes a reliable network (paper Section 3), so
faults are *not* part of the system under test; they are a test instrument
used to demonstrate the protocol's blocking behaviour (a reader blocked on a
partitioned owner stays blocked — exactly what the paper's blocking
semantics imply) and to validate the simulator itself.

Windows may overlap: each directed link is reference-counted, so a link
stays partitioned until the *last* window covering it ends.  (A naive
begin/heal pairing would re-open the link at the first window's end — and,
with a delta-stamp :class:`~repro.protocols.wire.WireCodec` installed,
silently leak messages into a channel the codec still believes is lossy.)

Fault begin/end actions are scheduled with kernel tags, so a controlled
run (:mod:`repro.mc`) can reorder them against message deliveries and
explore *where* an outage falls relative to the protocol's handshakes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.sim.kernel import Simulator
from repro.sim.network import Network

__all__ = ["FaultSchedule", "PartitionWindow"]


@dataclass(frozen=True)
class PartitionWindow:
    """A link outage between ``start`` and ``end`` simulated time."""

    src: int
    dst: int
    start: float
    end: float
    bidirectional: bool = True

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"window ends before it starts: {self}")

    def links(self) -> List[Tuple[int, int]]:
        """The directed links this window takes down."""
        if self.bidirectional:
            return [(self.src, self.dst), (self.dst, self.src)]
        return [(self.src, self.dst)]


class FaultSchedule:
    """Installs timed partitions onto a network.

    Example
    -------
    >>> from repro.sim import Simulator, Network
    >>> sim = Simulator()
    >>> net = Network(sim)
    >>> net.register(0, lambda s, m: None)
    >>> net.register(1, lambda s, m: None)
    >>> schedule = FaultSchedule(sim, net)
    >>> schedule.partition_between(0, 1, start=10.0, end=20.0)
    >>> schedule.partition_between(0, 1, start=15.0, end=30.0)  # overlaps
    >>> schedule.install()
    >>> sim.run(until=20.5)
    >>> (0, 1) in net._partitioned   # still down: second window holds it
    True
    >>> sim.run()
    >>> (0, 1) in net._partitioned
    False
    """

    def __init__(self, sim: Simulator, network: Network):
        self.sim = sim
        self.network = network
        self.windows: List[PartitionWindow] = []
        self._installed = False
        self._active: Dict[Tuple[int, int], int] = {}

    def partition_between(
        self,
        src: int,
        dst: int,
        start: float,
        end: float,
        bidirectional: bool = True,
    ) -> None:
        """Queue a partition window (takes effect after :meth:`install`)."""
        self.windows.append(
            PartitionWindow(src=src, dst=dst, start=start, end=end,
                            bidirectional=bidirectional)
        )

    def install(self) -> None:
        """Schedule all queued windows onto the simulator."""
        if self._installed:
            raise RuntimeError("fault schedule installed twice")
        self._installed = True
        for index, window in enumerate(self.windows):
            self.sim.schedule_at(
                window.start,
                lambda w=window: self._begin(w),
                tag=("fault", index, "begin"),
            )
            self.sim.schedule_at(
                window.end,
                lambda w=window: self._end(w),
                tag=("fault", index, "end"),
            )

    # ------------------------------------------------------------------
    # Reference-counted link state
    # ------------------------------------------------------------------
    def _begin(self, window: PartitionWindow) -> None:
        for link in window.links():
            count = self._active.get(link, 0)
            self._active[link] = count + 1
            if count == 0:
                self.network.partition(*link, bidirectional=False)

    def _end(self, window: PartitionWindow) -> None:
        for link in window.links():
            count = self._active.get(link, 0) - 1
            if count <= 0:
                self._active.pop(link, None)
                self.network.heal(*link, bidirectional=False)
            else:
                self._active[link] = count
