"""The reliable, per-channel FIFO message layer.

Section 3 of the paper assumes "only local memory accesses and reliable,
ordered message passing between any two processors".  This module provides
exactly that contract on top of the simulation kernel:

* **Reliable** — every sent message is delivered (unless a test explicitly
  injects a partition or drop via :mod:`repro.sim.faults`).
* **Ordered** — per directed pair (src, dst), messages are delivered in send
  order.  The network enforces this by clamping each delivery time to be no
  earlier than the previous delivery on the same channel, even under jittery
  latency models.

Nodes are integers.  Each node registers a single handler; protocol engines
dispatch internally on the message's ``kind``.

Every send is charged a deterministic wire cost (bytes and writestamp
entries, per :mod:`repro.protocols.wire`) which accumulates in
:attr:`Network.stats` per kind and per directed edge.  Installing a
:class:`~repro.protocols.wire.WireCodec` additionally delta-encodes the
vector-clock fields per channel; the network tells the codec about every
loss (drop, partition, crash) so it can fall back to full stamps.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Set, Tuple

from repro.errors import NetworkError
from repro.sim.kernel import Simulator
from repro.sim.latency import ConstantLatency, LatencyModel
from repro.sim.trace import MessageRecord, MessageTrace, NetworkStats

__all__ = ["Network", "Delivery"]

Handler = Callable[[int, object], None]


class Delivery:
    """One prepared message delivery: the kernel event's payload record.

    ``_prepare`` allocates exactly one of these per accepted message; the
    kernel then dispatches it through the single bound method
    :meth:`Network._deliver` (``callback(arg)``), replacing the closure +
    cell pair the old per-message lambdas allocated.
    """

    __slots__ = ("deliver_at", "src", "dst", "payload", "kind")

    def __init__(self, deliver_at, src, dst, payload, kind):
        self.deliver_at = deliver_at
        self.src = src
        self.dst = dst
        self.payload = payload
        self.kind = kind

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Delivery(t={self.deliver_at!r}, {self.src}->{self.dst}, "
            f"kind={self.kind!r})"
        )


class Network:
    """Connects protocol engines with reliable FIFO channels.

    Parameters
    ----------
    sim:
        The simulation kernel supplying time and the RNG.
    latency:
        Delay model; defaults to :class:`ConstantLatency` (1 time unit).
    trace_messages:
        If True, keep a full :class:`MessageTrace` (tests and examples);
        counters in :attr:`stats` are always maintained.
    """

    def __init__(
        self,
        sim: Simulator,
        latency: Optional[LatencyModel] = None,
        trace_messages: bool = False,
        send_service_time: float = 0.0,
        codec: Optional[object] = None,
        batch_delivery: bool = False,
    ):
        if send_service_time < 0:
            raise NetworkError(
                f"service time must be non-negative, got {send_service_time}"
            )
        # Imported here, not at module level: repro.protocols.base imports
        # repro.sim, so a module-level import of the wire model would be
        # circular.  Networks are built long after both packages load.
        from repro.protocols.wire import WireCodec, cost_table, fast_cost

        if codec is not None and not isinstance(codec, WireCodec):
            raise NetworkError(f"codec must be a WireCodec, got {codec!r}")
        self._measure = fast_cost
        self._cost_table = cost_table()
        self.codec = codec
        self.sim = sim
        self.latency = latency or ConstantLatency(1.0)
        #: Per-sender transmit serialization: each outgoing message
        #: occupies the sender's interface for this long, modelling
        #: bounded NIC bandwidth.  0 (default) = infinite bandwidth,
        #: which is the paper's counting model.
        self.send_service_time = send_service_time
        self._sender_busy_until: Dict[int, float] = {}
        self.stats = NetworkStats()
        self.trace = MessageTrace(enabled=trace_messages)
        self._handlers: Dict[int, Handler] = {}
        self._last_delivery: Dict[Tuple[int, int], float] = {}
        self._partitioned: Set[Tuple[int, int]] = set()
        self._crashed: Set[int] = set()
        self._drop_rate: float = 0.0
        #: True iff any partition/crash/drop-rate is configured.  The
        #: per-message fast path tests this one flag instead of three
        #: structures; every fault mutator recomputes it.
        self._faults_active = False
        self._seq = 0
        self._rng = sim.derived_rng("network")
        #: When True, :meth:`send_fanout` groups a fan-out's same-instant
        #: deliveries into one kernel heap entry (event-order equivalent
        #: to individual sends; see :meth:`send_fanout`).
        self.batch_delivery = batch_delivery
        #: Attached TraceCollector, or None (all emits are guarded).
        self.obs = None

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def register(self, node_id: int, handler: Handler) -> None:
        """Attach the message handler for ``node_id``."""
        if node_id in self._handlers:
            raise NetworkError(f"node {node_id} registered twice")
        self._handlers[node_id] = handler

    @property
    def node_ids(self) -> list[int]:
        """All registered node ids, sorted."""
        return sorted(self._handlers)

    # ------------------------------------------------------------------
    # Fault injection (test instrument; the paper assumes a reliable net)
    # ------------------------------------------------------------------
    def partition(self, src: int, dst: int, bidirectional: bool = True) -> None:
        """Silently drop messages on the given link(s)."""
        self._partitioned.add((src, dst))
        if bidirectional:
            self._partitioned.add((dst, src))
        self._refresh_faults_flag()
        if self.obs is not None:
            self.obs.emit(
                "fault", "partition.open",
                src=src, dst=dst, bidirectional=bidirectional,
            )

    def heal(self, src: int, dst: int, bidirectional: bool = True) -> None:
        """Undo :meth:`partition` for the given link(s)."""
        self._partitioned.discard((src, dst))
        if bidirectional:
            self._partitioned.discard((dst, src))
        self._refresh_faults_flag()
        if self.obs is not None:
            self.obs.emit(
                "fault", "partition.close",
                src=src, dst=dst, bidirectional=bidirectional,
            )

    def heal_all(self) -> None:
        """Remove every partition and crash."""
        self._partitioned.clear()
        self._crashed.clear()
        self._refresh_faults_flag()
        if self.obs is not None:
            self.obs.emit("fault", "heal_all")

    def crash(self, node_id: int) -> None:
        """Drop all messages to and from ``node_id``."""
        self._crashed.add(node_id)
        self._refresh_faults_flag()
        if self.codec is not None:
            # In-flight messages to the node will be lost on arrival;
            # restart every affected delta chain from a full stamp.
            self.codec.mark_node_dirty(node_id)
        if self.obs is not None:
            self.obs.emit("fault", "crash", node=node_id)

    def set_drop_rate(self, rate: float) -> None:
        """Drop each message independently with probability ``rate``."""
        if not 0.0 <= rate <= 1.0:
            raise NetworkError(f"drop rate must be in [0, 1], got {rate}")
        self._drop_rate = rate
        self._refresh_faults_flag()
        if self.obs is not None:
            self.obs.emit("fault", "drop_rate", rate=rate)

    def _refresh_faults_flag(self) -> None:
        self._faults_active = bool(
            self._partitioned or self._crashed or self._drop_rate > 0.0
        )

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, src: int, dst: int, message: object) -> None:
        """Send ``message`` from ``src`` to ``dst``.

        The message object must expose a ``kind`` attribute (a short string)
        used for counting; protocol message dataclasses all do.

        ``send`` is exactly the single-destination case of
        :meth:`send_fanout`: both run one :meth:`_prepare` per message and
        hand the resulting :class:`Delivery` record to :meth:`_dispatch`.
        """
        delivery = self._prepare(src, dst, message)
        if delivery is not None:
            self._dispatch(delivery)

    def _dispatch(self, delivery: Delivery) -> None:
        """Schedule one prepared delivery as an arg-carrying kernel event."""
        self.sim.schedule_at(
            delivery.deliver_at,
            self._deliver,
            tag=("deliver", delivery.src, delivery.dst, delivery.kind),
            arg=delivery,
        )

    def send_fanout(self, src: int, dsts, message: object) -> None:
        """Send one message to several destinations (a broadcast fan-out).

        Semantically identical to ``send`` in destination order.  With
        :attr:`batch_delivery` enabled, deliveries landing at the same
        instant are scheduled as ONE kernel heap entry
        (:meth:`~repro.sim.kernel.Simulator.schedule_fanout_at`), which
        amortises heap churn and trace emission across the group.

        Event-order equivalence: individually scheduled fan-out events
        carry consecutive sequence numbers, so no foreign same-time event
        can pop between them; running them back-to-back inside one entry
        executes the identical global callback order.  Deliveries clamped
        to distinct times (per-channel FIFO floors) stay separate events.
        """
        groups: Dict[float, list] = {}
        for dst in dsts:
            delivery = self._prepare(src, dst, message)
            if delivery is not None:
                groups.setdefault(delivery.deliver_at, []).append(delivery)
        for deliver_at, group in groups.items():
            if self.batch_delivery and len(group) > 1:
                self.sim.schedule_fanout_at(
                    deliver_at,
                    self._deliver,
                    group,
                    tag=(
                        "deliver_batch", src,
                        tuple(d.dst for d in group), group[0].kind,
                    ),
                )
            else:
                for delivery in group:
                    self._dispatch(delivery)

    def _reject_endpoints(self, src: int, dst: int) -> None:
        """Cold path: diagnose an invalid (src, dst) pair and raise."""
        if dst not in self._handlers:
            raise NetworkError(f"message to unregistered node {dst}")
        if src not in self._handlers:
            raise NetworkError(f"message from unregistered node {src}")
        raise NetworkError("a node may not message itself; use local state")

    def _prepare(self, src: int, dst: int, message: object):
        """Account, encode, and time one message; returns the prepared
        :class:`Delivery` or None when the message drops."""
        handlers = self._handlers
        if src == dst or dst not in handlers or src not in handlers:
            self._reject_endpoints(src, dst)

        try:
            kind = message.kind
        except AttributeError:
            kind = type(message).__name__
        self._seq += 1
        seq = self._seq
        now = self.sim.now

        dropped = self._faults_active and (
            (src, dst) in self._partitioned
            or src in self._crashed
            or dst in self._crashed
            or (self._drop_rate > 0.0 and self._rng.random() < self._drop_rate)
        )
        if dropped:
            if self.codec is not None:
                # The receiver will never see this message, so the delta
                # basis diverges: restart the chain from a full stamp.
                self.codec.mark_dirty(src, dst)
            # Dropped sends still consumed the sender's bandwidth: charge
            # the undeltaed wire cost (the codec never saw the message,
            # so no delta basis advanced).
            cost_fn = self._cost_table.get(type(message))
            if cost_fn is not None:
                nbytes, stamp_entries = cost_fn(message)
            else:
                nbytes, stamp_entries = self._measure(message)
            record = MessageRecord(
                seq=seq, src=src, dst=dst, kind=kind, payload=message,
                sent_at=now, delivered_at=float("inf"), dropped=True,
                byte_size=nbytes, stamp_entries=stamp_entries,
            )
            self.stats.record(record)
            self.trace.record(record)
            if self.obs is not None:
                self.obs.emit(
                    "net", "drop", node=src,
                    kind=kind, src=src, dst=dst, bytes=nbytes,
                )
            return None

        if self.codec is not None:
            frame = self.codec.encode(src, dst, message)
            payload: object = frame
            nbytes = frame.byte_size
            stamp_entries = frame.stamp_entries
            stamp_entries_full = frame.stamp_entries_full
        else:
            payload = message
            cost_fn = self._cost_table.get(type(message))
            if cost_fn is not None:
                nbytes, stamp_entries = cost_fn(message)
            else:
                nbytes, stamp_entries = self._measure(message)
            stamp_entries_full = stamp_entries

        delay = self.latency.delay(src, dst, self._rng)
        if delay < 0:
            raise NetworkError(f"latency model produced negative delay {delay}")
        transmit_at = now
        service = self.send_service_time
        if service > 0:
            transmit_at = max(now, self._sender_busy_until.get(src, 0.0))
            self._sender_busy_until[src] = transmit_at + service
            transmit_at += service
        deliver_at = transmit_at + delay
        # FIFO clamp: never deliver before an earlier message on the channel.
        channel = (src, dst)
        last = self._last_delivery
        floor = last.get(channel)
        if floor is not None and floor > deliver_at:
            deliver_at = floor
        last[channel] = deliver_at

        self.stats.count_sent(
            kind, src, dst, deliver_at - now,
            byte_size=nbytes,
            stamp_entries=stamp_entries,
            stamp_entries_full=stamp_entries_full,
        )
        if self.trace.enabled:
            # The full MessageRecord is only materialised when someone is
            # listening — construction dominates `send` otherwise.
            self.trace.record(MessageRecord(
                seq=seq, src=src, dst=dst, kind=kind, payload=message,
                sent_at=now, delivered_at=deliver_at, dropped=False,
                byte_size=nbytes, stamp_entries=stamp_entries,
            ))
        if self.obs is not None:
            # The flight is a span: ts = send time, dur = time on the wire.
            self.obs.emit(
                "net", "send", node=src, dur=deliver_at - now,
                kind=kind, src=src, dst=dst, bytes=nbytes,
            )
        return Delivery(deliver_at, src, dst, payload, kind)

    def _deliver(self, delivery: Delivery) -> None:
        src = delivery.src
        dst = delivery.dst
        payload = delivery.payload
        if self._crashed and dst in self._crashed:
            # Crashed after send; message lost on arrival.  The receiver's
            # delta basis never advanced, so the channel must resync.
            if self.codec is not None:
                self.codec.mark_dirty(src, dst)
            if self.obs is not None:
                self.obs.emit(
                    "net", "drop_on_arrival", node=dst,
                    kind=delivery.kind, src=src, dst=dst,
                )
            return
        if self.codec is not None:
            payload = self.codec.decode(src, dst, payload)
        if self.obs is not None:
            self.obs.emit(
                "net", "deliver", node=dst,
                kind=delivery.kind, src=src, dst=dst,
            )
        self._handlers[dst](src, payload)
