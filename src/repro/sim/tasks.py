"""Futures and generator-based processes for the simulator.

The paper's memory operations *block*: a read miss "blocks until a reply is
received" and a non-owned write "blocks until a reply is received and the
write is certified" (Section 3.1).  We model each application process as a
Python generator that yields :class:`Future` objects; the process is
suspended until the future resolves, exactly mirroring the blocking in the
paper while keeping the whole simulation single-threaded and deterministic.

A process may yield:

* a :class:`Future` — suspend until it resolves, receive its value;
* ``None`` — cooperative yield: resume after all currently pending events
  at the same simulated time (used by busy-wait loops).

Sub-procedures compose with ``yield from``: a helper generator's ``return``
value becomes the value of the ``yield from`` expression.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Iterable, Optional

from repro.errors import DeadlockError, SimulationError
from repro.sim.kernel import Simulator

__all__ = ["Future", "Task", "TaskScheduler", "sleep", "gather"]

_PENDING = "pending"
_RESOLVED = "resolved"
_FAILED = "failed"

# Type alias for process bodies.
ProcessGen = Generator[Any, Any, Any]


class Future:
    """A one-shot container for a value produced later in simulated time.

    Futures are resolved exactly once (via :meth:`resolve` or :meth:`fail`);
    callbacks registered with :meth:`add_done_callback` run synchronously at
    resolution time, in registration order.
    """

    __slots__ = ("_state", "_value", "_exc", "_callbacks", "label")

    def __init__(self, label: str = ""):
        self._state = _PENDING
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self._callbacks: list[Callable[["Future"], None]] = []
        self.label = label

    # -- state ----------------------------------------------------------
    @property
    def resolved(self) -> bool:
        """True once the future has a value or an exception."""
        return self._state != _PENDING

    @property
    def failed(self) -> bool:
        """True if the future carries an exception."""
        return self._state == _FAILED

    def result(self) -> Any:
        """The resolved value; raises the stored exception on failure."""
        if self._state == _PENDING:
            raise SimulationError(f"future {self.label!r} is not resolved yet")
        if self._state == _FAILED:
            assert self._exc is not None
            raise self._exc
        return self._value

    def exception(self) -> Optional[BaseException]:
        """The stored exception, or None."""
        return self._exc

    # -- resolution -------------------------------------------------------
    def resolve(self, value: Any = None) -> None:
        """Deliver ``value`` and run callbacks."""
        if self._state != _PENDING:
            raise SimulationError(f"future {self.label!r} resolved twice")
        self._state = _RESOLVED
        self._value = value
        self._run_callbacks()

    def fail(self, exc: BaseException) -> None:
        """Deliver an exception and run callbacks."""
        if self._state != _PENDING:
            raise SimulationError(f"future {self.label!r} resolved twice")
        self._state = _FAILED
        self._exc = exc
        self._run_callbacks()

    def add_done_callback(self, callback: Callable[["Future"], None]) -> None:
        """Run ``callback(self)`` at resolution (immediately if resolved)."""
        if self.resolved:
            callback(self)
        else:
            self._callbacks.append(callback)

    def _run_callbacks(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Future {self.label!r} {self._state}>"


class Task(Future):
    """A running process: a generator driven by a :class:`TaskScheduler`.

    A task is itself a future that resolves with the generator's return
    value, so tasks can wait on each other (``result = yield other_task``).
    """

    __slots__ = ("_scheduler", "_gen", "name", "_finished_hook", "_tag")

    def __init__(self, scheduler: "TaskScheduler", gen: ProcessGen, name: str):
        super().__init__(label=f"task:{name}")
        self._scheduler = scheduler
        self._gen = gen
        self.name = name
        # Every resume event shares this one tag tuple; the kernel's
        # arg-carrying events let ``_step`` itself be the callback, so a
        # resume allocates no closure.
        self._tag = ("task", name)

    def kill(self) -> None:
        """Terminate the task (used by fault-injection tests)."""
        if self.resolved:
            return
        self._gen.close()
        self.fail(SimulationError(f"task {self.name!r} was killed"))

    # -- driving the generator -------------------------------------------
    def _step(self, value: Any = None, exc: Optional[BaseException] = None) -> None:
        if self.resolved:
            return
        try:
            if exc is not None:
                yielded = self._gen.throw(exc)
            else:
                yielded = self._gen.send(value)
        except StopIteration as stop:
            self.resolve(stop.value)
            return
        except BaseException as error:  # noqa: BLE001 - propagate via future
            self.fail(error)
            return
        self._handle_yield(yielded)

    def _handle_yield(self, yielded: Any) -> None:
        sim = self._scheduler.sim
        if yielded is None:
            sim.call_soon(self._step, tag=self._tag, arg=None)
            return
        if isinstance(yielded, Future):
            yielded.add_done_callback(self._on_future_done)
            return
        self._step(
            exc=SimulationError(
                f"task {self.name!r} yielded {yielded!r}; expected Future or None"
            )
        )

    def _on_future_done(self, future: Future) -> None:
        # Resume on a fresh event so the resuming code never runs inside a
        # message handler (handlers must be atomic, per Section 3.1).
        sim = self._scheduler.sim
        if future.failed:
            exc = future.exception()
            assert exc is not None
            sim.call_soon(lambda: self._step(exc=exc), tag=self._tag)
        else:
            sim.call_soon(self._step, tag=self._tag, arg=future.result())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.resolved else "running"
        return f"<Task {self.name!r} {state}>"


class TaskScheduler:
    """Creates and tracks :class:`Task` processes on a simulator."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.tasks: list[Task] = []

    def spawn(self, gen: ProcessGen, name: str = "") -> Task:
        """Start a process; its first step runs as a fresh event 'now'."""
        if not name:
            name = f"task-{len(self.tasks)}"
        task = Task(self, gen, name)
        self.tasks.append(task)
        self.sim.call_soon(task._step, tag=task._tag, arg=None)
        return task

    # -- bookkeeping -------------------------------------------------------
    def unfinished(self) -> list[Task]:
        """Tasks that have not yet resolved."""
        return [task for task in self.tasks if not task.resolved]

    def run_all(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        check_deadlock: bool = True,
    ) -> None:
        """Run the simulator; optionally raise if tasks remain blocked.

        Raises
        ------
        DeadlockError
            If the event queue drained while tasks are still suspended —
            the simulation analogue of a distributed deadlock.
        """
        self.sim.run(until=until, max_events=max_events)
        self.raise_failures()
        if check_deadlock and until is None:
            blocked = self.unfinished()
            if blocked:
                raise DeadlockError([task.name for task in blocked])

    def raise_failures(self) -> None:
        """Re-raise the first exception stored in any finished task."""
        for task in self.tasks:
            if task.resolved and task.failed:
                exc = task.exception()
                assert exc is not None
                raise exc


def sleep(sim: Simulator, duration: float) -> Future:
    """A future that resolves ``duration`` time units from now."""
    future = Future(label=f"sleep:{duration}")
    sim.schedule(
        duration, lambda: future.resolve(None), tag=("sleep", duration)
    )
    return future


def gather(futures: Iterable[Future]) -> Future:
    """A future resolving with the list of results of ``futures``.

    Fails as soon as any input fails (remaining results are discarded).
    """
    futures = list(futures)
    combined = Future(label=f"gather:{len(futures)}")
    if not futures:
        combined.resolve([])
        return combined
    remaining = [len(futures)]

    def on_done(_: Future) -> None:
        if combined.resolved:
            return
        remaining[0] -= 1
        failures = [f for f in futures if f.resolved and f.failed]
        if failures:
            exc = failures[0].exception()
            assert exc is not None
            combined.fail(exc)
        elif remaining[0] == 0:
            combined.resolve([f.result() for f in futures])

    for future in futures:
        future.add_done_callback(on_done)
    return combined
