"""Deterministic message-latency models.

The paper's arguments are about message *counts* and *orderings*, not about
absolute latency; latency models exist so that executions exhibit realistic
interleavings (concurrent writes racing to an owner, replies overtaking
nothing thanks to FIFO clamping in the network layer) and so that blocking
time can be reported alongside message counts.

All models draw randomness from an RNG owned by the :class:`Network`, keeping
simulations reproducible.
"""

from __future__ import annotations

import random
from typing import Dict, Tuple

from repro.errors import NetworkError

__all__ = [
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
    "JitteredLatency",
    "PerLinkLatency",
]


class LatencyModel:
    """Base class: maps (src, dst, rng) to a one-way message delay."""

    def delay(self, src: int, dst: int, rng: random.Random) -> float:
        """Return the delay for one message from ``src`` to ``dst``."""
        raise NotImplementedError

    def describe(self) -> str:
        """Human-readable summary used in experiment reports."""
        return type(self).__name__


class ConstantLatency(LatencyModel):
    """Every message takes exactly ``value`` time units.

    The default for message-counting experiments: with constant latency the
    execution is fully determined by the protocol, making counts exact.
    """

    def __init__(self, value: float = 1.0):
        if value < 0:
            raise NetworkError(f"latency must be non-negative, got {value}")
        self.value = value

    def delay(self, src: int, dst: int, rng: random.Random) -> float:
        return self.value

    def describe(self) -> str:
        return f"constant({self.value})"


class UniformLatency(LatencyModel):
    """Delay drawn uniformly from ``[low, high]``."""

    def __init__(self, low: float = 0.5, high: float = 1.5):
        if not 0 <= low <= high:
            raise NetworkError(f"invalid latency range [{low}, {high}]")
        self.low = low
        self.high = high

    def delay(self, src: int, dst: int, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)

    def describe(self) -> str:
        return f"uniform({self.low}, {self.high})"


class JitteredLatency(LatencyModel):
    """A base delay plus exponentially distributed jitter.

    A reasonable stand-in for a lightly loaded LAN of the paper's era: most
    messages near the base latency, occasional stragglers.
    """

    def __init__(self, base: float = 1.0, jitter_mean: float = 0.2):
        if base < 0 or jitter_mean < 0:
            raise NetworkError("base and jitter_mean must be non-negative")
        self.base = base
        self.jitter_mean = jitter_mean

    def delay(self, src: int, dst: int, rng: random.Random) -> float:
        if self.jitter_mean == 0:
            return self.base
        return self.base + rng.expovariate(1.0 / self.jitter_mean)

    def describe(self) -> str:
        return f"jittered(base={self.base}, jitter={self.jitter_mean})"


class PerLinkLatency(LatencyModel):
    """Explicit per-(src, dst) delays, e.g. to model a far-away node.

    Unlisted links fall back to ``default``.  Used by tests that need a
    particular interleaving (for example forcing the Figure 3 broadcast
    anomaly by making one link slow).
    """

    def __init__(self, default: float = 1.0, links: Dict[Tuple[int, int], float] | None = None):
        self.default = default
        self.links = dict(links or {})

    def delay(self, src: int, dst: int, rng: random.Random) -> float:
        return self.links.get((src, dst), self.default)

    def set_link(self, src: int, dst: int, value: float) -> None:
        """Override the delay of one directed link."""
        self.links[(src, dst)] = value

    def describe(self) -> str:
        return f"per-link(default={self.default}, overrides={len(self.links)})"
