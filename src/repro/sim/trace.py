"""Message tracing and counting.

The quantitative heart of the paper is a message-counting argument
(Section 4.1): the synchronous linear solver costs ``2n + 6`` messages per
processor per iteration on causal memory versus at least ``3n + 5`` on a
comparable atomic DSM.  This module is the measurement instrument: every
message the network delivers is recorded with its type, endpoints and
timestamps, and counters can be snapshotted so harnesses can attribute
messages to intervals (e.g. per solver iteration).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["MessageRecord", "NetworkStats", "MessageTrace", "CounterSnapshot"]


@dataclass(frozen=True)
class MessageRecord:
    """One delivered (or dropped) message."""

    seq: int
    src: int
    dst: int
    kind: str
    payload: object
    sent_at: float
    delivered_at: float
    dropped: bool = False

    @property
    def latency(self) -> float:
        """One-way delay experienced by this message."""
        return self.delivered_at - self.sent_at


@dataclass(frozen=True)
class CounterSnapshot:
    """Immutable copy of the counters at a moment in simulated time."""

    time: float
    total: int
    by_kind: Dict[str, int]
    by_sender: Dict[int, int]
    by_receiver: Dict[int, int]

    def delta(self, earlier: "CounterSnapshot") -> "CounterSnapshot":
        """Counters accumulated strictly after ``earlier``."""
        return CounterSnapshot(
            time=self.time,
            total=self.total - earlier.total,
            by_kind=_sub(self.by_kind, earlier.by_kind),
            by_sender=_sub(self.by_sender, earlier.by_sender),
            by_receiver=_sub(self.by_receiver, earlier.by_receiver),
        )


def _sub(new: Dict, old: Dict) -> Dict:
    out = dict(new)
    for key, value in old.items():
        out[key] = out.get(key, 0) - value
        if out[key] == 0:
            del out[key]
    return out


class NetworkStats:
    """Running counters over all messages sent through a network."""

    def __init__(self) -> None:
        self.total = 0
        self.dropped = 0
        self.by_kind: Counter = Counter()
        self.by_sender: Counter = Counter()
        self.by_receiver: Counter = Counter()
        self.by_pair: Counter = Counter()
        self.total_latency = 0.0

    def record(self, record: MessageRecord) -> None:
        """Account for one message."""
        if record.dropped:
            self.dropped += 1
            return
        self.count_sent(record.kind, record.src, record.dst, record.latency)

    def count_sent(self, kind: str, src: int, dst: int, latency: float) -> None:
        """Account for one delivered message without a MessageRecord.

        The network's hot path calls this directly so it does not have to
        materialise a record when tracing is disabled.
        """
        self.total += 1
        self.by_kind[kind] += 1
        self.by_sender[src] += 1
        self.by_receiver[dst] += 1
        self.by_pair[(src, dst)] += 1
        self.total_latency += latency

    @property
    def mean_latency(self) -> float:
        """Mean one-way delay over delivered messages (0 if none)."""
        return self.total_latency / self.total if self.total else 0.0

    def snapshot(self, time: float) -> CounterSnapshot:
        """Copy the counters, tagged with the current simulated time."""
        return CounterSnapshot(
            time=time,
            total=self.total,
            by_kind=dict(self.by_kind),
            by_sender=dict(self.by_sender),
            by_receiver=dict(self.by_receiver),
        )

    def count(self, kind: Optional[str] = None) -> int:
        """Messages of ``kind`` (all kinds if None)."""
        if kind is None:
            return self.total
        return self.by_kind.get(kind, 0)


class MessageTrace:
    """Optional full per-message log.

    Disabled by default in long benchmark runs (counters alone suffice);
    tests enable it to assert on exact message sequences.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.records: List[MessageRecord] = []

    def record(self, record: MessageRecord) -> None:
        """Append one record if tracing is enabled."""
        if self.enabled:
            self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def of_kind(self, kind: str) -> List[MessageRecord]:
        """All records with the given message kind."""
        return [r for r in self.records if r.kind == kind]

    def between(self, src: int, dst: int) -> List[MessageRecord]:
        """All records sent from ``src`` to ``dst``, in send order."""
        return [r for r in self.records if r.src == src and r.dst == dst]

    def kinds(self) -> List[str]:
        """Distinct message kinds seen, in first-seen order."""
        seen: Dict[str, None] = {}
        for record in self.records:
            seen.setdefault(record.kind, None)
        return list(seen)

    def summarize(self) -> str:
        """A short human-readable summary (used by examples)."""
        counts = Counter(r.kind for r in self.records if not r.dropped)
        parts = [f"{kind}={count}" for kind, count in sorted(counts.items())]
        return f"{sum(counts.values())} messages ({', '.join(parts)})"


def per_node_counts(stats: NetworkStats, node_ids: Iterable[int]) -> Dict[int, int]:
    """Messages *sent* per node, including zeros for silent nodes."""
    return {node: stats.by_sender.get(node, 0) for node in node_ids}
