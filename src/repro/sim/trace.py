"""Message tracing and counting.

The quantitative heart of the paper is a message-counting argument
(Section 4.1): the synchronous linear solver costs ``2n + 6`` messages per
processor per iteration on causal memory versus at least ``3n + 5`` on a
comparable atomic DSM.  This module is the measurement instrument: every
message the network delivers is recorded with its type, endpoints and
timestamps, and counters can be snapshotted so harnesses can attribute
messages to intervals (e.g. per solver iteration).

Beyond counts, the stats track *bytes* and *writestamp entries* per kind
and per directed edge, using the deterministic cost model of
:mod:`repro.protocols.wire` — size, not count, is the real metadata cost
axis for causal DSM, and the delta-stamp / batching fast path is judged
on these byte counters.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["MessageRecord", "NetworkStats", "MessageTrace", "CounterSnapshot"]


@dataclass(frozen=True)
class MessageRecord:
    """One delivered (or dropped) message.

    ``byte_size`` and ``stamp_entries`` are the wire-model costs charged
    when the message was sent (0 for records predating byte accounting).
    """

    seq: int
    src: int
    dst: int
    kind: str
    payload: object
    sent_at: float
    delivered_at: float
    dropped: bool = False
    byte_size: int = 0
    stamp_entries: int = 0

    @property
    def latency(self) -> float:
        """One-way delay experienced by this message.

        ``nan`` for dropped records: a dropped message was never
        delivered, so no finite (or infinite) latency is meaningful, and
        ``nan`` poisons any mean computed over it instead of silently
        skewing it the way ``delivered_at=inf`` used to.
        """
        if self.dropped:
            return float("nan")
        return self.delivered_at - self.sent_at


@dataclass(frozen=True)
class CounterSnapshot:
    """Immutable copy of the counters at a moment in simulated time."""

    time: float
    total: int
    by_kind: Dict[str, int]
    by_sender: Dict[int, int]
    by_receiver: Dict[int, int]
    bytes_total: int = 0
    stamp_entries: int = 0
    #: Optional caller-supplied tag (e.g. ``"iteration=3"``) so interval
    #: deltas can be attributed without index arithmetic.
    label: Optional[str] = None

    def delta(self, earlier: "CounterSnapshot") -> "CounterSnapshot":
        """Counters accumulated strictly after ``earlier``.

        The delta keeps *this* snapshot's label — the interval is named
        after the moment that closed it.
        """
        return CounterSnapshot(
            time=self.time,
            total=self.total - earlier.total,
            by_kind=_sub(self.by_kind, earlier.by_kind),
            by_sender=_sub(self.by_sender, earlier.by_sender),
            by_receiver=_sub(self.by_receiver, earlier.by_receiver),
            bytes_total=self.bytes_total - earlier.bytes_total,
            stamp_entries=self.stamp_entries - earlier.stamp_entries,
            label=self.label,
        )


def _sub(new: Dict, old: Dict) -> Dict:
    out = dict(new)
    for key, value in old.items():
        out[key] = out.get(key, 0) - value
        if out[key] == 0:
            del out[key]
    return out


class NetworkStats:
    """Running counters over all messages sent through a network.

    The hot path (:meth:`count_sent`, called on every delivered message)
    touches exactly one dict record keyed ``(kind, src, dst)`` holding
    ``[count, bytes, stamp_entries, stamp_entries_full]``.  Every
    per-kind / per-node / per-pair view (`by_kind`, `bytes_by_pair`, ...)
    is derived from those records on access — analysis-time cost for
    send-time speed.
    """

    def __init__(self) -> None:
        self.total = 0
        self.dropped = 0
        self.dropped_bytes = 0
        self.total_latency = 0.0
        # (kind, src, dst) -> [count, bytes, stamp_entries, entries_full]
        self._edges: Dict[Tuple[str, int, int], List] = {}

    def record(self, record: MessageRecord) -> None:
        """Account for one message."""
        if record.dropped:
            self.dropped += 1
            self.dropped_bytes += record.byte_size
            return
        self.count_sent(
            record.kind, record.src, record.dst, record.latency,
            byte_size=record.byte_size, stamp_entries=record.stamp_entries,
            stamp_entries_full=record.stamp_entries,
        )

    def count_sent(
        self,
        kind: str,
        src: int,
        dst: int,
        latency: float,
        byte_size: int = 0,
        stamp_entries: int = 0,
        stamp_entries_full: int = 0,
    ) -> None:
        """Account for one delivered message without a MessageRecord.

        The network's hot path calls this directly so it does not have to
        materialise a record when tracing is disabled.
        """
        self.total += 1
        self.total_latency += latency
        edge = self._edges.get((kind, src, dst))
        if edge is None:
            self._edges[(kind, src, dst)] = [
                1, byte_size, stamp_entries, stamp_entries_full,
            ]
        else:
            edge[0] += 1
            edge[1] += byte_size
            edge[2] += stamp_entries
            edge[3] += stamp_entries_full

    # -- derived views (analysis-time, not hot) ------------------------
    def _sum_by(self, key_index: int, value_index: int) -> Counter:
        out: Counter = Counter()
        for key, edge in self._edges.items():
            out[key[key_index]] += edge[value_index]
        return out

    @property
    def by_kind(self) -> Counter:
        """Delivered messages per kind."""
        return self._sum_by(0, 0)

    @property
    def by_sender(self) -> Counter:
        """Delivered messages per sending node."""
        return self._sum_by(1, 0)

    @property
    def by_receiver(self) -> Counter:
        """Delivered messages per receiving node."""
        return self._sum_by(2, 0)

    @property
    def by_pair(self) -> Counter:
        """Delivered messages per directed (src, dst) edge."""
        out: Counter = Counter()
        for (_, src, dst), edge in self._edges.items():
            out[(src, dst)] += edge[0]
        return out

    @property
    def bytes_total(self) -> int:
        """Total wire bytes over all delivered messages."""
        return sum(edge[1] for edge in self._edges.values())

    @property
    def bytes_by_kind(self) -> Counter:
        """Wire bytes per message kind."""
        return self._sum_by(0, 1)

    @property
    def bytes_by_pair(self) -> Counter:
        """Wire bytes per directed (src, dst) edge."""
        out: Counter = Counter()
        for (_, src, dst), edge in self._edges.items():
            out[(src, dst)] += edge[1]
        return out

    @property
    def stamp_entries(self) -> int:
        """Writestamp entries physically carried on the wire."""
        return sum(edge[2] for edge in self._edges.values())

    @property
    def stamp_entries_full(self) -> int:
        """Entries the same messages would carry with full stamps."""
        return sum(edge[3] for edge in self._edges.values())

    @property
    def mean_latency(self) -> float:
        """Mean one-way delay over delivered messages (0 if none)."""
        return self.total_latency / self.total if self.total else 0.0

    @property
    def mean_bytes(self) -> float:
        """Mean wire size over delivered messages (0 if none)."""
        return self.bytes_total / self.total if self.total else 0.0

    @property
    def stamp_entries_saved(self) -> int:
        """Writestamp entries elided by delta encoding."""
        return self.stamp_entries_full - self.stamp_entries

    def bytes_of(self, kind: Optional[str] = None) -> int:
        """Bytes of ``kind`` (all kinds if None)."""
        if kind is None:
            return self.bytes_total
        return self.bytes_by_kind.get(kind, 0)

    def snapshot(self, time: float, label: Optional[str] = None) -> CounterSnapshot:
        """Copy the counters, tagged with the simulated time and a label."""
        return CounterSnapshot(
            time=time,
            total=self.total,
            by_kind=dict(self.by_kind),
            by_sender=dict(self.by_sender),
            by_receiver=dict(self.by_receiver),
            bytes_total=self.bytes_total,
            stamp_entries=self.stamp_entries,
            label=label,
        )

    def count(self, kind: Optional[str] = None) -> int:
        """Messages of ``kind`` (all kinds if None)."""
        if kind is None:
            return self.total
        return self.by_kind.get(kind, 0)


class MessageTrace:
    """Optional full per-message log.

    Disabled by default in long benchmark runs (counters alone suffice);
    tests enable it to assert on exact message sequences.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.records: List[MessageRecord] = []

    def record(self, record: MessageRecord) -> None:
        """Append one record if tracing is enabled."""
        if self.enabled:
            self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def of_kind(self, kind: str) -> List[MessageRecord]:
        """All records with the given message kind."""
        return [r for r in self.records if r.kind == kind]

    def between(self, src: int, dst: int) -> List[MessageRecord]:
        """All records sent from ``src`` to ``dst``, in send order."""
        return [r for r in self.records if r.src == src and r.dst == dst]

    def kinds(self) -> List[str]:
        """Distinct message kinds seen, in first-seen order."""
        seen: Dict[str, None] = {}
        for record in self.records:
            seen.setdefault(record.kind, None)
        return list(seen)

    def summarize(self) -> str:
        """A short human-readable summary (used by examples)."""
        counts = Counter(r.kind for r in self.records if not r.dropped)
        parts = [f"{kind}={count}" for kind, count in sorted(counts.items())]
        return f"{sum(counts.values())} messages ({', '.join(parts)})"


def per_node_counts(stats: NetworkStats, node_ids: Iterable[int]) -> Dict[int, int]:
    """Messages *sent* per node, including zeros for silent nodes."""
    return {node: stats.by_sender.get(node, 0) for node in node_ids}
