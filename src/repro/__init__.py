"""repro — a reproduction of *Implementing and Programming Causal
Distributed Shared Memory* (Hutto, Ahamad, John; ICDCS 1991).

The package provides, end to end:

* a deterministic discrete-event simulator with the paper's assumed
  reliable FIFO message layer (:mod:`repro.sim`);
* vector timestamps (:mod:`repro.clocks`);
* the paper's owner protocol for causal DSM plus three comparison
  memories — atomic owner DSM, central server, causal-broadcast memory
  (:mod:`repro.protocols`);
* executable semantics: live sets and the causal-memory correctness
  checker, with sequential-consistency / PRAM / coherence checkers for
  context (:mod:`repro.checker`);
* the paper's applications — synchronous and asynchronous linear
  solvers, the distributed dictionary (:mod:`repro.apps`);
* the message-count analysis and the experiment harness regenerating
  every figure and the Section 4.1 comparison (:mod:`repro.analysis`,
  :mod:`repro.harness`).

Quickstart
----------
>>> from repro import DSMCluster, check_causal
>>> cluster = DSMCluster(n_nodes=2, protocol="causal", seed=1)
>>> def ping(api):
...     yield api.write("x", 1)
...     value = yield api.read("x")
...     return value
>>> task = cluster.spawn(0, ping)
>>> cluster.run()
>>> task.result()
1
>>> check_causal(cluster.history()).ok
True
"""

from repro.checker import (
    CausalOrder,
    History,
    check_causal,
    check_coherence,
    check_pram,
    check_sequential,
    live_set,
    live_values,
)
from repro.clocks import LamportClock, VectorClock
from repro.memory import LocalStore, MemoryEntry, Namespace, location_array
from repro.protocols import (
    DSMCluster,
    DSMNode,
    LastWriterWins,
    OwnerFavoured,
    WriteOutcome,
)
from repro.sim import Network, Simulator

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Simulator",
    "Network",
    "VectorClock",
    "LamportClock",
    "Namespace",
    "location_array",
    "LocalStore",
    "MemoryEntry",
    "DSMCluster",
    "DSMNode",
    "WriteOutcome",
    "LastWriterWins",
    "OwnerFavoured",
    "History",
    "CausalOrder",
    "live_set",
    "live_values",
    "check_causal",
    "check_sequential",
    "check_pram",
    "check_coherence",
]
