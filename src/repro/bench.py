"""``python -m repro.bench`` — the substrate performance runner.

Measures the reproduction's own instruments end-to-end and appends the
numbers to a persistent JSON trajectory (``BENCH_substrate.json``, see
:mod:`repro.analysis.benchjson`):

* **kernel** — discrete-event throughput of :class:`~repro.sim.kernel.Simulator`
  on a self-rescheduling tick chain;
* **protocol** — application operation throughput of the Figure 4 causal
  owner protocol on a mixed read/write workload, at n ∈ {4, 8, 16}
  processors, including invalidation-sweep counters (performed vs
  skipped by the watermark) pulled from every node's
  :class:`~repro.memory.local_store.LocalStore`;
* **checker** — Definition 2 verification throughput of
  :func:`~repro.checker.check_causal` over recorded random executions,
  plus a ``memo`` A/B: the memoised checker
  (:class:`~repro.checker.CachedCausalChecker`) against the unmemoised
  one over an explorer-style corpus of random-schedule histories,
  asserting verdict equality and reporting the speedup and hit rates;
* **bandwidth** — an A/B of the wire-level fast path (schema v2): the
  same mixed workload run on the baseline causal protocol and on the
  batched + delta-stamp configuration, reporting bytes/op, writestamp
  entries/op, batch occupancy, and the relative reductions;
* **obs** — the tracing layer's cost and yield (schema v3): the kernel
  microbench re-run with a :class:`~repro.obs.collector.TraceCollector`
  attached (guard-only and full-emit variants, reported as overhead
  ratios against the detached run), plus the metrics snapshot of a
  traced Figure 4 run — invalidation sweeps per write, read-miss round
  trips, checker cache hit rate;
* **monitor** — the streaming consistency monitor (schema v4): the
  protocol workload run three ways — detached, collector-attached, and
  with a :class:`~repro.monitor.CausalStreamMonitor` subscribed —
  reporting the monitor's sustained events/sec, its marginal overhead
  on an attached run, peak window size, GC retirements and live-set
  cache hit rate.  The monitored run's verdict (must be causal) rides
  along as a correctness canary;
* **substrate.vectorised** — the writestamp-arena A/B (schema v5): the
  numpy :class:`~repro.clocks.arena.ClockArena` against its pure-Python
  twin at clock widths n ∈ {16, 64, 256} (``--substrate-nodes``), both
  at the primitive level (batched strictly-older / dominance masks and
  frontier merges over a 512-slot arena, with mask-equality asserted)
  and end-to-end (the protocol workload under ``arena_backend=python``
  vs ``numpy`` + batch delivery).

``--smoke`` shrinks the workloads so the whole run finishes in a few
seconds — that mode is exercised by the tier-1 test suite, keeping the
runner itself from bit-rotting.  ``--profile`` additionally runs the
largest-n protocol workload once under :mod:`cProfile` and records the
top-N cumulative-time table as ``protocol.profile`` (schema v6), so each
revision's hot-spot ranking is preserved alongside its throughput.

Examples
--------
::

    python -m repro.bench                       # full run, appends
    python -m repro.bench --smoke --label pr2   # quick, labelled
    repro-bench --output BENCH_substrate.json   # console-script form
"""

from __future__ import annotations

import argparse
import sys
import time
from datetime import datetime, timezone
from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.benchjson import BenchRecord, BenchTrajectory
from repro.errors import ReproError

__all__ = [
    "run_suite",
    "profile_protocol",
    "main",
    "DEFAULT_OUTPUT",
    "DEFAULT_NODE_COUNTS",
    "DEFAULT_SUBSTRATE_NODES",
]

DEFAULT_OUTPUT = "BENCH_substrate.json"
DEFAULT_NODE_COUNTS = (4, 8, 16)
#: Clock widths for the vectorised-substrate A/B (schema v5).  Wider
#: than the protocol sweep: the arena's batched compares only pull away
#: from the scalar loops once rows x components is large.
DEFAULT_SUBSTRATE_NODES = (16, 64, 256)


# ----------------------------------------------------------------------
# Individual measurements
# ----------------------------------------------------------------------
def _best_of(func, repeats: int) -> float:
    """Minimum wall-clock seconds of ``func`` over ``repeats`` runs."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - started)
    return best


def _best_of_interleaved(funcs, repeats: int) -> List[float]:
    """Per-variant minimum wall-clock seconds over interleaved rounds.

    Timing each variant in its own block lets slow drift (allocator
    growth, cyclic-GC cadence, frequency scaling) land entirely on the
    later variants and masquerade as overhead — at n=16 the same
    variant's wall time swings ±30% between blocks, swamping a 5%
    ratio.  Cycling through all variants each round exposes every
    variant to the same drift, so best-of ratios compare like with
    like.
    """
    best = [float("inf")] * len(funcs)
    for _ in range(repeats):
        for index, func in enumerate(funcs):
            started = time.perf_counter()
            func()
            best[index] = min(best[index], time.perf_counter() - started)
    return best


def bench_kernel(events: int, repeats: int) -> Dict[str, Any]:
    """Self-rescheduling tick chain through the simulator."""
    from repro.sim.kernel import Simulator

    def run() -> None:
        sim = Simulator()
        count = [0]

        def tick() -> None:
            count[0] += 1
            if count[0] < events:
                sim.schedule(1.0, tick)

        sim.schedule(1.0, tick)
        sim.run()
        assert count[0] == events

    elapsed = _best_of(run, repeats)
    return {"events": events, "events_per_sec": events / elapsed}


def bench_protocol(
    n_nodes: int, ops_per_proc: int, repeats: int
) -> Dict[str, Any]:
    """Mixed read/write workload on the causal owner protocol."""
    from repro.protocols.base import DSMCluster

    n_locations = 2 * n_nodes
    outcome: Dict[str, Any] = {}

    def run() -> None:
        cluster = DSMCluster(n_nodes, protocol="causal", record_history=False)

        def process(api, me):
            for i in range(ops_per_proc):
                location = f"loc{(me + i) % n_locations}"
                if i % 3 == 0:
                    yield api.write(location, i)
                else:
                    yield api.read(location)

        for node in range(n_nodes):
            cluster.spawn(node, process, node)
        cluster.run()
        outcome["messages"] = cluster.stats.total
        # getattr defaults let the runner measure historical revisions
        # whose stores predate the sweep counters.
        outcome["sweeps_performed"] = sum(
            getattr(node.store, "sweeps_performed", 0) for node in cluster.nodes
        )
        outcome["sweeps_skipped"] = sum(
            getattr(node.store, "sweeps_skipped", 0) for node in cluster.nodes
        )
        outcome["invalidations"] = sum(
            node.store.invalidation_count for node in cluster.nodes
        )

    elapsed = _best_of(run, repeats)
    total_ops = n_nodes * ops_per_proc
    return {
        "ops": total_ops,
        "ops_per_sec": total_ops / elapsed,
        "messages": outcome["messages"],
        "sweeps_performed": outcome["sweeps_performed"],
        "sweeps_skipped": outcome["sweeps_skipped"],
        "invalidations": outcome["invalidations"],
    }


def bench_bandwidth(
    n_nodes: int, ops_per_proc: int, repeats: int
) -> Dict[str, Any]:
    """A/B the wire-level fast path against the baseline causal protocol.

    Both sides run the same mixed single-writer-per-location workload
    (each processor writes only its own locations, reads everyone's), so
    the final authoritative state is identical and the comparison
    isolates wire cost: the baseline pays full stamps and one round trip
    per remote write; the fast path delta-encodes stamps and batches
    write certifications.
    """
    from repro.protocols.base import DSMCluster

    def run_side(batching: bool, delta_stamps: bool) -> Dict[str, Any]:
        side: Dict[str, Any] = {}

        def run() -> None:
            cluster = DSMCluster(
                n_nodes,
                protocol="causal",
                seed=5,
                record_history=False,
                batching=batching,
                delta_stamps=delta_stamps,
            )

            def process(api, me):
                for i in range(ops_per_proc):
                    step = i % 6
                    if step < 2:
                        # Back-to-back writes to the processor's hot
                        # location (a solver updating its component);
                        # the write-behind queue coalesces these.
                        yield api.write(f"loc{me}", i)
                    elif step == 2:
                        yield api.write(f"loc{me}.{i % 4}", i)
                    else:
                        yield api.read(f"loc{(me + i) % n_nodes}")

            for node in range(n_nodes):
                cluster.spawn(node, process, node)
            cluster.run()
            stats = cluster.stats
            ops = n_nodes * ops_per_proc
            side["messages"] = stats.total
            side["bytes"] = stats.bytes_total
            side["bytes_per_op"] = stats.bytes_total / ops
            side["stamp_entries"] = stats.stamp_entries
            side["stamp_entries_per_op"] = stats.stamp_entries / ops
            side["stamp_entries_saved"] = stats.stamp_entries_saved
            if batching:
                batches = sum(n.wb_batches for n in cluster.nodes)
                batched = sum(n.wb_batched_writes for n in cluster.nodes)
                side["batches"] = batches
                side["batched_writes"] = batched
                coalesced = sum(n.wb_coalesced for n in cluster.nodes)
                side["coalesced"] = coalesced
                # Writes absorbed per frame: survivors + coalesced-away.
                side["batch_occupancy"] = (
                    (batched + coalesced) / batches if batches else 0.0
                )

        elapsed = _best_of(run, repeats)
        ops = n_nodes * ops_per_proc
        side["ops_per_sec"] = ops / elapsed
        return side

    baseline = run_side(batching=False, delta_stamps=False)
    fastpath = run_side(batching=True, delta_stamps=True)

    def reduction(key: str) -> float:
        return (
            1.0 - fastpath[key] / baseline[key] if baseline[key] else 0.0
        )

    return {
        "baseline": baseline,
        "fastpath": fastpath,
        "bytes_per_op_reduction": reduction("bytes_per_op"),
        "stamp_entries_per_op_reduction": reduction("stamp_entries_per_op"),
    }


def bench_obs(events: int, repeats: int) -> Dict[str, Any]:
    """Tracing overhead A/B on the kernel microbench, plus a traced run.

    Three timings of the same tick chain :func:`bench_kernel` uses:

    * ``detached`` — no collector: the pre-obs fast path (its ratio to
      the ``kernel`` section is pure run-to-run noise);
    * ``attached_untagged`` — collector attached but events untagged:
      the instrumented twin loop runs, never emits — isolates the
      per-event guard (this is the ratio CI bounds at 10%);
    * ``attached_tagged`` — collector attached (metrics only, no event
      retention) and every tick tagged: the full emit cost.

    The ``traced_fig4`` block is the yield side: the metrics snapshot of
    one traced Figure 4 run, with the checker re-checking its history
    twice through :class:`~repro.checker.CachedCausalChecker` so the
    cache-hit-rate counter is exercised.
    """
    from repro.checker import CachedCausalChecker
    from repro.obs import TraceCollector, run_traced_figure4
    from repro.sim.kernel import Simulator

    def chain(attach: bool, tagged: bool) -> float:
        def run() -> None:
            sim = Simulator()
            if attach:
                collector = TraceCollector(keep_events=False)
                collector.bind(sim)
                sim.obs = collector
            tag = ("task", "tick") if tagged else None
            count = [0]

            def tick() -> None:
                count[0] += 1
                if count[0] < events:
                    sim.schedule(1.0, tick, tag=tag)

            sim.schedule(1.0, tick, tag=tag)
            sim.run()
            assert count[0] == events

        return _best_of(run, repeats)

    detached = chain(attach=False, tagged=False)
    untagged = chain(attach=True, tagged=False)
    tagged = chain(attach=True, tagged=True)

    traced = run_traced_figure4()
    collector = traced.collector
    checker = CachedCausalChecker()
    checker.obs = collector
    checker.check(traced.history)
    checker.check(traced.history)  # dominated re-check: a history-table hit
    registry = collector.metrics
    return {
        "events": events,
        "detached_events_per_sec": events / detached,
        "attached_untagged_events_per_sec": events / untagged,
        "attached_tagged_events_per_sec": events / tagged,
        "guard_overhead": untagged / detached - 1.0,
        "emit_overhead": tagged / detached - 1.0,
        "traced_fig4": {
            "trace_events": len(collector.events),
            "invalidations_per_write": registry.ratio(
                "proto.inv.sweep", "proto.op.write"
            ),
            "read_miss_round_trip_mean": registry.histogram(
                "read_miss.round_trip"
            ).mean,
            "checker_history_hit_rate": checker.history_hit_rate,
            "metrics": registry.snapshot(),
        },
    }


def bench_monitor(
    n_nodes: int, ops_per_proc: int, repeats: int
) -> Dict[str, Any]:
    """Streaming-monitor throughput and overhead A/B (schema v4).

    The same mixed workload :func:`bench_protocol` uses, timed four
    ways: detached (no collector), attached (metrics-only collector, no
    monitor — the emit cost the obs section already bounds), hooked
    (collector plus a filtered subscriber whose filters never match —
    what the streaming-subscriber machinery costs every attached run
    that does *not* monitor, the ratio bounded at 10%), and monitored
    (a :class:`~repro.monitor.CausalStreamMonitor` subscribed to the
    collector).  ``monitor_overhead`` is the monitored run against the
    attached one — the full marginal price of synchronous online
    checking, reported honestly: per-op vector-clock work is the same
    order as this substrate's per-op cost, so expect tens of percent,
    and weigh it against ``events_per_sec``, the monitor's own
    sustained processing rate (ops through :meth:`observe` per second
    spent inside it).  The four variants are timed in interleaved
    rounds (:func:`_best_of_interleaved`) so machine drift between
    repeat blocks cannot masquerade as overhead.
    """
    from repro.monitor import CausalStreamMonitor
    from repro.obs import TraceCollector
    from repro.protocols.base import DSMCluster

    n_locations = 2 * n_nodes

    def build() -> DSMCluster:
        cluster = DSMCluster(n_nodes, protocol="causal", record_history=False)

        def process(api, me):
            for i in range(ops_per_proc):
                location = f"loc{(me + i) % n_locations}"
                if i % 3 == 0:
                    yield api.write(location, i)
                else:
                    yield api.read(location)

        for node in range(n_nodes):
            cluster.spawn(node, process, node)
        return cluster

    def run_detached() -> None:
        build().run()

    def run_attached() -> None:
        cluster = build()
        cluster.attach_obs(TraceCollector(keep_events=False))
        cluster.run()

    def run_hooked() -> None:
        # A subscriber whose filters match nothing: every emitted event
        # pays the inline filter compare and no callback — the pure
        # cost of the subscriber hook riding along.
        cluster = build()
        collector = TraceCollector(keep_events=False)
        cluster.attach_obs(collector)
        collector.subscribe(
            lambda event: None, category="monitor", name="never"
        )
        cluster.run()

    state: Dict[str, Any] = {}

    def run_monitored() -> None:
        cluster = build()
        collector = TraceCollector(keep_events=False)
        cluster.attach_obs(collector)
        monitor = CausalStreamMonitor(n_nodes, metrics=collector.metrics)
        collector.subscribe(monitor.observe, category="proto", name="op.commit")
        cluster.run()
        state["monitor"] = monitor

    detached, attached, hooked, monitored = _best_of_interleaved(
        [run_detached, run_attached, run_hooked, run_monitored], repeats
    )
    monitor = state["monitor"]
    result = monitor.result()
    registry = monitor.metrics
    observe = registry.histogram("monitor.observe_us").as_dict()
    return {
        "ops": result.ops_processed,
        "reads_checked": result.reads_checked,
        "causal": result.ok,
        "events_per_sec": registry.gauge("monitor.events_per_sec").value,
        "run_ops_per_sec": (n_nodes * ops_per_proc) / monitored,
        "attached_overhead": attached / detached - 1.0,
        "hook_overhead": hooked / attached - 1.0,
        "monitor_overhead": monitored / attached - 1.0,
        "total_overhead": monitored / detached - 1.0,
        "max_window": result.max_window,
        "gc_retired": result.gc_retired,
        "cache_hit_rate": monitor.live_cache.hit_rate,
        "observe_p50_us": observe["p50"],
        "observe_p95_us": observe["p95"],
        "observe_p99_us": observe["p99"],
    }


def bench_vectorised(
    n_procs: int, ops_per_proc: int, repeats: int, rows: int = 512
) -> Dict[str, Any]:
    """A/B the writestamp-arena backends at clock width ``n_procs`` (v5).

    Two levels, both timed in interleaved rounds so drift lands on all
    variants equally:

    * **sweep** — the arena primitives themselves: ``older_mask`` +
      ``dominated_mask`` over a ``rows``-slot arena for a corpus of probe
      stamps, plus one ``merge_rows`` frontier fold per probe.  Reported
      as row-classifications/sec per backend and the numpy/python
      speedup — this is the number the >=3x acceptance gate at n=64
      reads.  Mask equality between backends is asserted as part of the
      run (a wrong fast path is worse than a slow one).
    * **protocol** — the end-to-end view: the ``bench_protocol`` mixed
      workload on ``DSMCluster(arena_backend=...)``, scalar vs numpy,
      with batch delivery on the numpy side.  Whole-run speedup is
      diluted by simulator and scheduling cost that the arena never
      touches, so expect it well below the sweep-level ratio.
    """
    import random as random_module

    from repro.clocks.arena import ClockArena, HAVE_NUMPY, PyClockArena
    from repro.protocols.base import DSMCluster

    rng = random_module.Random(n_procs * 7919 + 13)
    corpus = [
        [rng.randrange(0, 64) for _ in range(n_procs)] for _ in range(rows)
    ]
    probes = [
        [rng.randrange(0, 64) for _ in range(n_procs)] for _ in range(64)
    ]

    def build(arena_cls):
        arena = arena_cls(n_procs, capacity=rows)
        slots = [arena.alloc(components) for components in corpus]
        return arena, slots

    def sweep_side(arena_cls):
        arena, slots = build(arena_cls)

        def run() -> None:
            for probe in probes:
                arena.older_mask(slots, probe)
                arena.dominated_mask(slots, probe)
                arena.merge_rows(slots)

        return run

    py_arena, py_slots = build(PyClockArena)
    sweep: Dict[str, Any] = {"rows": rows, "probes": len(probes)}
    classifications = 2 * len(probes) * rows
    if HAVE_NUMPY:
        np_arena, np_slots = build(ClockArena)
        masks_equal = all(
            py_arena.older_mask(py_slots, probe)
            == np_arena.older_mask(np_slots, probe)
            and py_arena.dominated_mask(py_slots, probe)
            == np_arena.dominated_mask(np_slots, probe)
            for probe in probes
        ) and py_arena.merge_rows(py_slots) == np_arena.merge_rows(np_slots)
        py_s, np_s = _best_of_interleaved(
            [sweep_side(PyClockArena), sweep_side(ClockArena)], repeats
        )
        sweep.update(
            python_rows_per_sec=classifications / py_s,
            numpy_rows_per_sec=classifications / np_s,
            speedup=py_s / np_s if np_s else 0.0,
            masks_equal=masks_equal,
        )
    else:  # pragma: no cover - image always ships numpy
        py_s = _best_of(sweep_side(PyClockArena), repeats)
        sweep.update(
            python_rows_per_sec=classifications / py_s,
            numpy_rows_per_sec=None,
            speedup=None,
            masks_equal=True,
        )

    n_locations = 2 * n_procs

    def protocol_side(backend: str, batch_delivery: bool):
        def run() -> None:
            cluster = DSMCluster(
                n_procs,
                protocol="causal",
                record_history=False,
                arena_backend=backend,
                batch_delivery=batch_delivery,
            )

            def process(api, me):
                for i in range(ops_per_proc):
                    location = f"loc{(me + i) % n_locations}"
                    if i % 3 == 0:
                        yield api.write(location, i)
                    else:
                        yield api.read(location)

            for node in range(n_procs):
                cluster.spawn(node, process, node)
            cluster.run()

        return run

    total_ops = n_procs * ops_per_proc
    protocol: Dict[str, Any] = {"ops": total_ops}
    if HAVE_NUMPY:
        scalar_s, vector_s = _best_of_interleaved(
            [
                protocol_side("python", batch_delivery=False),
                protocol_side("numpy", batch_delivery=True),
            ],
            repeats,
        )
        protocol.update(
            scalar_ops_per_sec=total_ops / scalar_s,
            vector_ops_per_sec=total_ops / vector_s,
            speedup=scalar_s / vector_s if vector_s else 0.0,
        )
    else:  # pragma: no cover - image always ships numpy
        scalar_s = _best_of(protocol_side("python", False), repeats)
        protocol.update(
            scalar_ops_per_sec=total_ops / scalar_s,
            vector_ops_per_sec=None,
            speedup=None,
        )

    return {"sweep": sweep, "protocol": protocol}


def profile_protocol(
    n_nodes: int, ops_per_proc: int, top: int = 15
) -> Dict[str, Any]:
    """cProfile the protocol workload; returns a top-N cumulative table.

    One profiled run of the same mixed workload :func:`bench_protocol`
    times (the profiler's tracing slows it ~40%, so the run is *not*
    used for throughput numbers — it rides along purely to record where
    the time goes).  The table is the first ``top`` rows of the
    ``cumulative``-sorted stats, each row a plain dict so the JSON
    trajectory can carry it (schema v6, ``protocol.profile``).
    """
    import cProfile
    import pstats

    from repro.protocols.base import DSMCluster

    n_locations = 2 * n_nodes
    cluster = DSMCluster(n_nodes, protocol="causal", record_history=False)

    def process(api, me):
        for i in range(ops_per_proc):
            location = f"loc{(me + i) % n_locations}"
            if i % 3 == 0:
                yield api.write(location, i)
            else:
                yield api.read(location)

    for node in range(n_nodes):
        cluster.spawn(node, process, node)
    profiler = cProfile.Profile()
    profiler.enable()
    cluster.run()
    profiler.disable()
    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative")
    rows: List[Dict[str, Any]] = []
    for func in stats.fcn_list[: top]:  # (file, line, name), sorted
        cc, nc, tottime, cumtime, _callers = stats.stats[func]
        file, line, name = func
        rows.append(
            {
                "function": name,
                "file": file,
                "line": line,
                "ncalls": nc,
                "tottime": round(tottime, 6),
                "cumtime": round(cumtime, 6),
            }
        )
    return {
        "workload": f"n={n_nodes}",
        "ops": n_nodes * ops_per_proc,
        "sort": "cumulative",
        "total_time": round(stats.total_tt, 6),
        "top": rows,
    }


def bench_checker(n_nodes: int, ops_per_proc: int, repeats: int) -> Dict[str, Any]:
    """Definition 2 verification of a recorded random execution."""
    from repro.apps.workload import WorkloadConfig, run_random_execution
    from repro.checker import check_causal

    outcome = run_random_execution(
        WorkloadConfig(
            n_nodes=n_nodes,
            n_locations=6,
            ops_per_proc=ops_per_proc,
            seed=2,
        )
    )
    total_ops = len(outcome.history)

    def run() -> None:
        result = check_causal(outcome.history)
        assert result.ok

    elapsed = _best_of(run, repeats)
    return {"ops": total_ops, "ops_per_sec": total_ops / elapsed}


def bench_checker_memo(schedules: int, repeats: int) -> Dict[str, Any]:
    """A/B the memoised causal checker on explorer-style history corpora.

    The corpus is what :mod:`repro.mc` actually produces: many random
    schedules of one small program, most of which record one of a
    handful of distinct histories.  The baseline re-checks every history
    from scratch; the cached side runs one
    :class:`~repro.checker.CachedCausalChecker` across the corpus
    (history-table hits for dominated schedules, shared live-set cache
    for the rest).  Verdict equality is asserted as part of the run.
    """
    import random as random_module

    from repro.checker import CachedCausalChecker, check_causal
    from repro.mc import ControlledRun, preset

    spec = preset("exhaustive")
    histories = []
    for index in range(schedules):
        rng = random_module.Random(f"bench-memo/{index}")
        run_state = ControlledRun(spec)
        while run_state.crashed is None:
            actions = run_state.actions()
            if not actions:
                break
            run_state.apply(actions[rng.randrange(len(actions))])
        histories.append(run_state.outcome().history)
    total_ops = sum(len(history) for history in histories)

    def run_uncached() -> None:
        for history in histories:
            check_causal(history)

    def run_cached() -> None:
        checker = CachedCausalChecker()
        for history in histories:
            checker.check(history)

    uncached = _best_of(run_uncached, repeats)
    cached = _best_of(run_cached, repeats)

    checker = CachedCausalChecker()
    verdicts_equal = all(
        check_causal(history).ok == checker.check(history).ok
        for history in histories
    )
    return {
        "histories": len(histories),
        "ops": total_ops,
        "uncached_ops_per_sec": total_ops / uncached,
        "cached_ops_per_sec": total_ops / cached,
        "speedup": uncached / cached if cached else 0.0,
        "history_hit_rate": checker.history_hit_rate,
        "live_hit_rate": checker.live_cache.hit_rate,
        "verdicts_equal": verdicts_equal,
    }


def bench_live(n_nodes: int, ops_per_proc: int) -> Dict[str, Any]:
    """The live asyncio/socket runtime vs the simulator (schema v7).

    Runs the same seeded random workload under both drivers — identical
    derived-RNG operation sequences, wire codec on, Unix-domain
    sockets — and reports live throughput, per-op completion-latency
    quantiles, and the byte ledger: the analytic wire-model bytes/op
    both drivers account identically vs the pickled frames actually
    written to the sockets.  The verdict cross-check (sim legality ==
    live legality) is part of the measurement; a drift marks the whole
    section suspect.
    """
    import time as time_module

    from repro.apps.workload import WorkloadConfig, run_random_execution
    from repro.checker import check_causal
    from repro.runtime import run_workload_live

    config = WorkloadConfig(
        protocol="causal",
        n_nodes=n_nodes,
        n_locations=4,
        ops_per_proc=ops_per_proc,
        seed=42,
        delta_stamps=True,
    )
    started = time_module.perf_counter()
    sim = run_random_execution(config)
    sim_wall = time_module.perf_counter() - started
    live = run_workload_live(config, sample_latencies=True)

    total_ops = len(live.history)
    latencies = sorted(live.latencies)

    def quantile(fraction: float) -> float:
        if not latencies:
            return 0.0
        return latencies[min(len(latencies) - 1, int(fraction * len(latencies)))]

    return {
        "transport": "uds",
        "nodes": n_nodes,
        "ops": total_ops,
        "elapsed_s": live.elapsed,
        "ops_per_sec": total_ops / live.elapsed if live.elapsed else 0.0,
        "sim_ops_per_sec": len(sim.history) / sim_wall if sim_wall else 0.0,
        "latency_p50_ms": quantile(0.50) * 1e3,
        "latency_p95_ms": quantile(0.95) * 1e3,
        "latency_p99_ms": quantile(0.99) * 1e3,
        "messages": live.total_messages,
        # The wire-model column both drivers share, vs real socket bytes.
        "model_bytes_per_op": live.model_bytes / total_ops if total_ops else 0.0,
        "socket_bytes_per_op": live.socket_bytes / total_ops if total_ops else 0.0,
        "framing_overhead": (
            live.socket_bytes / live.model_bytes if live.model_bytes else 0.0
        ),
        "verdicts_equal": check_causal(sim.history).ok
        == check_causal(live.history).ok,
    }


def bench_obs_plane(
    n_nodes: int, ops_per_proc: int, repeats: int
) -> Dict[str, Any]:
    """Telemetry-plane aggregation overhead, interleaved A/B (schema v8).

    Runs the same seeded live workload with the plane detached and
    attached, interleaved within each repeat so background load hits
    both arms alike, and reports the throughput ratio (acceptance
    target: attached <= 1.10x slower).  The isolation canaries ride
    along: the protocol must send the same messages either way
    (``messages_equal``), and the sideband's bytes must never leak into
    the protocol sockets' ledger — ``socket_bytes_delta`` is the
    attached-minus-detached protocol-socket difference, which is zero
    up to occasional timing-induced delta-stamp jitter (a few entries),
    orders of magnitude below ``sideband_bytes``
    (``sideband_excluded``).
    """
    from repro.apps.workload import WorkloadConfig
    from repro.obs.plane import TelemetryPlane
    from repro.runtime import run_workload_live

    config = WorkloadConfig(
        protocol="causal",
        n_nodes=n_nodes,
        n_locations=4,
        ops_per_proc=ops_per_proc,
        seed=42,
        delta_stamps=True,
    )

    detached_elapsed: List[float] = []
    attached_elapsed: List[float] = []
    detached = attached = None
    plane = None
    for _ in range(repeats):
        detached = run_workload_live(config)
        plane = TelemetryPlane()
        attached = run_workload_live(config, plane=plane)
        detached_elapsed.append(detached.elapsed)
        attached_elapsed.append(attached.elapsed)

    ops = len(attached.history)
    best_detached = min(detached_elapsed)
    best_attached = min(attached_elapsed)
    agg = plane.aggregator
    sideband_bytes = (
        plane.sideband.sideband_bytes if plane.sideband is not None else 0
    )
    socket_delta = attached.socket_bytes - detached.socket_bytes
    return {
        "nodes": n_nodes,
        "ops": ops,
        "detached_ops_per_sec": ops / best_detached if best_detached else 0.0,
        "attached_ops_per_sec": ops / best_attached if best_attached else 0.0,
        "overhead": (
            best_attached / best_detached if best_detached else 0.0
        ),
        "frames_merged": agg.frames_merged,
        "events_merged": agg.events_merged,
        "frames_lost": agg.frames_lost,
        "events_lost": agg.events_lost,
        "sideband_bytes": sideband_bytes,
        "messages_equal": attached.total_messages == detached.total_messages,
        "socket_bytes_delta": socket_delta,
        "sideband_excluded": sideband_bytes > 0
        and abs(socket_delta)
        < max(64, detached.socket_bytes // 100, sideband_bytes // 10),
    }


# ----------------------------------------------------------------------
# The suite
# ----------------------------------------------------------------------
def run_suite(
    node_counts: Sequence[int] = DEFAULT_NODE_COUNTS,
    smoke: bool = False,
    progress=None,
    substrate_nodes: Sequence[int] = DEFAULT_SUBSTRATE_NODES,
    profile: bool = False,
) -> Dict[str, Any]:
    """Run every substrate benchmark; returns the metrics tree.

    ``smoke`` shrinks workload sizes and repeats so the suite finishes in
    seconds (the mode tier-1 tests run).  ``progress`` is an optional
    ``callable(str)`` for per-section status lines.  ``profile`` adds a
    cProfile pass over the largest-n protocol workload and records its
    top-N cumulative table as ``protocol.profile`` (schema v6).
    """
    say = progress or (lambda message: None)
    # Best-of-5 in full mode: the trajectory is compared across PRs, so
    # robustness to background load beats wall-clock frugality here.
    repeats = 1 if smoke else 5
    kernel_events = 20_000 if smoke else 100_000
    protocol_ops = 50 if smoke else 200
    checker_ops = 40 if smoke else 200

    say(f"kernel: {kernel_events} events x{repeats}")
    metrics: Dict[str, Any] = {
        "kernel": bench_kernel(kernel_events, repeats),
        "protocol": {},
        "checker": {},
        "bandwidth": {},
        "obs": {},
    }
    for n in node_counts:
        say(f"protocol: n={n}, {protocol_ops} ops/proc x{repeats}")
        metrics["protocol"][f"n={n}"] = bench_protocol(n, protocol_ops, repeats)
    if profile:
        profile_n = max(node_counts)
        say(f"protocol profile: n={profile_n}, {protocol_ops} ops/proc (cProfile)")
        metrics["protocol"]["profile"] = profile_protocol(profile_n, protocol_ops)
    for n in node_counts:
        say(f"checker: n={n}, {checker_ops} ops/proc x{repeats}")
        metrics["checker"][f"n={n}"] = bench_checker(n, checker_ops, repeats)
    memo_schedules = 200 if smoke else 5000
    say(f"checker memo A/B: {memo_schedules} schedules x{repeats}")
    metrics["checker"]["memo"] = bench_checker_memo(memo_schedules, repeats)
    for n in node_counts:
        say(f"bandwidth A/B: n={n}, {protocol_ops} ops/proc x{repeats}")
        metrics["bandwidth"][f"n={n}"] = bench_bandwidth(n, protocol_ops, repeats)
    say(f"obs overhead A/B: {kernel_events} events x{repeats}")
    metrics["obs"] = bench_obs(kernel_events, repeats)
    monitor_ops = 100 if smoke else 500
    monitor_nodes = max(node_counts)
    say(
        f"monitor A/B: n={monitor_nodes}, "
        f"{monitor_ops} ops/proc x{repeats}"
    )
    metrics["monitor"] = bench_monitor(monitor_nodes, monitor_ops, repeats)
    substrate_rows = 128 if smoke else 512
    substrate_ops = 30 if smoke else 120
    metrics["substrate"] = {"vectorised": {}}
    for n in substrate_nodes:
        say(f"vectorised substrate A/B: n={n}, {substrate_rows} rows x{repeats}")
        metrics["substrate"]["vectorised"][f"n={n}"] = bench_vectorised(
            n, substrate_ops, repeats, rows=substrate_rows
        )
    live_ops = 30 if smoke else 100
    live_nodes = min(3, max(node_counts))
    say(f"live runtime vs sim: n={live_nodes}, {live_ops} ops/proc (uds)")
    metrics["runtime"] = {"live": bench_live(live_nodes, live_ops)}
    plane_repeats = 1 if smoke else 3
    say(
        f"telemetry plane A/B: n={live_nodes}, {live_ops} ops/proc "
        f"x{plane_repeats} (interleaved)"
    )
    metrics["obs"]["plane"] = bench_obs_plane(
        live_nodes, live_ops, plane_repeats
    )
    return metrics


def _format_summary(metrics: Dict[str, Any]) -> List[str]:
    lines = [
        f"kernel            {metrics['kernel']['events_per_sec']:>12,.0f} events/s"
    ]
    for group in ("protocol", "checker"):
        for key, data in metrics[group].items():
            if key in ("memo", "profile"):
                continue
            extra = ""
            if "sweeps_performed" in data:
                extra = (
                    f"  (sweeps {data['sweeps_performed']}"
                    f"+{data['sweeps_skipped']} skipped,"
                    f" {data['invalidations']} invalidations)"
                )
            lines.append(
                f"{group} {key:<8} {data['ops_per_sec']:>12,.0f} ops/s{extra}"
            )
    prof = metrics.get("protocol", {}).get("profile")
    if prof:
        lines.append(
            f"profile {prof['workload']:<9} {prof['total_time']:.3f}s total; "
            + "top by cumtime: "
            + ", ".join(
                f"{row['function']} ({row['cumtime']:.3f}s)"
                for row in prof["top"][:5]
            )
        )
    memo = metrics.get("checker", {}).get("memo")
    if memo:
        equal = "verdicts equal" if memo["verdicts_equal"] else "VERDICT DRIFT"
        lines.append(
            f"checker memo     {memo['uncached_ops_per_sec']:>12,.0f} -> "
            f"{memo['cached_ops_per_sec']:,.0f} ops/s "
            f"(x{memo['speedup']:.1f}, hist hit {memo['history_hit_rate']:.0%}, "
            f"live hit {memo['live_hit_rate']:.0%}, "
            f"{memo['histories']} histories, {equal})"
        )
    for key, data in metrics.get("bandwidth", {}).items():
        base, fast = data["baseline"], data["fastpath"]
        lines.append(
            f"bandwidth {key:<6} "
            f"{base['bytes_per_op']:>8.1f} -> {fast['bytes_per_op']:>8.1f} B/op "
            f"(-{data['bytes_per_op_reduction']:.0%}), "
            f"stamps/op {base['stamp_entries_per_op']:.1f} -> "
            f"{fast['stamp_entries_per_op']:.1f} "
            f"(-{data['stamp_entries_per_op_reduction']:.0%}), "
            f"occupancy {fast.get('batch_occupancy', 0.0):.2f}, "
            # The fast path trades CPU for bytes; say so (DESIGN §4.9).
            f"cpu x{fast['ops_per_sec'] / base['ops_per_sec']:.2f}"
        )
    obs = metrics.get("obs")
    if obs:
        traced = obs["traced_fig4"]
        lines.append(
            f"obs overhead      guard {obs['guard_overhead']:+.1%}, "
            f"emit {obs['emit_overhead']:+.1%} "
            f"({obs['detached_events_per_sec']:,.0f} detached ev/s); "
            f"fig4 trace {traced['trace_events']} events, "
            f"{traced['invalidations_per_write']:.1f} sweeps/write, "
            f"checker hit {traced['checker_history_hit_rate']:.0%}"
        )
    monitor = metrics.get("monitor")
    if monitor:
        verdict = "causal" if monitor["causal"] else "VERDICT NOT CAUSAL"
        lines.append(
            f"monitor           {monitor['events_per_sec']:>12,.0f} events/s "
            f"sustained (hook {monitor['hook_overhead']:+.1%}, "
            f"checking {monitor['monitor_overhead']:+.1%} over attached, "
            f"window<={monitor['max_window']}, "
            f"gc {monitor['gc_retired']}, "
            f"cache hit {monitor['cache_hit_rate']:.0%}, {verdict})"
        )
    live = metrics.get("runtime", {}).get("live")
    if live:
        verdict = "verdicts equal" if live["verdicts_equal"] else "VERDICT DRIFT"
        lines.append(
            f"runtime live      {live['ops_per_sec']:>12,.0f} ops/s over "
            f"{live['transport']} (p50 {live['latency_p50_ms']:.2f}ms, "
            f"p95 {live['latency_p95_ms']:.2f}ms, "
            f"p99 {live['latency_p99_ms']:.2f}ms; "
            f"{live['model_bytes_per_op']:.1f} model -> "
            f"{live['socket_bytes_per_op']:.1f} socket B/op "
            f"x{live['framing_overhead']:.1f}, {verdict})"
        )
    plane = metrics.get("obs", {}).get("plane")
    if plane:
        isolated = (
            "sideband isolated"
            if plane["sideband_excluded"] and plane["messages_equal"]
            else "SIDEBAND LEAK"
        )
        lines.append(
            f"telemetry plane   {plane['attached_ops_per_sec']:>12,.0f} ops/s "
            f"attached (x{plane['overhead']:.2f} vs detached, "
            f"{plane['events_merged']} events/"
            f"{plane['frames_merged']} frames merged, "
            f"{plane['events_lost']} lost, "
            f"sideband {plane['sideband_bytes']:,}B, {isolated})"
        )
    for key, data in (
        metrics.get("substrate", {}).get("vectorised", {}).items()
    ):
        sweep, proto = data["sweep"], data["protocol"]
        if sweep.get("numpy_rows_per_sec") is None:
            lines.append(
                f"vectorised {key:<6} "
                f"{sweep['python_rows_per_sec']:>12,.0f} rows/s "
                f"(python only; numpy absent)"
            )
            continue
        equal = "masks equal" if sweep["masks_equal"] else "MASK DRIFT"
        lines.append(
            f"vectorised {key:<6} sweep "
            f"{sweep['python_rows_per_sec']:,.0f} -> "
            f"{sweep['numpy_rows_per_sec']:,.0f} rows/s "
            f"(x{sweep['speedup']:.1f}, {equal}); "
            f"protocol x{proto['speedup']:.2f}"
        )
    return lines


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def _positive_int(text: str) -> int:
    value = int(text)
    if value <= 0:
        raise argparse.ArgumentTypeError(f"need a positive node count, got {text}")
    return value


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description=(
            "Benchmark the reproduction's simulation substrate (kernel, "
            "causal protocol, causal checker) and append the results to a "
            "persistent JSON trajectory."
        ),
    )
    parser.add_argument(
        "--output",
        metavar="PATH",
        default=DEFAULT_OUTPUT,
        help=f"trajectory file to append to (default: {DEFAULT_OUTPUT})",
    )
    parser.add_argument(
        "--label",
        default="",
        help="free-form label recorded with this run (e.g. a PR id)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny workloads; finishes in seconds (used by tier-1 tests)",
    )
    parser.add_argument(
        "--nodes",
        type=_positive_int,
        nargs="+",
        default=list(DEFAULT_NODE_COUNTS),
        metavar="N",
        help="processor counts to benchmark (default: 4 8 16)",
    )
    parser.add_argument(
        "--substrate-nodes",
        type=_positive_int,
        nargs="+",
        default=list(DEFAULT_SUBSTRATE_NODES),
        metavar="N",
        help=(
            "clock widths for the vectorised-substrate A/B "
            "(default: 16 64 256)"
        ),
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help=(
            "also cProfile the largest-n protocol workload and record its "
            "top-N cumulative table in the run (schema v6 'protocol.profile')"
        ),
    )
    parser.add_argument(
        "--no-save",
        action="store_true",
        help="print the numbers without touching the trajectory file",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    trajectory: Optional[BenchTrajectory] = None
    if not args.no_save:
        # Load (and validate) the trajectory up front: a corrupt file
        # should fail in milliseconds, not after a minutes-long run.
        try:
            trajectory = BenchTrajectory.load(args.output)
        except ReproError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
    metrics = run_suite(
        node_counts=tuple(args.nodes),
        smoke=args.smoke,
        progress=lambda message: print(f"... {message}", file=sys.stderr),
        substrate_nodes=tuple(args.substrate_nodes),
        profile=args.profile,
    )
    record = BenchRecord(
        label=args.label or ("smoke" if args.smoke else "full"),
        timestamp=datetime.now(timezone.utc).isoformat(timespec="seconds"),
        smoke=args.smoke,
        metrics=metrics,
    )
    for line in _format_summary(metrics):
        print(line)
    if trajectory is None:
        return 0
    trajectory.append(record)
    trajectory.save(args.output)
    print(f"appended run {len(trajectory.runs)} to {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
