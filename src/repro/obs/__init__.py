"""Causal tracing and metrics (``repro.obs``).

The observability layer for the whole stack: typed trace events stamped
with vector clocks (:mod:`repro.obs.events`), the collector every
instrumented component emits into (:mod:`repro.obs.collector`), the
metrics registry (:mod:`repro.obs.metrics`), exporters for Chrome
``trace_event`` JSON / causal DAGs / timelines (:mod:`repro.obs.export`),
canonical traced scenario runs (:mod:`repro.obs.runs`), and the
distributed telemetry plane — per-node shards, sideband streaming,
causal aggregation, flight recorder — in :mod:`repro.obs.plane`.

Instrumentation is zero-cost when detached: components hold ``obs =
None`` and every emit site is guarded, so a run without a collector
allocates no event records — see DESIGN.md Section 4.7.
"""

from repro.obs.collector import TraceCollector
from repro.obs.events import CATEGORIES, TraceEvent
from repro.obs.export import (
    dag_reachable,
    format_timeline,
    to_causal_dag,
    to_chrome_trace,
    to_dot,
    validate_chrome_trace,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.plane import NodeShard, TelemetryAggregator, TelemetryPlane
from repro.obs.runs import (
    SCENARIOS,
    TracedRun,
    run_traced_figure3,
    run_traced_figure4,
)

__all__ = [
    "TraceCollector",
    "TraceEvent",
    "CATEGORIES",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "to_chrome_trace",
    "validate_chrome_trace",
    "to_causal_dag",
    "to_dot",
    "dag_reachable",
    "format_timeline",
    "TracedRun",
    "SCENARIOS",
    "run_traced_figure3",
    "run_traced_figure4",
    "TelemetryPlane",
    "TelemetryAggregator",
    "NodeShard",
]
