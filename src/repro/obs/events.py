"""Typed trace events — the records a :class:`TraceCollector` gathers.

One event is one observed action somewhere in the stack: a kernel
scheduling decision, a message send/deliver/drop, a protocol-internal
step (an invalidation sweep, a write-behind flush, an ownership grant),
a store mutation, or a checker verdict.  Events that originate at a
node carry that node's **vector clock at emission time**, so a trace is
not merely a time-ordered log: the clocks carry the happens-before
relation itself, Fidge/Mattern style, and the exporters in
:mod:`repro.obs.export` can rebuild the causal DAG without re-running
anything.

The class is ``__slots__``-only and construction happens *only* behind
an ``if collector is not None`` guard at every emit site — when no
collector is attached, no event object is ever allocated (the
zero-overhead-when-disabled guarantee, DESIGN.md Section 4.7).
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

__all__ = ["TraceEvent", "CATEGORIES"]

#: The closed set of event categories.  Exporters key display lanes on
#: these; the collector does not enforce membership (tests may invent
#: categories) but every in-tree emit site uses one of them.
CATEGORIES = ("kernel", "net", "proto", "store", "check", "fault")


class TraceEvent:
    """One structured trace record.

    Attributes
    ----------
    seq:
        Collector-assigned emission order (unique, monotone).
    time:
        Simulated time of the event.
    category / name:
        Coarse lane (one of :data:`CATEGORIES`) and the specific action,
        e.g. ``("proto", "inv.sweep")``.
    node:
        Emitting node id, or None for global events (kernel, checker).
    clock:
        The emitting node's vector clock as a plain component tuple, or
        None when the event has no causal position (kernel ticks,
        fault-schedule edges).
    dur:
        Span length in simulated time (0 for instant events; message
        sends use their flight time).
    wall:
        Wall-clock timestamp (seconds, monotonic) when the collector has
        a wall-clock source bound — live-runtime traces always do, and
        simulator runs may opt in to correlate virtual with real time.
        None otherwise.
    args:
        Small free-form payload (locations, byte counts, triggers).
    """

    __slots__ = (
        "seq", "time", "category", "name", "node", "clock", "dur", "wall",
        "args",
    )

    def __init__(
        self,
        seq: int,
        time: float,
        category: str,
        name: str,
        node: Optional[int] = None,
        clock: Optional[Tuple[int, ...]] = None,
        dur: float = 0.0,
        args: Optional[Dict[str, Any]] = None,
        wall: Optional[float] = None,
    ):
        self.seq = seq
        self.time = time
        self.category = category
        self.name = name
        self.node = node
        self.clock = clock
        self.dur = dur
        self.wall = wall
        self.args = args or {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TraceEvent({self.seq}, t={self.time}, {self.category}."
            f"{self.name}, node={self.node}, clock={self.clock})"
        )

    # ------------------------------------------------------------------
    # JSON round-trip (counterexample embedding, exporter input)
    # ------------------------------------------------------------------
    def to_jsonable(self) -> Dict[str, Any]:
        """Plain-dict form; short keys keep embedded traces compact."""
        payload: Dict[str, Any] = {
            "seq": self.seq,
            "t": self.time,
            "cat": self.category,
            "name": self.name,
        }
        if self.node is not None:
            payload["node"] = self.node
        if self.clock is not None:
            payload["clock"] = list(self.clock)
        if self.dur:
            payload["dur"] = self.dur
        if self.wall is not None:
            payload["w"] = self.wall
        if self.args:
            payload["args"] = _jsonable_args(self.args)
        return payload

    @classmethod
    def from_jsonable(cls, data: Dict[str, Any]) -> "TraceEvent":
        """Inverse of :meth:`to_jsonable`."""
        clock = data.get("clock")
        return cls(
            seq=int(data["seq"]),
            time=float(data["t"]),
            category=str(data["cat"]),
            name=str(data["name"]),
            node=data.get("node"),
            clock=tuple(clock) if clock is not None else None,
            dur=float(data.get("dur", 0.0)),
            args=dict(data.get("args", {})),
            wall=data.get("w"),
        )


def _jsonable_args(args: Dict[str, Any]) -> Dict[str, Any]:
    """Coerce arg values to JSON-safe shapes (tuples become lists)."""
    out: Dict[str, Any] = {}
    for key, value in args.items():
        if isinstance(value, tuple):
            out[key] = list(value)
        elif isinstance(value, (str, int, float, bool, list, dict)) or value is None:
            out[key] = value
        else:
            out[key] = repr(value)
    return out
