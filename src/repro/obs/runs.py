"""Canonical traced scenario runs for the ``repro trace`` CLI and CI.

Each runner builds a small deterministic cluster, attaches a
:class:`~repro.obs.collector.TraceCollector` to every layer via
:meth:`~repro.protocols.base.DSMCluster.attach_obs`, drives a
paper scenario, and returns the collector together with the recorded
history.  The :data:`SCENARIOS` registry maps the CLI's scenario names
onto these runners.

``run_traced_figure4`` is the acceptance scenario: an owner-protocol run
whose trace must show every ``proto.inv.sweep`` causally *after* the
write that triggered it (the DAG-walking test in ``tests/test_obs.py``
asserts exactly that on the exported causal DAG).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from repro.checker.history import History
from repro.memory import Namespace
from repro.obs.collector import TraceCollector
from repro.protocols.base import DSMCluster
from repro.sim.tasks import sleep

__all__ = ["TracedRun", "run_traced_figure4", "run_traced_figure3", "SCENARIOS"]


@dataclass
class TracedRun:
    """A finished traced scenario: the trace plus what produced it."""

    scenario: str
    protocol: str
    n_nodes: int
    collector: TraceCollector
    history: History


def run_traced_figure4(seed: int = 0, collector=None) -> TracedRun:
    """Owner-protocol run exercising both invalidation-sweep paths.

    Three nodes; ``x`` owned by P0, ``y`` by P1, ``z`` by P2.

    * P1 and P2 read ``x`` early, caching P0's initial value.
    * P0 then writes ``x=1`` (local, it owns ``x``) and ``y=1`` — the
      remote write is certified at P1, whose serve-write sweep
      invalidates its stale cached ``x``.
    * P2 later reads ``y`` (miss; the reply's writestamp triggers the
      read-side sweep, invalidating P2's cached ``x``) and re-reads
      ``x``, now fetching the fresh value from the owner.

    Every ``inv.sweep`` event in the trace is thus causally downstream
    of P0's ``op.write`` of ``x`` — the acceptance property.
    """
    namespace = Namespace.explicit(3, {"x": 0, "y": 1, "z": 2})
    cluster = DSMCluster(
        n_nodes=3, protocol="causal", seed=seed, namespace=namespace
    )
    if collector is None:
        collector = TraceCollector()
    cluster.attach_obs(collector)

    def p0(api):
        yield sleep(cluster.sim, 2.0)
        yield api.write("x", 1)
        yield api.write("y", 1)

    def p1(api):
        yield api.read("x")  # cache x before P0 rewrites it

    def p2(api):
        yield api.read("x")  # cache x before P0 rewrites it
        yield sleep(cluster.sim, 6.0)
        yield api.read("y")  # reply stamp sweeps the stale cached x
        yield api.read("x")

    cluster.spawn(0, p0, name="P0")
    cluster.spawn(1, p1, name="P1")
    cluster.spawn(2, p2, name="P2")
    cluster.run()
    return TracedRun(
        scenario="fig4",
        protocol="causal",
        n_nodes=3,
        collector=collector,
        history=cluster.history(),
    )


def run_traced_figure3(seed: int = 0, collector=None) -> TracedRun:
    """Figure 3 on causal-broadcast memory, traced (the CI smoke run).

    Same schedule as
    :func:`repro.harness.scenarios.run_figure3_on_broadcast`: the
    resulting history is the paper's Figure 3, which is *not* causal
    memory — a good smoke trace because it exercises writes, broadcast
    applies, and cross-node delivery under tracing.
    """
    cluster = DSMCluster(n_nodes=3, protocol="broadcast", seed=seed)
    if collector is None:
        collector = TraceCollector()
    cluster.attach_obs(collector)

    def p1(api):
        yield api.write("x", 5)
        yield api.write("y", 3)

    def p2(api):
        yield api.write("x", 2)
        yield api.watch("y", lambda v: v == 3)
        yield api.read("y")
        yield api.read("x")
        yield api.write("z", 4)

    def p3(api):
        yield api.watch("z", lambda v: v == 4)
        yield api.read("z")
        yield api.read("x")

    cluster.spawn(0, p1, name="P1")
    cluster.spawn(1, p2, name="P2")
    cluster.spawn(2, p3, name="P3")
    cluster.run()
    return TracedRun(
        scenario="fig3",
        protocol="broadcast",
        n_nodes=3,
        collector=collector,
        history=cluster.history(),
    )


#: CLI scenario name -> runner.
SCENARIOS: Dict[str, Callable[[int], TracedRun]] = {
    "fig4": run_traced_figure4,
    "fig3": run_traced_figure3,
}
