"""The metrics registry: counters, gauges, and histograms.

Trace events answer "what happened, in what causal order"; metrics
answer "how much".  A :class:`MetricsRegistry` is a flat name -> metric
map that instrumented components update while a collector is attached
(the :class:`~repro.obs.collector.TraceCollector` auto-counts every
emitted ``category.name``, and hot sites add explicit histograms such as
batch occupancy).  ``snapshot()`` renders the whole registry as a plain
JSON-safe tree — the shape stored in the ``obs`` section of
``BENCH_substrate.json``.

No locks, no time sources, no background threads: the simulator is
single-threaded and deterministic, and the registry must be too.
"""

from __future__ import annotations

from typing import Any, Dict

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, delta: int = 1) -> None:
        """Add ``delta`` (must be >= 0 to stay a counter)."""
        self.value += delta


class Gauge:
    """A set-to-latest value (queue depths, horizon positions)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Summary statistics over observed samples.

    Stores count/sum/min/max plus a bounded, *deterministic* sample
    reservoir for quantiles: the bench snapshot wants scalar series that
    diff cleanly across PRs, and the monitor wants p50/p95/p99 latency
    without external tooling.  The reservoir keeps every ``stride``-th
    sample and doubles the stride when full (a systematic thinning, not
    random reservoir sampling — the registry must stay deterministic),
    so quantiles are exact below :data:`SAMPLE_LIMIT` observations and a
    stride-spaced approximation above it.
    """

    #: Reservoir capacity; thinning doubles the stride at this size.
    SAMPLE_LIMIT = 512

    __slots__ = ("count", "total", "min", "max", "_samples", "_stride")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._samples: list = []
        self._stride = 1

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if (self.count - 1) % self._stride == 0:
            if len(self._samples) >= self.SAMPLE_LIMIT:
                self._samples = self._samples[::2]
                self._stride *= 2
                if (self.count - 1) % self._stride != 0:
                    return
            self._samples.append(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """The ``q``-quantile (nearest-rank) of the kept samples."""
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        rank = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[rank]

    def as_dict(self) -> Dict[str, float]:
        if not self.count:
            return {
                "count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0,
                "p50": 0.0, "p95": 0.0, "p99": 0.0,
            }
        ordered = sorted(self._samples)
        n = len(ordered)
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": ordered[min(n - 1, int(0.50 * n))],
            "p95": ordered[min(n - 1, int(0.95 * n))],
            "p99": ordered[min(n - 1, int(0.99 * n))],
        }


class MetricsRegistry:
    """A flat, create-on-access map of named metrics."""

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        metric = self.counters.get(name)
        if metric is None:
            metric = self.counters[name] = Counter()
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self.gauges.get(name)
        if metric is None:
            metric = self.gauges[name] = Gauge()
        return metric

    def histogram(self, name: str) -> Histogram:
        metric = self.histograms.get(name)
        if metric is None:
            metric = self.histograms[name] = Histogram()
        return metric

    def count_of(self, name: str) -> int:
        """A counter's value, 0 if it never incremented."""
        metric = self.counters.get(name)
        return metric.value if metric is not None else 0

    def ratio(self, numerator: str, denominator: str) -> float:
        """Counter ratio (e.g. invalidations per write); 0 when undefined."""
        denom = self.count_of(denominator)
        return self.count_of(numerator) / denom if denom else 0.0

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe tree of every metric, sorted for stable diffs."""
        return {
            "counters": {
                name: metric.value
                for name, metric in sorted(self.counters.items())
            },
            "gauges": {
                name: metric.value
                for name, metric in sorted(self.gauges.items())
            },
            "histograms": {
                name: metric.as_dict()
                for name, metric in sorted(self.histograms.items())
            },
        }
