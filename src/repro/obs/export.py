"""Trace exporters: Chrome ``trace_event`` JSON, causal DAG, timeline.

Three views of one trace:

* :func:`to_chrome_trace` renders the event list in the Chrome
  ``trace_event`` JSON format (load it at ``chrome://tracing`` or
  https://ui.perfetto.dev): one process lane per node, one thread lane
  per category, message sends as duration slices spanning their flight
  time.  :func:`validate_chrome_trace` checks the output against the
  format's structural rules — hand-written, because the container may
  not ship a JSON-Schema library, and CI runs it on every smoke trace.
* :func:`to_causal_dag` rebuilds the happens-before DAG from the events'
  vector clocks: event ``u`` precedes ``v`` iff ``u`` was emitted first
  and ``u``'s clock is componentwise <= ``v``'s.  The exported edge set
  is the transitive reduction (each vertex keeps only its maximal
  predecessors); :func:`dag_reachable` answers path queries on it, and
  :func:`to_dot` renders Graphviz source.
* :func:`format_timeline` prints a human-readable per-line log for
  terminal debugging.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.obs.events import TraceEvent

__all__ = [
    "to_chrome_trace",
    "validate_chrome_trace",
    "to_causal_dag",
    "dag_reachable",
    "to_dot",
    "format_timeline",
]

#: Chrome trace_event phases the exporter produces / validator accepts.
_KNOWN_PHASES = frozenset("XiBEbensfM")


# ----------------------------------------------------------------------
# Chrome trace_event JSON
# ----------------------------------------------------------------------
def to_chrome_trace(events: Iterable[TraceEvent]) -> Dict[str, Any]:
    """Render events in the Chrome ``trace_event`` JSON object format.

    Live traces (events carrying a ``wall`` timestamp from
    ``collector.bind_wall``) are laid out on the wall clock: ``ts`` is
    microseconds since the earliest wall-stamped event, so a merged
    telemetry-plane trace shows real elapsed time.  Events without a
    wall stamp fall back to simulated time units mapped to microseconds
    (x1000, so sub-unit latencies stay visible).  ``pid`` is the
    emitting node (-1 for global events), ``tid`` the category lane.
    Events with a duration (message flights) become complete slices
    (``ph: "X"``); everything else is an instant (``ph: "i"``).
    """
    events = list(events)
    walls = [e.wall for e in events if e.wall is not None]
    base_wall = min(walls) if walls else 0.0
    trace_events: List[Dict[str, Any]] = []
    for event in events:
        pid = event.node if event.node is not None else -1
        if event.wall is not None:
            ts = (event.wall - base_wall) * 1e6
        else:
            ts = event.time * 1000.0
        record: Dict[str, Any] = {
            "name": event.name,
            "cat": event.category,
            "ts": ts,
            "pid": pid,
            "tid": event.category,
        }
        args = dict(event.args)
        if event.clock is not None:
            args["clock"] = list(event.clock)
        if args:
            record["args"] = args
        if event.dur > 0:
            record["ph"] = "X"
            record["dur"] = event.dur * 1000.0
        else:
            record["ph"] = "i"
            record["s"] = "t"
        trace_events.append(record)
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def validate_chrome_trace(payload: Any) -> None:
    """Structurally validate Chrome-trace JSON; raises :class:`ReproError`.

    Accepts a dict (object format), a JSON string, or a list (array
    format).  Checks the rules chrome://tracing actually enforces:
    ``traceEvents`` is a list of objects, each with a string ``name``, a
    known one-character ``ph``, a numeric non-negative ``ts``, ``pid``
    and ``tid`` present, and a non-negative numeric ``dur`` on complete
    ("X") slices.
    """
    if isinstance(payload, str):
        try:
            payload = json.loads(payload)
        except json.JSONDecodeError as error:
            raise ReproError(f"chrome trace is not valid JSON: {error}") from error
    if isinstance(payload, list):
        payload = {"traceEvents": payload}
    if not isinstance(payload, dict):
        raise ReproError(f"chrome trace must be an object, got {type(payload)}")
    trace_events = payload.get("traceEvents")
    if not isinstance(trace_events, list):
        raise ReproError("chrome trace has no 'traceEvents' list")
    for index, record in enumerate(trace_events):
        where = f"traceEvents[{index}]"
        if not isinstance(record, dict):
            raise ReproError(f"{where} is not an object")
        name = record.get("name")
        if not isinstance(name, str) or not name:
            raise ReproError(f"{where} lacks a non-empty string 'name'")
        phase = record.get("ph")
        if not isinstance(phase, str) or phase not in _KNOWN_PHASES:
            raise ReproError(f"{where} has unknown phase {phase!r}")
        if phase != "M":  # metadata records carry no timestamp
            ts = record.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                raise ReproError(f"{where} has invalid 'ts' {ts!r}")
        for key in ("pid", "tid"):
            if key not in record:
                raise ReproError(f"{where} lacks '{key}'")
        if phase == "X":
            dur = record.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ReproError(f"{where} ('X' slice) has invalid 'dur' {dur!r}")


# ----------------------------------------------------------------------
# Causal DAG (happens-before from vector clocks)
# ----------------------------------------------------------------------
def _leq(a: Sequence[int], b: Sequence[int]) -> bool:
    """Componentwise <= — the vector-clock happens-before-or-equal test."""
    if len(a) != len(b):
        return False
    return all(x <= y for x, y in zip(a, b))


def to_causal_dag(events: Iterable[TraceEvent]) -> Dict[str, Any]:
    """Build the happens-before DAG over the clock-bearing events.

    ``u`` happens-before ``v`` iff ``u.seq < v.seq`` (emitted first) and
    ``u.clock <= v.clock`` componentwise.  Emission order is consistent
    with causality inside the single-threaded simulator, so the seq test
    only breaks the tie between events with *equal* clocks (same node,
    same instant) in their real order; concurrent events (incomparable
    clocks) get no edge in either direction.

    The exported edges are the transitive reduction: ``v`` lists only
    its maximal predecessors.  Reachability — the full happens-before
    relation — is preserved and queryable via :func:`dag_reachable`.
    """
    vertices = [event for event in events if event.clock is not None]
    nodes = [
        {
            "id": event.seq,
            "t": event.time,
            "cat": event.category,
            "name": event.name,
            "node": event.node,
            "clock": list(event.clock),
            "args": {
                key: list(value) if isinstance(value, tuple) else value
                for key, value in event.args.items()
            },
        }
        for event in vertices
    ]
    edges: List[Tuple[int, int]] = []
    for j, v in enumerate(vertices):
        predecessors = [
            u for u in vertices[:j] if _leq(u.clock, v.clock)
        ]
        # Keep only maximal predecessors: u is dropped when another
        # predecessor w already happens-after u (the u -> v edge is then
        # implied by u -> w -> v).
        for i, u in enumerate(predecessors):
            dominated = any(
                u.seq < w.seq and _leq(u.clock, w.clock)
                for w in predecessors[i + 1:]
            )
            if not dominated:
                edges.append((u.seq, v.seq))
    return {"nodes": nodes, "edges": [list(edge) for edge in edges]}


def dag_reachable(dag: Dict[str, Any], src: int, dst: int) -> bool:
    """True iff ``src`` happens-before ``dst`` in the exported DAG."""
    if src == dst:
        return True
    adjacency: Dict[int, List[int]] = {}
    for u, v in dag["edges"]:
        adjacency.setdefault(u, []).append(v)
    frontier = deque([src])
    seen = {src}
    while frontier:
        here = frontier.popleft()
        for successor in adjacency.get(here, ()):
            if successor == dst:
                return True
            if successor not in seen:
                seen.add(successor)
                frontier.append(successor)
    return False


def to_dot(dag: Dict[str, Any]) -> str:
    """Graphviz source for a causal DAG (``dot -Tsvg`` renders it)."""
    lines = [
        "digraph causal {",
        "  rankdir=LR;",
        '  node [shape=box, fontsize=10, fontname="monospace"];',
    ]
    for node in dag["nodes"]:
        where = f"P{node['node']}" if node["node"] is not None else "global"
        clock = ",".join(str(c) for c in node["clock"])
        label = (
            f"{node['cat']}.{node['name']}\\n{where} t={node['t']:g} "
            f"vt=[{clock}]"
        )
        lines.append(f'  n{node["id"]} [label="{label}"];')
    for u, v in dag["edges"]:
        lines.append(f"  n{u} -> n{v};")
    lines.append("}")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Human-readable timeline
# ----------------------------------------------------------------------
def format_timeline(
    events: Iterable[TraceEvent], limit: Optional[int] = None
) -> str:
    """One line per event: time, lane, node, name, clock, args."""
    lines: List[str] = []
    for event in events:
        if limit is not None and len(lines) >= limit:
            lines.append(f"... (truncated at {limit} events)")
            break
        where = f"P{event.node}" if event.node is not None else "--"
        clock = (
            "[" + ",".join(str(c) for c in event.clock) + "]"
            if event.clock is not None
            else ""
        )
        args = " ".join(f"{key}={value!r}" for key, value in event.args.items())
        dur = f" dur={event.dur:g}" if event.dur else ""
        lines.append(
            f"t={event.time:9.3f}  {event.category:<6} {where:<4} "
            f"{event.name:<16} {clock:<14}{dur} {args}".rstrip()
        )
    return "\n".join(lines)
