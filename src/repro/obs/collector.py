"""The :class:`TraceCollector` — the single sink all emit sites feed.

Attachment model (the zero-overhead contract):

* every instrumented component (:class:`~repro.sim.kernel.Simulator`,
  :class:`~repro.sim.network.Network`, protocol nodes, stores, the
  codec, the checker) carries an ``obs`` attribute that is **None by
  default**;
* every emit site is guarded — ``if self.obs is not None: self.obs.emit(...)``
  — so a detached run costs one attribute load and an identity test per
  site, allocates nothing, and formats nothing;
* :meth:`repro.protocols.base.DSMCluster.attach_obs` binds one collector
  to every component of a cluster in one call.

``emit`` stamps each record with the simulated time (from the bound
simulator unless overridden) and a collector-wide sequence number, and
auto-counts ``category.name`` in the attached
:class:`~repro.obs.metrics.MetricsRegistry`.

Streaming subscribers (the online-monitor hook): callables registered
via :meth:`TraceCollector.subscribe` receive every event *as it is
emitted*, in emission order, before ``emit`` returns.  The dispatch
obeys the same zero-cost discipline as the emit guards themselves — a
collector with no subscribers pays one truthiness test per emit, and a
detached component pays nothing at all.  Subscribers must not emit back
into the collector (that would reenter the event list mid-append).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.obs.events import TraceEvent
from repro.obs.metrics import MetricsRegistry

__all__ = ["TraceCollector"]


class TraceCollector:
    """Receives typed trace events and aggregates metrics.

    Parameters
    ----------
    metrics:
        Registry to aggregate into; a fresh one is created by default.
    keep_events:
        With False, only metrics accumulate (long benchmark runs that
        want counters without an unbounded event list).
    """

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        keep_events: bool = True,
    ):
        self.events: List[TraceEvent] = []
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.keep_events = keep_events
        self._seq = 0
        self._sim = None
        self._wall: Optional[Callable[[], float]] = None
        #: (callback, category filter, name filter) triples; None matches
        #: everything.  Filters are tested inline in :meth:`emit` so a
        #: subscriber interested in one event kind does not pay a Python
        #: call for every other event on the stream.
        self._subscribers: List[
            Tuple[Callable[[TraceEvent], None], Optional[str], Optional[str]]
        ] = []

    def bind(self, sim) -> None:
        """Use ``sim.now`` as the default timestamp for emits."""
        self._sim = sim

    def bind_wall(self, source: Optional[Callable[[], float]]) -> None:
        """Stamp every future event's ``wall`` field from ``source()``.

        The live runtime binds ``time.monotonic`` here so spans carry
        real timestamps alongside the (wall-derived) runtime clock;
        simulator runs may bind it too to correlate virtual time with
        elapsed real time.  Pass None to stop stamping.
        """
        self._wall = source

    # ------------------------------------------------------------------
    # Streaming subscribers (the online-monitor hook)
    # ------------------------------------------------------------------
    def subscribe(
        self,
        callback: Callable[[TraceEvent], None],
        category: Optional[str] = None,
        name: Optional[str] = None,
    ) -> Callable[[TraceEvent], None]:
        """Deliver every future event to ``callback`` as it is emitted.

        Returns ``callback`` so the registration reads as an expression.
        Subscribers see events in emission order, synchronously, before
        :meth:`emit` returns — this is how the streaming consistency
        monitor (:mod:`repro.monitor`) observes a run *while it runs*.

        ``category``/``name`` filter delivery: a subscriber that only
        wants ``proto.op.commit`` events skips a callback invocation per
        non-matching event (string compares in :meth:`emit` instead of a
        Python call — the difference between the monitor riding along at
        line rate and doubling the emit cost).
        """
        self._subscribers.append((callback, category, name))
        return callback

    def unsubscribe(self, callback: Callable[[TraceEvent], None]) -> None:
        """Remove one previously registered subscriber.

        Matches by equality, not identity: every ``monitor.observe``
        attribute access builds a fresh bound method, and bound methods
        compare equal iff they share the function and the instance.
        """
        for index, entry in enumerate(self._subscribers):
            if entry[0] == callback:
                del self._subscribers[index]
                return
        raise ValueError(f"{callback!r} is not a subscriber")

    # ------------------------------------------------------------------
    # The emit path (called only from behind ``obs is not None`` guards)
    # ------------------------------------------------------------------
    def emit(
        self,
        category: str,
        name: str,
        *,
        node: Optional[int] = None,
        clock: Optional[object] = None,
        time: Optional[float] = None,
        dur: float = 0.0,
        **args: Any,
    ) -> TraceEvent:
        """Record one event; returns it (tests assert on the object).

        ``clock`` accepts a :class:`~repro.clocks.VectorClock` or a bare
        component tuple; it is normalised to a tuple so events compare
        and serialise without importing the clocks package.
        """
        if time is None:
            time = self._sim.now if self._sim is not None else 0.0
        if clock is not None:
            clock = tuple(getattr(clock, "components", clock))
        self._seq += 1
        event = TraceEvent(
            seq=self._seq,
            time=time,
            category=category,
            name=name,
            node=node,
            clock=clock,
            dur=dur,
            args=args,
            wall=self._wall() if self._wall is not None else None,
        )
        if self.keep_events:
            self.events.append(event)
        self.metrics.counter(f"{category}.{name}").inc()
        if self._subscribers:
            for callback, category_filter, name_filter in self._subscribers:
                if (category_filter is None or category_filter == category) and (
                    name_filter is None or name_filter == name
                ):
                    callback(event)
        return event

    def ingest(self, event: TraceEvent) -> TraceEvent:
        """Accept a *preformed* event from another collector's stream.

        The telemetry aggregator (:mod:`repro.obs.plane`) merges
        per-node shard streams and replays each merged event into an
        ordinary collector through this method, so exporters and monitor
        subscribers downstream see exactly what :meth:`emit` would have
        produced.  The event is re-sequenced into *this* collector's
        emission order (the original per-shard ``seq`` lives on in
        ``args`` if the producer chose to keep it); every other field —
        time, clock, wall, payload — passes through untouched.
        """
        self._seq += 1
        merged = TraceEvent(
            seq=self._seq,
            time=event.time,
            category=event.category,
            name=event.name,
            node=event.node,
            clock=event.clock,
            dur=event.dur,
            args=event.args,
            wall=event.wall,
        )
        if self.keep_events:
            self.events.append(merged)
        self.metrics.counter(f"{event.category}.{event.name}").inc()
        if self._subscribers:
            for callback, category_filter, name_filter in self._subscribers:
                if (
                    category_filter is None or category_filter == event.category
                ) and (name_filter is None or name_filter == event.name):
                    callback(merged)
        return merged

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def select(
        self,
        category: Optional[str] = None,
        name: Optional[str] = None,
        node: Optional[int] = None,
    ) -> List[TraceEvent]:
        """Events matching every given filter, in emission order."""
        return [
            event
            for event in self.events
            if (category is None or event.category == category)
            and (name is None or event.name == name)
            and (node is None or event.node == node)
        ]

    def causal_events(self) -> List[TraceEvent]:
        """The clock-bearing events — the causal DAG's vertex set."""
        return [event for event in self.events if event.clock is not None]

    def counts(self) -> Dict[Tuple[str, str], int]:
        """(category, name) -> occurrence count."""
        out: Dict[Tuple[str, str], int] = {}
        for event in self.events:
            key = (event.category, event.name)
            out[key] = out.get(key, 0) + 1
        return out

    def to_jsonable(self) -> List[Dict[str, Any]]:
        """Every event as a plain dict, in emission order."""
        return [event.to_jsonable() for event in self.events]

    @classmethod
    def from_jsonable(cls, payload: Iterable[Dict[str, Any]]) -> "TraceCollector":
        """Rebuild a collector (events only) from serialised records."""
        collector = cls()
        collector.events = [TraceEvent.from_jsonable(item) for item in payload]
        if collector.events:
            collector._seq = max(event.seq for event in collector.events)
        return collector

    def clear(self) -> None:
        """Drop events (metrics keep accumulating)."""
        self.events.clear()
