"""Flight recorder — last-N causal events to replayable counterexample.

Aviation semantics: the recorder rides along at near-zero cost (the
per-node shards already keep bounded rings), and only on an *incident*
— a node crash, a live-run timeout, or a streaming-monitor violation —
does it dump.  The dump is not a log file: it is a FORMAT_VERSION-2
:class:`~repro.mc.counterexample.Counterexample`, the same artifact the
schedule explorer produces, so ``python -m repro.mc replay`` re-executes
and re-checks it with zero search.

Three incident kinds, three reconstruction strategies:

* **monitor violation** — the window provably contains a violating
  program; delegate to
  :func:`~repro.monitor.report.violation_counterexample` (explorer
  search + shrink), then swap the explorer's synthetic trace for the
  *live* ring events, so the artifact carries what the real run saw.
* **timeout** (live run blocked past its deadline) — the committed-op
  window cannot re-block under reliable delivery (every op in it
  committed), so the recorder searches for a *deadlock under message
  loss* over the same window: a bounded random walk over controlled
  schedules with a drop budget, accepting the first blocked outcome.
  ``kind="deadlock"`` replays check that the schedule blocks again —
  :func:`repro.mc.counterexample.replay` verifies exactly that.
* **crash** — same window search, accepting a crashing outcome first
  and a blocked one as fallback.

All searches are budgeted and honest: ``dump`` returns ``None`` when
the budget exhausts without reproducing the incident shape, mirroring
``violation_counterexample``'s contract.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.events import TraceEvent

__all__ = ["FlightRecorder", "window_from_events", "deadlock_counterexample"]


def window_from_events(
    events: Sequence[TraceEvent], n_procs: Optional[int] = None
) -> List[List[Tuple]]:
    """Per-process op lists from ring ``proto.op.commit`` events.

    The inverse of the emit sites in :mod:`repro.protocols.base`: each
    commit event carries ``kind``/``location``/``value`` args and the
    emitting node id; per-source FIFO (shard rings are emission-ordered)
    means per-process program order is preserved — all the explorer
    needs.
    """
    per_proc: Dict[int, List[Tuple]] = {}
    for event in events:
        if event.category != "proto" or event.name != "op.commit":
            continue
        if event.node is None:
            continue
        kind = event.args.get("kind")
        location = event.args.get("location")
        if kind == "w":
            per_proc.setdefault(event.node, []).append(
                ("w", location, event.args.get("value"))
            )
        elif kind == "r":
            per_proc.setdefault(event.node, []).append(("r", location))
    if not per_proc:
        return []
    width = n_procs if n_procs is not None else max(per_proc) + 1
    return [per_proc.get(proc, []) for proc in range(width)]


def deadlock_counterexample(
    processes: Sequence[Sequence[Tuple]],
    protocol: str,
    owners: Optional[Dict[str, int]] = None,
    kind: str = "deadlock",
    description: str = "",
    seed: int = 0,
    max_schedules: int = 400,
    max_drops: int = 3,
    max_steps: int = 400,
    events: Sequence[TraceEvent] = (),
):
    """Search a window for a schedule that blocks (or crashes) again.

    A bounded random walk over :class:`~repro.mc.scheduler.ControlledRun`
    schedules with a message-drop budget.  The explorer's own
    ``evaluate_outcome`` deliberately treats blocked-under-drops as a
    non-violation (losing a message *should* block a reliable-delivery
    protocol), so the incident search accepts those outcomes directly
    and assembles the :class:`Counterexample` by hand.  Returns ``None``
    on budget exhaustion.
    """
    from repro.mc.counterexample import Counterexample
    from repro.mc.program import make_spec
    from repro.mc.scheduler import ControlledRun

    window = [list(ops) for ops in processes]
    if not any(window):
        return None
    spec = make_spec(window, protocol=protocol, owners=owners)
    rng = random.Random(f"flight/{seed}")
    fallback = None
    for schedule in range(max_schedules):
        run = ControlledRun(spec, max_drops=max_drops)
        steps = 0
        while not run.done and steps < max_steps:
            choices = run.actions()
            if not choices:
                break
            run.apply(rng.choice(choices))
            steps += 1
        outcome = run.outcome()
        blocked = not outcome.completed and outcome.crashed is None
        crashed = outcome.crashed is not None
        hit = crashed if kind == "crash" else blocked
        if not hit:
            if kind == "crash" and blocked and fallback is None:
                fallback = outcome
            continue
        return Counterexample(
            spec=spec,
            trace=outcome.trace,
            kind="crash" if crashed else "deadlock",
            model=None,
            description=description
            or f"flight-recorder {kind} reproduction (schedule {schedule})",
            history_text=outcome.history.to_text(),
            verdicts={},
            events=tuple(event.to_jsonable() for event in events),
        )
    if fallback is not None:
        return Counterexample(
            spec=spec,
            trace=fallback.trace,
            kind="deadlock",
            model=None,
            description=description or "flight-recorder crash window (blocked)",
            history_text=fallback.history.to_text(),
            verdicts={},
            events=tuple(event.to_jsonable() for event in events),
        )
    return None


class FlightRecorder:
    """Dump-on-incident controller over the plane's shard rings.

    Parameters
    ----------
    protocol:
        Explorer protocol name for window specs (``"causal"``,
        ``"broadcast"``, ...) — the cluster's model under test.
    n_procs:
        Process count (fixes window width even when a quiet node never
        committed an op inside the ring horizon).
    owners:
        Location-ownership pins forwarded to ``make_spec``.
    monitor:
        Optional :class:`~repro.monitor.monitor.CausalStreamMonitor`;
        when an incident is a monitor violation its replay window (which
        provably contains a violating program) is preferred over the
        ring reconstruction.
    """

    def __init__(
        self,
        protocol: str,
        n_procs: int,
        owners: Optional[Dict[str, int]] = None,
        monitor=None,
        seed: int = 0,
    ):
        self.protocol = protocol
        self.n_procs = n_procs
        self.owners = owners
        self.monitor = monitor
        self.seed = seed
        self.shards: List[Any] = []
        #: (reason, detail, ring snapshot) per trigger, trigger order.
        self.incidents: List[Tuple[str, str, List[TraceEvent]]] = []

    def watch(self, shard) -> None:
        """Register one :class:`~repro.obs.plane.shard.NodeShard`."""
        self.shards.append(shard)

    def ring_snapshot(self) -> List[TraceEvent]:
        """All shards' retained events, merged in (seq-per-shard) order.

        Cross-shard order here is best effort (shard seq then node) —
        the counterexample's *replayability* rests on per-process order
        inside the spec, which per-shard rings preserve exactly.
        """
        merged: List[Tuple[Tuple, TraceEvent]] = []
        for shard in self.shards:
            node_key = (
                (0, shard.node) if isinstance(shard.node, int) else (1, 0)
            )
            for event in shard.ring_events():
                merged.append(((event.seq, node_key), event))
        merged.sort(key=lambda pair: pair[0])
        return [event for _, event in merged]

    # ------------------------------------------------------------------
    # Triggers (called by the runtime / monitor glue in plane.py)
    # ------------------------------------------------------------------
    def trigger(self, reason: str, detail: str = "") -> None:
        """Record an incident *now* (snapshot the rings at the moment
        of the fault, not at shutdown when they may have moved on)."""
        self.incidents.append((reason, detail, self.ring_snapshot()))

    @property
    def triggered(self) -> bool:
        return bool(self.incidents)

    # ------------------------------------------------------------------
    # Dumps (post-run; searches may take explorer-scale time)
    # ------------------------------------------------------------------
    def dump(self, incident: Optional[int] = None):
        """Turn one recorded incident into a replayable counterexample.

        Defaults to the first incident (the root cause; later triggers
        are usually cascade).  Returns ``None`` when nothing triggered
        or the reproduction search exhausted its budget.
        """
        if not self.incidents:
            return None
        reason, detail, ring = self.incidents[incident or 0]
        if reason == "violation" and self.monitor is not None:
            return self._dump_violation(detail, ring)
        window = window_from_events(ring, n_procs=self.n_procs)
        return deadlock_counterexample(
            window,
            protocol=self.protocol,
            owners=self.owners,
            kind="crash" if reason == "crash" else "deadlock",
            description=f"flight recorder: {reason}"
            + (f" ({detail})" if detail else ""),
            seed=self.seed,
            events=ring,
        )

    def _dump_violation(self, detail: str, ring: List[TraceEvent]):
        from dataclasses import replace as dc_replace

        from repro.monitor.report import violation_counterexample

        found = violation_counterexample(
            self.monitor,
            protocol=self.protocol,
            owners=self.owners,
            seed=self.seed,
            with_trace=False,
        )
        if found is None:
            return None
        return dc_replace(
            found,
            description=f"flight recorder: monitor violation"
            + (f" ({detail})" if detail else ""),
            events=tuple(event.to_jsonable() for event in ring),
        )

    def dump_to(self, path, incident: Optional[int] = None):
        """Dump and save; returns the counterexample (or None)."""
        cex = self.dump(incident)
        if cex is not None:
            cex.save(path)
        return cex
