"""The :class:`TelemetryPlane` — sharded observation, assembled.

One object wires the whole tentpole together:

* :meth:`attach` replaces the single-collector attachment with
  *per-node shards*: every protocol node (and the central server, when
  present) emits into its own bounded
  :class:`~repro.obs.plane.shard.NodeShard`; runtime-level emitters
  (kernel/network/codec) share an ``"rt"`` shard.  The cluster's
  ``obs`` slot is claimed with the aggregator's *output* collector, so
  everything downstream that asks the cluster for "its collector" —
  ``attach_monitor``, the exporters, the CLI — transparently reads the
  merged stream.
* On a live cluster the shards stream over a
  :class:`~repro.obs.plane.sideband.LiveSideband` (dedicated sockets;
  the runtime starts/stops it around the run via its ``plane`` hook).
  On a simulator cluster the shards loop back into the aggregator
  directly — same frames, same gap accounting, fully deterministic —
  which is what the tier-1 tests exercise.
* :meth:`enable_flight` arms a
  :class:`~repro.obs.plane.flight.FlightRecorder` over the shard
  rings; the runtime's timeout/crash hooks and the monitor's verdict
  callback trigger it.

The plane is one-shot per cluster, mutually exclusive with
``attach_obs`` — the same discipline as the single-collector path.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional

from repro.errors import ProtocolError
from repro.obs.collector import TraceCollector
from repro.obs.plane.aggregator import TelemetryAggregator
from repro.obs.plane.flight import FlightRecorder
from repro.obs.plane.frames import TelemetryFrame
from repro.obs.plane.shard import (
    DEFAULT_FLUSH_EVERY,
    DEFAULT_RING_CAPACITY,
    NodeShard,
)
from repro.obs.plane.sideband import DEFAULT_HEARTBEAT, LiveSideband

__all__ = ["TelemetryPlane"]

#: Shard id for runtime-level emitters (kernel, network, codec).
RUNTIME_SHARD = "rt"


class TelemetryPlane:
    """Per-node telemetry shards merging into one causal trace.

    Parameters
    ----------
    out:
        The merged-trace collector (fresh one by default).  Exporters
        read ``plane.out.events``; monitors subscribe to ``plane.out``.
    ring_capacity / flush_every:
        Forwarded to every shard.
    heartbeat:
        Live sideband idle-flush period.
    wall_offsets:
        Optional ``{shard_id: seconds}`` map of artificial wall-clock
        offsets — the skew-estimation tests' injection point.
    """

    def __init__(
        self,
        out: Optional[TraceCollector] = None,
        ring_capacity: int = DEFAULT_RING_CAPACITY,
        flush_every: int = DEFAULT_FLUSH_EVERY,
        heartbeat: float = DEFAULT_HEARTBEAT,
        wall_offsets: Optional[Dict[Any, float]] = None,
    ):
        self.out = out if out is not None else TraceCollector()
        self.aggregator = TelemetryAggregator(out=self.out)
        self.ring_capacity = ring_capacity
        self.flush_every = flush_every
        self.heartbeat = heartbeat
        self.wall_offsets = dict(wall_offsets or {})
        self.shards: Dict[Any, NodeShard] = {}
        self.sideband: Optional[LiveSideband] = None
        self.flight: Optional[FlightRecorder] = None
        self.dashboard = None
        self.monitor = None
        self.cluster = None
        self.live = False
        self._sim_drop: Dict[Any, int] = {}

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------
    def attach(self, cluster) -> "TelemetryPlane":
        """Shard-attach to a cluster (live or simulated).

        Live clusters get the socket sideband (started by the runtime);
        simulator clusters loop frames straight into the aggregator.
        """
        if cluster.obs is not None:
            raise ProtocolError(
                "cluster already has observability attached; "
                "the telemetry plane is mutually exclusive with attach_obs"
            )
        self.cluster = cluster
        # Live detection by driver surface, not class (avoids importing
        # the runtime package here): only AsyncioRuntime has a socket
        # transport.
        self.live = hasattr(cluster.sim, "transport")

        for node in cluster.nodes:
            shard = self._make_shard(node.node_id, cluster)
            node.obs = shard
            node.store.obs = shard
        if cluster.server is not None:
            shard = self._make_shard(cluster.server.node_id, cluster)
            cluster.server.obs = shard
            cluster.server.store.obs = shard
        rt_shard = self._make_shard(RUNTIME_SHARD, cluster)
        cluster.sim.obs = rt_shard
        cluster.network.obs = rt_shard
        if cluster.network.codec is not None:
            cluster.network.codec.obs = rt_shard

        # Claim the cluster's one-shot obs slot with the *merged*
        # collector: attach_monitor, exporters and the CLI all ask the
        # cluster for its collector, and the aggregated stream is this
        # cluster's trace.  Also enforces mutual exclusion the same way
        # attach_obs itself does.
        cluster._obs = self.out

        if self.live:
            runtime = cluster.runtime
            self.sideband = LiveSideband(
                self.aggregator,
                transport=runtime.transport,
                heartbeat=self.heartbeat,
            )
            runtime.plane = self
        else:
            for shard in self.shards.values():
                self.aggregator.add_source(shard.node)
                shard.sink = self._loopback_sink(shard.node)
        return self

    def _make_shard(self, key: Any, cluster) -> NodeShard:
        shard = NodeShard(
            key,
            metrics=self.out.metrics,
            ring_capacity=self.ring_capacity,
            flush_every=self.flush_every,
            wall_offset=self.wall_offsets.get(key, 0.0),
        )
        shard.bind(cluster.sim)
        if self.live:
            shard.bind_wall(time.monotonic)
        self.shards[key] = shard
        return shard

    # ------------------------------------------------------------------
    # Simulator loopback (deterministic tier-1 path)
    # ------------------------------------------------------------------
    def _loopback_sink(self, node: Any):
        def sink(frame: TelemetryFrame) -> None:
            drops = self._sim_drop.get(node, 0)
            if drops > 0:
                # The frame consumed its sequence number at the shard;
                # dropping it here is the loopback twin of sideband
                # frame loss — a detectable, countable gap.
                self._sim_drop[node] = drops - 1
                return
            self.aggregator.feed(frame)

        return sink

    def sim_drop_next_frames(self, node: Any, count: int = 1) -> None:
        """Deterministically lose ``count`` loopback frames (tests)."""
        self._sim_drop[node] = self._sim_drop.get(node, 0) + count

    def finish(self) -> None:
        """Simulator-mode end of run: flush, reconcile, close the merge.

        (Live runs do the equivalent inside the runtime teardown via
        :meth:`stop_live`.)
        """
        for shard in self.shards.values():
            shard.flush()
            shard.sink = None
        for shard in self.shards.values():
            self.aggregator.reconcile(shard.node, shard.frames_cut, shard._seq)
        self.aggregator.close()
        self._export_gauges()

    def _export_gauges(self) -> None:
        """Publish merge/loss counters into the shared metrics registry."""
        metrics = self.out.metrics
        agg = self.aggregator
        metrics.gauge("plane.frames_merged").set(agg.frames_merged)
        metrics.gauge("plane.events_merged").set(agg.events_merged)
        metrics.gauge("plane.frames_lost").set(agg.frames_lost)
        metrics.gauge("plane.events_lost").set(agg.events_lost)
        if self.sideband is not None:
            metrics.gauge("plane.sideband_bytes").set(
                self.sideband.sideband_bytes
            )

    # ------------------------------------------------------------------
    # Live lifecycle (called by AsyncioRuntime around the run)
    # ------------------------------------------------------------------
    async def start_live(self) -> None:
        await self.sideband.start(list(self.shards.values()))
        if self.dashboard is not None:
            self.dashboard.monitor = self.monitor
            self.dashboard.start(self)

    async def stop_live(self) -> None:
        if self.dashboard is not None and self.dashboard._task is not None:
            self.dashboard._task.cancel()
        await self.sideband.stop()
        self._export_gauges()
        if self.dashboard is not None:
            # Final frame *after* the drain, so the closing numbers
            # include everything the merge reconciled at teardown.
            await self.dashboard.stop()

    def on_timeout(self, blocked: List[str]) -> None:
        """Runtime hook: the live run blew its wall-clock deadline."""
        if self.flight is not None:
            self.flight.trigger("timeout", f"blocked: {', '.join(blocked)}")

    def on_crash(self, detail: str) -> None:
        """Runtime hook: a delivery or task crashed the run."""
        if self.flight is not None:
            self.flight.trigger("crash", detail)

    # ------------------------------------------------------------------
    # Flight recorder + monitor glue
    # ------------------------------------------------------------------
    def enable_flight(
        self,
        owners: Optional[Dict[str, int]] = None,
        seed: int = 0,
    ) -> FlightRecorder:
        """Arm the flight recorder over this plane's shard rings."""
        if self.cluster is None:
            raise ProtocolError("attach the plane to a cluster first")
        self.flight = FlightRecorder(
            protocol=self.cluster.protocol,
            n_procs=self.cluster.n_nodes,
            owners=owners,
            monitor=self.monitor,
            seed=seed,
        )
        for shard in self.shards.values():
            self.flight.watch(shard)
        return self.flight

    def watch_monitor(self, monitor) -> None:
        """Trigger the flight recorder on streaming-monitor violations.

        Chains onto the monitor's ``on_verdict`` callback (preserving
        any existing one) so the ring snapshot is taken at the moment
        of the violating read, not at shutdown.
        """
        self.monitor = monitor
        if self.flight is not None:
            self.flight.monitor = monitor
        previous = monitor.on_verdict

        def hook(verdict) -> None:
            if previous is not None:
                previous(verdict)
            if not verdict.ok and self.flight is not None:
                self.flight.trigger(
                    "violation", getattr(verdict, "reason", "") or ""
                )

        monitor.on_verdict = hook

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        payload = {
            "shards": len(self.shards),
            "live": self.live,
            "aggregator": self.aggregator.stats(),
            "frames_cut": sum(s.frames_cut for s in self.shards.values()),
            "events_emitted": sum(s._seq for s in self.shards.values()),
        }
        if self.sideband is not None:
            payload["sideband"] = self.sideband.stats()
        if self.flight is not None:
            payload["incidents"] = [
                {"reason": reason, "detail": detail, "ring_events": len(ring)}
                for reason, detail, ring in self.flight.incidents
            ]
        return payload
