"""Per-node collector shards — the local half of the telemetry plane.

A :class:`NodeShard` *is* a :class:`~repro.obs.collector.TraceCollector`
(every ``obs.emit`` guard in the tree works against it unchanged), but
instead of accumulating an unbounded in-process event list it:

* keeps the last ``ring_capacity`` events in a bounded ring — the
  flight recorder's raw material, sized so a crash dump is always
  cheap and always recent;
* batches events into :class:`~repro.obs.plane.frames.TelemetryFrame`
  objects and hands them to a ``sink`` callable every ``flush_every``
  events (the live sideband's outbound queue, or the loopback used by
  simulator runs and tests).

The shard never blocks the emitting protocol code: ``sink`` is a plain
synchronous callable that enqueues (the sideband's writer task does the
socket I/O), and a shard with no sink behaves exactly like a
``keep_events=False`` collector plus a ring.

Shard-local sequence numbers are the loss-accounting substrate: the
shard's ``_seq`` (inherited from the collector) numbers every event it
ever saw, frames record the ``[first_seq, first_seq+n)`` range they
carry, and the aggregator cross-checks both so any dropped frame shows
up as a counted gap rather than silence.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, List, Optional

from repro.obs.collector import TraceCollector
from repro.obs.events import TraceEvent
from repro.obs.metrics import MetricsRegistry
from repro.obs.plane.frames import TelemetryFrame

__all__ = ["NodeShard"]

#: Default ring size — the flight recorder's "last N causal events".
DEFAULT_RING_CAPACITY = 256

#: Default batch size before a frame is cut.
DEFAULT_FLUSH_EVERY = 32


class NodeShard(TraceCollector):
    """Bounded, frame-flushing collector owned by one node.

    Parameters
    ----------
    node:
        Shard identity (node id, ``"server"``, or ``"rt"``).
    sink:
        Callable receiving each cut :class:`TelemetryFrame`; None for a
        free-standing shard (ring only).
    ring_capacity:
        Events retained for the flight recorder.
    flush_every:
        Batch size; a frame is cut as soon as this many events are
        pending.  :meth:`flush` cuts a partial frame on demand (the
        sideband heartbeat calls it so idle shards still advance the
        aggregator's watermark).
    wall_offset:
        Added to every wall stamp this shard produces — test hook for
        exercising the aggregator's skew estimation without actually
        skewing a clock.
    """

    def __init__(
        self,
        node: Any,
        sink: Optional[Callable[[TelemetryFrame], None]] = None,
        metrics: Optional[MetricsRegistry] = None,
        ring_capacity: int = DEFAULT_RING_CAPACITY,
        flush_every: int = DEFAULT_FLUSH_EVERY,
        wall_offset: float = 0.0,
    ):
        super().__init__(metrics=metrics, keep_events=False)
        self.node = node
        self.sink = sink
        self.ring: Deque[TraceEvent] = deque(maxlen=ring_capacity)
        self.flush_every = max(1, int(flush_every))
        self.wall_offset = wall_offset
        self.frames_cut = 0
        self._pending: List[TraceEvent] = []
        self._pending_first_seq = 0

    def emit(self, category: str, name: str, **kwargs: Any) -> TraceEvent:
        event = super().emit(category, name, **kwargs)
        if event.wall is not None and self.wall_offset:
            event.wall += self.wall_offset
        self.ring.append(event)
        if not self._pending:
            self._pending_first_seq = event.seq
        self._pending.append(event)
        if len(self._pending) >= self.flush_every:
            self.flush()
        return event

    def flush(self) -> Optional[TelemetryFrame]:
        """Cut a frame from pending events and push it to the sink.

        Always cuts — an empty frame (``n_events=0``) when nothing is
        pending, which is the heartbeat that carries the shard's wall
        clock to the aggregator and lets idle shards vote in the
        watermark merge instead of stalling it.  Returns the frame (or
        None when there is no sink *and* nothing pending, where a frame
        would serve nobody).
        """
        if not self._pending and self.sink is None:
            return None
        self.frames_cut += 1
        frame = TelemetryFrame(
            node=self.node,
            frame_seq=self.frames_cut,
            first_seq=self._pending_first_seq if self._pending else 0,
            n_events=len(self._pending),
            sent_wall=self._now_wall(),
            events=list(self._pending),
        )
        self._pending.clear()
        if self.sink is not None:
            self.sink(frame)
        return frame

    def _now_wall(self) -> float:
        base = self._wall() if self._wall is not None else 0.0
        return base + self.wall_offset

    def ring_events(self) -> List[TraceEvent]:
        """Flight-recorder view: the retained tail, oldest first."""
        return list(self.ring)

    def pending_events(self) -> int:
        """Events emitted but not yet framed (test/diagnostic hook)."""
        return len(self._pending)
