"""``repro.obs.plane`` — the distributed telemetry plane.

Sharded observation for multi-endpoint runs: per-node ring-buffered
collector shards (:mod:`~repro.obs.plane.shard`), a framed sideband
channel separate from the protocol sockets
(:mod:`~repro.obs.plane.frames`, :mod:`~repro.obs.plane.sideband`), a
causally coherent merge (:mod:`~repro.obs.plane.aggregator`), the
``repro top`` dashboard (:mod:`~repro.obs.plane.dashboard`) and the
dump-on-incident flight recorder (:mod:`~repro.obs.plane.flight`).
See DESIGN.md Section 4.12.
"""

from repro.obs.plane.aggregator import TelemetryAggregator
from repro.obs.plane.dashboard import Dashboard, DashboardState, collect, render
from repro.obs.plane.flight import (
    FlightRecorder,
    deadlock_counterexample,
    window_from_events,
)
from repro.obs.plane.frames import (
    TelemetryFrame,
    decode_frame,
    encode_frame,
    split_frames,
)
from repro.obs.plane.plane import TelemetryPlane
from repro.obs.plane.shard import NodeShard
from repro.obs.plane.sideband import LiveSideband

__all__ = [
    "TelemetryAggregator",
    "TelemetryFrame",
    "TelemetryPlane",
    "NodeShard",
    "LiveSideband",
    "FlightRecorder",
    "Dashboard",
    "DashboardState",
    "collect",
    "render",
    "encode_frame",
    "decode_frame",
    "split_frames",
    "window_from_events",
    "deadlock_counterexample",
]
