"""The :class:`TelemetryAggregator` — per-node streams to one trace.

The aggregation problem (PAPERS.md, "On the Limits of Causal
Observation in Shared-Memory Systems"): each shard delivers its own
events in emission order, but nothing orders events *across* shards
except (a) the vector clocks the events already carry and (b) wall
clocks of unknown relative skew.  The aggregator produces a single
stream that is

* **per-source FIFO** — events from one shard are released in shard
  order, always (this is the property the streaming monitor's
  soundness actually depends on: ``CausalStreamMonitor`` derives its
  own happens-before from program order plus reads-from, so *any*
  per-process-ordered interleaving yields identical verdicts);
* **causally coherent** — when vector clocks order two pending head
  events, the causally smaller one is released first, so downstream
  exporters see a linear extension of happens-before rather than an
  arbitrary shuffle;
* **skew-corrected** — concurrent (clock-incomparable) heads are tie
  broken by wall time minus the per-node skew estimate, then by
  ``(node, seq)`` for determinism.

Skew estimation is NTP's one-way half: every frame carries the shard's
send wall time; ``sent_wall - recv_wall`` observed at the aggregator is
(true skew − network delay), so its *maximum* over frames approaches
the true skew from below as delay approaches its floor.  We subtract
that estimate from each node's wall stamps before comparing.  This is
an estimate, not truth — which is exactly why it is only a tie-break
for events the clocks already declare concurrent, never an override of
a causal order.

Loss accounting: frames and events are sequence-numbered at the shard.
A missing frame or a hole in the event range increments ``frames_lost``
/ ``events_lost`` and appends a human-readable entry to ``gaps``.  The
merged stream also receives a ``plane.gap`` event so the loss is in the
trace itself — telemetry loss is *reported*, never silent.

Releasing: an event is held until every other open source has either a
pending event or a watermark (latest corrected wall seen) past the
candidate's corrected wall — the standard streaming watermark bargain.
Heartbeat frames advance watermarks, so idle shards do not stall the
merge; :meth:`close`/:meth:`drain` release everything at end of run.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.obs.collector import TraceCollector
from repro.obs.events import TraceEvent
from repro.obs.plane.frames import TelemetryFrame

__all__ = ["TelemetryAggregator", "SourceState"]


class SourceState:
    """Aggregator-side bookkeeping for one shard stream."""

    __slots__ = (
        "node",
        "queue",
        "next_frame_seq",
        "next_event_seq",
        "watermark",
        "skew",
        "frames_seen",
        "events_seen",
        "closed",
    )

    def __init__(self, node: Any):
        self.node = node
        self.queue: Deque[TraceEvent] = deque()
        self.next_frame_seq = 1
        self.next_event_seq = 1
        #: Latest *corrected* wall time this source is known past.
        self.watermark = float("-inf")
        #: Estimated wall offset of this node relative to the
        #: aggregator (min over frames of sent_wall - recv_wall is a
        #: lower bound; see module docstring).  None until first frame.
        self.skew: Optional[float] = None
        self.frames_seen = 0
        self.events_seen = 0
        self.closed = False

    def corrected(self, wall: Optional[float]) -> float:
        if wall is None:
            return float("-inf")
        return wall - (self.skew or 0.0)


class TelemetryAggregator:
    """Merge per-node telemetry frame streams into one causal trace.

    Parameters
    ----------
    out:
        Destination collector; merged events are replayed into it via
        :meth:`TraceCollector.ingest`, so exporters read ``out.events``
        and the monitor subscribes to ``out`` exactly as they would on
        a direct-attached collector.  A fresh collector by default.
    expected:
        Shard ids that must register before streaming starts; sources
        may also appear dynamically on first frame.
    on_gap:
        Optional callback invoked with each gap description string (the
        dashboard's loss ticker).
    """

    def __init__(
        self,
        out: Optional[TraceCollector] = None,
        expected: Optional[List[Any]] = None,
        on_gap: Optional[Callable[[str], None]] = None,
    ):
        self.out = out if out is not None else TraceCollector()
        self.sources: Dict[Any, SourceState] = {}
        self.on_gap = on_gap
        self.frames_merged = 0
        self.events_merged = 0
        self.frames_lost = 0
        self.events_lost = 0
        self.gaps: List[str] = []
        self._recv_wall: Optional[Callable[[], float]] = None
        for node in expected or ():
            self.add_source(node)

    # ------------------------------------------------------------------
    # Sources
    # ------------------------------------------------------------------
    def add_source(self, node: Any) -> SourceState:
        """Register a shard stream (idempotent)."""
        state = self.sources.get(node)
        if state is None:
            state = self.sources[node] = SourceState(node)
        return state

    def close_source(self, node: Any) -> None:
        """Mark one stream finished; it no longer gates the merge."""
        state = self.sources.get(node)
        if state is not None:
            state.closed = True
        self._release()

    def bind_recv_wall(self, source: Callable[[], float]) -> None:
        """Wall-clock source for frame-arrival stamps (skew input)."""
        self._recv_wall = source

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def feed(self, frame: TelemetryFrame, recv_wall: Optional[float] = None) -> None:
        """Accept one frame from a shard; merge whatever is releasable.

        ``recv_wall`` defaults to the bound receive clock; passing it
        explicitly makes skew tests deterministic.
        """
        state = self.add_source(frame.node)
        if recv_wall is None and self._recv_wall is not None:
            recv_wall = self._recv_wall()

        # Skew estimate: observed (sent - recv) equals sender skew
        # minus network delay, and delay only ever *lowers* it — so
        # the max of observations approaches true skew from below.
        if recv_wall is not None:
            observed = frame.sent_wall - recv_wall
            if state.skew is None or observed > state.skew:
                state.skew = observed

        # Frame-level gap accounting (dropped frames consume numbers).
        if frame.frame_seq < state.next_frame_seq:
            self._record_gap(
                f"node {frame.node}: duplicate/stale frame {frame.frame_seq} "
                f"(expected {state.next_frame_seq}) — ignored"
            )
            return
        if frame.frame_seq > state.next_frame_seq:
            missing = frame.frame_seq - state.next_frame_seq
            self.frames_lost += missing
            self._record_gap(
                f"node {frame.node}: lost {missing} frame(s) "
                f"[{state.next_frame_seq}..{frame.frame_seq - 1}]"
            )
        state.next_frame_seq = frame.frame_seq + 1
        state.frames_seen += 1
        self.frames_merged += 1

        # Event-level gap accounting inside the surviving stream.
        if frame.n_events:
            if frame.first_seq > state.next_event_seq:
                missing = frame.first_seq - state.next_event_seq
                self.events_lost += missing
                self._record_gap(
                    f"node {frame.node}: lost {missing} event(s) "
                    f"[{state.next_event_seq}..{frame.first_seq - 1}]"
                )
                self._emit_gap_event(frame.node, state.next_event_seq, missing)
            state.next_event_seq = frame.first_seq + frame.n_events
            state.events_seen += frame.n_events
            state.queue.extend(frame.events)

        # Watermark: this source is now known past its send time.
        corrected = state.corrected(frame.sent_wall)
        if corrected > state.watermark:
            state.watermark = corrected

        self._release()

    def reconcile(self, node: Any, frames_cut: int, last_event_seq: int) -> None:
        """End-of-run tail-loss accounting for one source.

        A frame dropped at the very end of a run leaves no later frame
        to reveal the gap, so the transport reports what the shard
        actually produced (``frames_cut`` frames, events up to
        ``last_event_seq``) and anything the merge never saw is booked
        as loss here.
        """
        state = self.add_source(node)
        missing_frames = frames_cut - (state.next_frame_seq - 1)
        if missing_frames > 0:
            self.frames_lost += missing_frames
            self._record_gap(
                f"node {node}: {missing_frames} frame(s) lost at tail "
                f"[{state.next_frame_seq}..{frames_cut}]"
            )
        missing_events = last_event_seq - (state.next_event_seq - 1)
        if missing_events > 0:
            self.events_lost += missing_events
            self._record_gap(
                f"node {node}: {missing_events} event(s) lost at tail "
                f"[{state.next_event_seq}..{last_event_seq}]"
            )
            self._emit_gap_event(node, state.next_event_seq, missing_events)
            state.next_event_seq = last_event_seq + 1
        state.next_frame_seq = max(state.next_frame_seq, frames_cut + 1)

    def drain(self, force: bool = False) -> None:
        """Release pending events; with ``force`` ignore watermarks.

        Called at end of run after every stream closed — whatever is
        still queued must come out, in the best order we can justify.
        """
        if force:
            for state in self.sources.values():
                state.closed = True
        self._release()

    def close(self) -> None:
        """End of run: close every source and flush the merge."""
        self.drain(force=True)

    # ------------------------------------------------------------------
    # The merge
    # ------------------------------------------------------------------
    def _release(self) -> None:
        while True:
            candidate = self._pick_head()
            if candidate is None:
                return
            state, event = candidate
            state.queue.popleft()
            self.events_merged += 1
            self.out.ingest(event)

    def _pick_head(self) -> Optional[Tuple[SourceState, TraceEvent]]:
        """Choose the next releasable head event, or None to wait.

        Eligibility: every open source must either have a queued head
        (so we can compare) or a watermark at/after the winning head's
        corrected wall (so nothing earlier can still arrive from it).
        Among eligible heads, prefer a causally minimal one (vector
        clocks); break ties by corrected wall, then ``(node, seq)``.
        """
        heads: List[Tuple[SourceState, TraceEvent]] = [
            (state, state.queue[0])
            for state in self.sources.values()
            if state.queue
        ]
        if not heads:
            return None

        # Causal minimality first: never release an event while a head
        # that happens-before it is pending.
        minimal = [
            (state, event)
            for state, event in heads
            if not any(
                other is not event and _clock_lt(other.clock, event.clock)
                for _, other in heads
            )
        ]
        minimal.sort(
            key=lambda pair: (
                pair[0].corrected(pair[1].wall),
                _node_sort_key(pair[0].node),
                pair[1].seq,
            )
        )
        state, event = minimal[0]

        # Watermark gate: a silent open source might still deliver an
        # earlier event; hold until its watermark clears the candidate.
        candidate_wall = state.corrected(event.wall)
        for other in self.sources.values():
            if other is state or other.closed or other.queue:
                continue
            if other.watermark < candidate_wall:
                return None
        return state, event

    # ------------------------------------------------------------------
    # Loss reporting
    # ------------------------------------------------------------------
    def _record_gap(self, description: str) -> None:
        self.gaps.append(description)
        if self.on_gap is not None:
            self.on_gap(description)

    def _emit_gap_event(self, node: Any, first_missing: int, count: int) -> None:
        """Materialise the loss in the merged trace itself."""
        self.out.emit(
            "plane",
            "gap",
            node=node if isinstance(node, int) else None,
            source=str(node),
            first_missing=first_missing,
            count=count,
        )

    def stats(self) -> Dict[str, Any]:
        """Aggregation summary (bench/dashboard payload)."""
        return {
            "sources": len(self.sources),
            "frames_merged": self.frames_merged,
            "events_merged": self.events_merged,
            "frames_lost": self.frames_lost,
            "events_lost": self.events_lost,
            "gaps": list(self.gaps),
            "skew_est": {
                str(node): state.skew
                for node, state in sorted(
                    self.sources.items(), key=lambda kv: _node_sort_key(kv[0])
                )
                if state.skew is not None
            },
        }


def _clock_lt(a: Optional[Tuple[int, ...]], b: Optional[Tuple[int, ...]]) -> bool:
    """Strict vector-clock order; unstamped events are incomparable."""
    if a is None or b is None or len(a) != len(b):
        return False
    return all(x <= y for x, y in zip(a, b)) and a != b


def _node_sort_key(node: Any) -> Tuple[int, str]:
    """Total order over shard ids: ints first, then strings."""
    if isinstance(node, int):
        return (0, f"{node:012d}")
    return (1, str(node))
