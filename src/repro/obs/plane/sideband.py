"""The observation sideband — telemetry's own sockets, never protocol's.

The plane's wire rule: telemetry frames travel over a *dedicated*
channel (one aggregator server socket, one client connection per
shard), so attaching observation cannot perturb the protocol sockets'
accounting — ``NetworkStats`` and ``AsyncioRuntime.socket_bytes`` are
byte-identical with the plane on or off, and the bench's v8 section
asserts exactly that.  Sideband traffic is counted separately
(:attr:`LiveSideband.sideband_bytes`).

Mechanically this is a miniature of the live runtime's own transport
(same loop, same framing discipline, same fault surface):

* every :class:`~repro.obs.plane.shard.NodeShard` gets a
  :class:`_ShardLink` — an outbound frame deque drained by a writer
  task over a connection a supervisor keeps alive;
* the aggregator end is one accept-all server; frames are
  self-identifying (each carries its shard id), so there is no hello
  handshake — the reader just splits frames off the stream and feeds
  them with a receive-wall stamp for skew estimation;
* a heartbeat task flushes every shard periodically, so idle shards
  still advance the aggregator's watermark and a quiet node cannot
  stall the merge;
* faults mirror the protocol transport's: :meth:`drop_next_frames`
  loses frames *after* they consumed a frame sequence number (a
  detectable gap), :meth:`kill_connection` aborts a shard's transport
  mid-run (buffered frames lost, supervisor reconnects).

Shutdown drains politely (flush, bounded wait for queues and the
reader to catch up) and then reconciles: any frames cut but never
merged are counted as tail loss, so even a gap at the very end of a
run — which no later frame can reveal — is reported, never silent.
"""

from __future__ import annotations

import asyncio
import os
import tempfile
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional

from repro.obs.plane.aggregator import TelemetryAggregator
from repro.obs.plane.frames import TelemetryFrame, encode_frame, split_frames
from repro.obs.plane.shard import NodeShard

__all__ = ["LiveSideband"]

#: How often idle shards are flushed (heartbeat frames; seconds).
DEFAULT_HEARTBEAT = 0.05

#: Shutdown drain deadline (seconds) — how long stop() waits for
#: queued frames to reach the aggregator before reconciling tail loss.
DRAIN_DEADLINE = 2.0


class _ShardLink:
    """One shard's outbound half: frame queue + connection state."""

    __slots__ = (
        "shard", "queue", "wake", "frames_sent", "force_drop",
        "supervisor", "writer_task", "writer",
    )

    def __init__(self, shard: NodeShard):
        self.shard = shard
        self.queue: Deque[TelemetryFrame] = deque()
        self.wake = asyncio.Event()
        self.frames_sent = 0
        self.force_drop = 0
        self.supervisor: Optional[asyncio.Task] = None
        self.writer_task: Optional[asyncio.Task] = None
        self.writer = None

    def enqueue(self, frame: TelemetryFrame) -> None:
        self.queue.append(frame)
        self.wake.set()


class LiveSideband:
    """Dedicated telemetry transport for one live run.

    Parameters
    ----------
    aggregator:
        Destination for every received frame.
    transport:
        ``"uds"`` or ``"tcp"`` — normally mirrored from the runtime so
        the sideband exercises the same socket family as the protocol.
    heartbeat:
        Idle-flush period; 0 disables the heartbeat (tests that drive
        flushes by hand).
    """

    def __init__(
        self,
        aggregator: TelemetryAggregator,
        transport: str = "uds",
        heartbeat: float = DEFAULT_HEARTBEAT,
        reconnect_delay: float = 0.02,
    ):
        self.aggregator = aggregator
        self.transport = transport
        self.heartbeat = heartbeat
        self.reconnect_delay = reconnect_delay
        self.sideband_bytes = 0
        self.frames_dropped = 0
        self.links: Dict[Any, _ShardLink] = {}
        self._server = None
        self._addr: Any = None
        self._tmpdir: Optional[tempfile.TemporaryDirectory] = None
        self._heartbeat_task: Optional[asyncio.Task] = None
        self._reader_tasks: List[asyncio.Task] = []
        self._closing = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self, shards: List[NodeShard]) -> None:
        """Bring the server up and connect every shard's link."""
        self.aggregator.bind_recv_wall(time.monotonic)
        if self.transport == "uds":
            self._tmpdir = tempfile.TemporaryDirectory(prefix="repro-obs-")
            path = os.path.join(self._tmpdir.name, "telemetry.sock")
            self._server = await asyncio.start_unix_server(
                self._handle_stream, path=path
            )
            self._addr = path
        else:
            self._server = await asyncio.start_server(
                self._handle_stream, host="127.0.0.1", port=0
            )
            self._addr = self._server.sockets[0].getsockname()[:2]
        for shard in shards:
            link = _ShardLink(shard)
            self.links[shard.node] = link
            self.aggregator.add_source(shard.node)
            shard.sink = link.enqueue
            link.supervisor = asyncio.ensure_future(self._link_supervisor(link))
        if self.heartbeat > 0:
            self._heartbeat_task = asyncio.ensure_future(self._heartbeat_loop())

    async def stop(self) -> None:
        """Flush, drain, tear down, reconcile tail loss, close merge."""
        # Final flush: frame whatever is still pending on every shard,
        # then detach the sinks so post-run emits cannot race teardown.
        for link in self.links.values():
            link.shard.flush()
            link.shard.sink = None
        await self._drain()
        self._closing = True
        tasks = [self._heartbeat_task] if self._heartbeat_task else []
        for link in self.links.values():
            if link.supervisor is not None:
                tasks.append(link.supervisor)
        for task in tasks:
            task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._reader_tasks):
            task.cancel()
        if self._reader_tasks:
            await asyncio.gather(*self._reader_tasks, return_exceptions=True)
        self._reader_tasks.clear()
        if self._tmpdir is not None:
            self._tmpdir.cleanup()
            self._tmpdir = None
        self._reconcile()
        self.aggregator.close()

    async def _drain(self) -> None:
        """Wait (bounded) for queued frames to arrive at the aggregator.

        Frames lost to a killed connection will never arrive, so besides
        the hard deadline we give up early when the aggregator stops
        making progress — the reconcile step then books the difference
        as tail loss.
        """
        deadline = time.monotonic() + DRAIN_DEADLINE
        last_progress = (time.monotonic(), self.aggregator.frames_merged)
        while time.monotonic() < deadline:
            pending = any(link.queue for link in self.links.values())
            behind = any(
                self.aggregator.sources[node].frames_seen < link.frames_sent
                for node, link in self.links.items()
            )
            if not pending and not behind:
                return
            merged = self.aggregator.frames_merged
            if merged != last_progress[1]:
                last_progress = (time.monotonic(), merged)
            elif not pending and time.monotonic() - last_progress[0] > 0.25:
                return  # stalled: the missing frames are gone for good
            await asyncio.sleep(0.005)

    def _reconcile(self) -> None:
        """Account for tail loss no future frame could ever reveal."""
        for node, link in self.links.items():
            self.aggregator.reconcile(
                node, link.shard.frames_cut, link.shard._seq
            )

    # ------------------------------------------------------------------
    # Faults (the differential tests' telemetry-loss injection)
    # ------------------------------------------------------------------
    def drop_next_frames(self, node: Any, count: int = 1) -> None:
        """Lose the next ``count`` frames from ``node``'s link.

        The frames were already cut (frame_seq consumed), so the
        aggregator sees a numbered gap — deterministic telemetry loss.
        """
        link = self.links[node]
        link.force_drop += count

    def kill_connection(self, node: Any) -> None:
        """Abort ``node``'s sideband transport mid-run.

        Frames buffered in the socket are lost (a gap); the link
        supervisor reconnects and later frames flow again.
        """
        link = self.links[node]
        if link.writer is not None:
            link.writer.transport.abort()

    # ------------------------------------------------------------------
    # Shard side: connection supervision + writer
    # ------------------------------------------------------------------
    async def _link_supervisor(self, link: _ShardLink) -> None:
        while not self._closing:
            try:
                if self.transport == "uds":
                    _, writer = await asyncio.open_unix_connection(self._addr)
                else:
                    host, port = self._addr
                    _, writer = await asyncio.open_connection(host, port)
            except (ConnectionError, OSError):
                await asyncio.sleep(self.reconnect_delay)
                continue
            link.writer = writer
            link.writer_task = asyncio.ensure_future(self._write_loop(link))
            try:
                await asyncio.wait({link.writer_task})
            finally:
                link.writer_task.cancel()
                await asyncio.gather(link.writer_task, return_exceptions=True)
                link.writer = None
                writer.close()
            if self._closing:
                return
            await asyncio.sleep(self.reconnect_delay)

    async def _write_loop(self, link: _ShardLink) -> None:
        writer = link.writer
        try:
            while True:
                while not link.queue:
                    link.wake.clear()
                    await link.wake.wait()
                frame = link.queue.popleft()
                if link.force_drop > 0:
                    link.force_drop -= 1
                    self.frames_dropped += 1
                    continue
                data = encode_frame(frame)
                self.sideband_bytes += len(data)
                link.frames_sent += 1
                writer.write(data)
                await writer.drain()
        except asyncio.CancelledError:
            raise
        except (ConnectionError, OSError):
            return  # connection died; the supervisor reconnects

    async def _heartbeat_loop(self) -> None:
        while True:
            await asyncio.sleep(self.heartbeat)
            for link in self.links.values():
                # Cut a frame even when idle: the heartbeat's wall stamp
                # is what advances this shard's merge watermark.
                link.shard.flush()

    # ------------------------------------------------------------------
    # Aggregator side: the receive stream
    # ------------------------------------------------------------------
    async def _handle_stream(self, reader, writer) -> None:
        self._reader_tasks.append(asyncio.current_task())
        buffer = b""
        try:
            while True:
                chunk = await reader.read(65536)
                if not chunk:
                    return
                buffer += chunk
                frames, buffer = split_frames(buffer)
                now = time.monotonic()
                for frame in frames:
                    self.aggregator.feed(frame, recv_wall=now)
        except (ConnectionError, OSError, asyncio.CancelledError):
            return
        finally:
            writer.close()
            task = asyncio.current_task()
            if task in self._reader_tasks:
                self._reader_tasks.remove(task)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        return {
            "transport": self.transport,
            "sideband_bytes": self.sideband_bytes,
            "frames_dropped": self.frames_dropped,
            "links": len(self.links),
        }
