"""``repro top`` — the live terminal dashboard over the merged stream.

Split the way every testable UI is split: :func:`collect` snapshots a
:class:`DashboardState` from the runtime/plane/monitor objects, and
:func:`render` turns one state into a string — both pure enough to
assert on in tier-1 tests without a TTY or an event loop.  The
:class:`Dashboard` ticker is the only asyncio piece: started by the
plane when the live run comes up, it repaints every ``interval``
seconds (ANSI home-and-clear in TTY mode, plain append in ``--plain``
mode for CI logs) and prints one final frame at teardown.

What the panel shows, and where each number comes from:

* **ops/s** — the merged stream's ``proto.op.commit`` counter (shards
  share the plane's metrics registry, so this ticks in real time, not
  merge time), differenced per repaint interval.
* **per-link rows** — model bytes (``NetworkStats.bytes_by_pair``,
  the simulator-comparable wire model) beside actual socket bytes
  (``AsyncioRuntime.socket_bytes_by_link``) and the outbound queue
  depth, per directed channel.
* **resyncs / drops** — the runtime's codec-resync and dropped-frame
  counters.
* **telemetry** — frames/events merged and lost, per-node skew
  estimates (the plane watching itself).
* **monitor canary** — reads checked and violation count from the
  attached :class:`~repro.monitor.monitor.CausalStreamMonitor`; `OK`
  turns to `VIOLATION` the repaint after a bad read.
* **latency** — p50/p95/p99 over the workload's sampled per-op
  completion latencies.
"""

from __future__ import annotations

import asyncio
import sys
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["DashboardState", "collect", "render", "Dashboard"]

#: ANSI: cursor home + clear-to-end (repaint without scrollback spam).
_REPAINT = "\x1b[H\x1b[J"


class DashboardState:
    """One repaint's worth of numbers (plain attributes, no behaviour)."""

    __slots__ = (
        "elapsed", "ops_total", "ops_rate", "links", "resyncs", "dropped",
        "frames_merged", "frames_lost", "events_merged", "events_lost",
        "skew_est", "gaps", "monitor_reads", "monitor_violations",
        "latency_p50", "latency_p95", "latency_p99", "sideband_bytes",
    )

    def __init__(self) -> None:
        self.elapsed = 0.0
        self.ops_total = 0
        self.ops_rate = 0.0
        #: (src, dst, model_msgs, model_bytes, socket_bytes, queue_depth)
        self.links: List[Tuple[int, int, int, int, int, int]] = []
        self.resyncs = 0
        self.dropped = 0
        self.frames_merged = 0
        self.frames_lost = 0
        self.events_merged = 0
        self.events_lost = 0
        self.skew_est: Dict[str, float] = {}
        self.gaps: List[str] = []
        self.monitor_reads: Optional[int] = None
        self.monitor_violations: Optional[int] = None
        self.latency_p50: Optional[float] = None
        self.latency_p95: Optional[float] = None
        self.latency_p99: Optional[float] = None
        self.sideband_bytes = 0


def _percentile(sorted_values: List[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[index]


def collect(
    runtime,
    plane=None,
    monitor=None,
    latencies: Optional[List[float]] = None,
    prev: Optional[DashboardState] = None,
    interval: float = 0.0,
) -> DashboardState:
    """Snapshot everything the panel shows into one state object."""
    state = DashboardState()
    state.elapsed = runtime.now
    state.resyncs = runtime.resyncs
    state.dropped = runtime.stats.dropped

    pairs = runtime.stats.by_pair
    byte_pairs = runtime.stats.bytes_by_pair
    socket_by_link = getattr(runtime, "socket_bytes_by_link", {})
    queues = getattr(runtime, "_out", {})
    channels = sorted(set(pairs) | set(socket_by_link) | set(queues))
    for src, dst in channels:
        queue = queues.get((src, dst))
        state.links.append(
            (
                src,
                dst,
                pairs.get((src, dst), 0),
                byte_pairs.get((src, dst), 0),
                socket_by_link.get((src, dst), 0),
                len(queue.items) if queue is not None else 0,
            )
        )

    if plane is not None:
        counter = plane.out.metrics.counter("proto.op.commit")
        state.ops_total = counter.value
        agg = plane.aggregator
        state.frames_merged = agg.frames_merged
        state.frames_lost = agg.frames_lost
        state.events_merged = agg.events_merged
        state.events_lost = agg.events_lost
        state.gaps = list(agg.gaps[-3:])
        state.skew_est = {
            str(node): src_state.skew
            for node, src_state in agg.sources.items()
            if src_state.skew is not None
        }
        if plane.sideband is not None:
            state.sideband_bytes = plane.sideband.sideband_bytes
    if prev is not None and interval > 0:
        state.ops_rate = max(0.0, (state.ops_total - prev.ops_total) / interval)

    if monitor is not None:
        state.monitor_reads = monitor.reads_checked
        state.monitor_violations = monitor.n_violations

    if latencies:
        ordered = sorted(latencies)
        state.latency_p50 = _percentile(ordered, 0.50)
        state.latency_p95 = _percentile(ordered, 0.95)
        state.latency_p99 = _percentile(ordered, 0.99)
    return state


def _fmt_bytes(n: int) -> str:
    if n >= 1024 * 1024:
        return f"{n / (1024 * 1024):.1f}M"
    if n >= 1024:
        return f"{n / 1024:.1f}K"
    return str(n)


def render(state: DashboardState, width: int = 78) -> str:
    """One state -> one panel (pure; the tests' entry point)."""
    bar = "─" * width
    lines = [
        f"repro top · t={state.elapsed:6.2f}s · "
        f"ops {state.ops_total} ({state.ops_rate:.0f}/s) · "
        f"resyncs {state.resyncs} · drops {state.dropped}",
        bar,
        "link      msgs   model-B   socket-B   queue",
    ]
    for src, dst, msgs, model_b, sock_b, depth in state.links:
        lines.append(
            f"{src}->{dst:<5} {msgs:6d} {_fmt_bytes(model_b):>9} "
            f"{_fmt_bytes(sock_b):>10} {depth:7d}"
        )
    if not state.links:
        lines.append("  (no traffic yet)")
    lines.append(bar)
    lines.append(
        f"telemetry: frames {state.frames_merged} (lost {state.frames_lost}) "
        f"· events {state.events_merged} (lost {state.events_lost}) "
        f"· sideband {_fmt_bytes(state.sideband_bytes)}B"
    )
    if state.skew_est:
        skews = " ".join(
            f"{node}:{skew * 1000.0:+.2f}ms"
            for node, skew in sorted(state.skew_est.items())
        )
        lines.append(f"skew est:  {skews}")
    for gap in state.gaps:
        lines.append(f"gap:       {gap}")
    if state.monitor_reads is not None:
        verdict = (
            "OK"
            if not state.monitor_violations
            else f"VIOLATION x{state.monitor_violations}"
        )
        lines.append(
            f"monitor:   {verdict} · reads checked {state.monitor_reads}"
        )
    if state.latency_p50 is not None:
        lines.append(
            f"latency:   p50 {state.latency_p50 * 1000.0:.2f}ms · "
            f"p95 {state.latency_p95 * 1000.0:.2f}ms · "
            f"p99 {state.latency_p99 * 1000.0:.2f}ms"
        )
    return "\n".join(lines)


class Dashboard:
    """The asyncio repaint loop (plane-started, plane-stopped)."""

    def __init__(
        self,
        interval: float = 0.2,
        plain: bool = False,
        out=None,
    ):
        self.interval = interval
        self.plain = plain
        self.out = out if out is not None else sys.stdout
        self.latencies: Optional[List[float]] = None
        self.monitor = None
        self.frames_painted = 0
        self.last_state: Optional[DashboardState] = None
        self._task: Optional[asyncio.Task] = None
        self._runtime = None
        self._plane = None

    def start(self, plane) -> None:
        """Begin repainting (called from inside the running loop)."""
        self._plane = plane
        self._runtime = plane.cluster.runtime
        self._task = asyncio.ensure_future(self._loop())

    async def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            await asyncio.gather(self._task, return_exceptions=True)
            self._task = None
        self.paint()  # final frame: the run's closing numbers

    def paint(self) -> None:
        state = collect(
            self._runtime,
            plane=self._plane,
            monitor=self.monitor,
            latencies=self.latencies,
            prev=self.last_state,
            interval=self.interval,
        )
        self.last_state = state
        panel = render(state)
        if self.plain:
            self.out.write(panel + "\n\n")
        else:
            self.out.write(_REPAINT + panel + "\n")
        self.out.flush()
        self.frames_painted += 1

    async def _loop(self) -> None:
        while True:
            self.paint()
            await asyncio.sleep(self.interval)
