"""Telemetry frame codec — the wire format of the observation sideband.

A :class:`TelemetryFrame` is one batch of trace events flushed from a
node's local shard toward the aggregator.  Frames are self-describing
for loss accounting: each carries the shard's id, a per-shard frame
sequence number, and the shard-local event-sequence range it covers, so
the aggregator can tell *exactly* how many frames and events a gap ate
— telemetry loss is reported, never silently absorbed (DESIGN.md
Section 4.12).

The encoding is deliberately boring: UTF-8 JSON behind a 4-byte
big-endian length prefix.  The sideband carries observation data only
— no protocol state — so we trade a few bytes per event for a format
the flight recorder can embed into FORMAT_VERSION-2 counterexamples
and humans can read off the wire with ``xxd``.  Protocol sockets keep
their own (pickled) codec; the two never mix, which is what keeps the
plane's wire accounting invariant testable
(``NetworkStats`` bytes identical with the plane on or off).
"""

from __future__ import annotations

import json
import struct
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.events import TraceEvent

__all__ = [
    "TelemetryFrame",
    "FRAME_HEADER",
    "encode_frame",
    "decode_frame",
    "split_frames",
]

#: Length prefix of an encoded frame on the sideband stream.
FRAME_HEADER = struct.Struct("!I")

#: Hard ceiling on one frame's payload (16 MiB).  A length prefix above
#: this is treated as stream corruption, not a huge frame.
MAX_FRAME_BYTES = 16 * 1024 * 1024


class TelemetryFrame:
    """One shard→aggregator batch.

    Attributes
    ----------
    node:
        Shard identity: a node id (int), ``"server"`` for the central
        server's shard, or ``"rt"`` for the runtime-level shard.
        Normalised to a string on the wire, parsed back on decode.
    frame_seq:
        Per-shard frame counter, starting at 1, incremented for every
        frame *produced* (dropped frames consume a number — that is the
        gap detector).
    first_seq:
        Shard-local ``seq`` of the first event in the batch; 0 when the
        frame is an empty heartbeat.
    n_events:
        Number of events covered.  ``first_seq + n_events - 1`` is the
        last covered shard seq.
    sent_wall:
        Shard's wall clock (``time.monotonic`` domain) at flush time —
        the input to the aggregator's per-node skew estimate.
    events:
        The batch, as :class:`TraceEvent` objects.
    """

    __slots__ = ("node", "frame_seq", "first_seq", "n_events", "sent_wall", "events")

    def __init__(
        self,
        node: Any,
        frame_seq: int,
        first_seq: int,
        n_events: int,
        sent_wall: float,
        events: List[TraceEvent],
    ):
        self.node = node
        self.frame_seq = frame_seq
        self.first_seq = first_seq
        self.n_events = n_events
        self.sent_wall = sent_wall
        self.events = events

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TelemetryFrame(node={self.node!r}, frame_seq={self.frame_seq}, "
            f"first_seq={self.first_seq}, n_events={self.n_events})"
        )

    def to_jsonable(self) -> Dict[str, Any]:
        return {
            "node": _node_key(self.node),
            "fseq": self.frame_seq,
            "first": self.first_seq,
            "n": self.n_events,
            "sw": self.sent_wall,
            "events": [event.to_jsonable() for event in self.events],
        }

    @classmethod
    def from_jsonable(cls, data: Dict[str, Any]) -> "TelemetryFrame":
        return cls(
            node=_node_value(data["node"]),
            frame_seq=int(data["fseq"]),
            first_seq=int(data["first"]),
            n_events=int(data["n"]),
            sent_wall=float(data["sw"]),
            events=[TraceEvent.from_jsonable(item) for item in data.get("events", [])],
        )


def _node_key(node: Any) -> str:
    """Shard id as a wire string (ints keep their decimal form)."""
    return str(node)


def _node_value(key: str) -> Any:
    """Inverse of :func:`_node_key` — decimal strings become ints."""
    try:
        return int(key)
    except (TypeError, ValueError):
        return key


def encode_frame(frame: TelemetryFrame) -> bytes:
    """Frame -> length-prefixed JSON bytes (one sideband write)."""
    payload = json.dumps(
        frame.to_jsonable(), separators=(",", ":"), sort_keys=True
    ).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:  # pragma: no cover - defensive
        raise ValueError(f"telemetry frame too large: {len(payload)} bytes")
    return FRAME_HEADER.pack(len(payload)) + payload


def decode_frame(data: bytes) -> TelemetryFrame:
    """Inverse of :func:`encode_frame` (expects exactly one frame)."""
    frame, rest = _decode_one(data)
    if rest:
        raise ValueError(f"{len(rest)} trailing bytes after frame")
    return frame


def _decode_one(data: bytes) -> Tuple[TelemetryFrame, bytes]:
    if len(data) < FRAME_HEADER.size:
        raise ValueError("short frame: missing length prefix")
    (length,) = FRAME_HEADER.unpack_from(data)
    if length > MAX_FRAME_BYTES:
        raise ValueError(f"corrupt frame length {length}")
    end = FRAME_HEADER.size + length
    if len(data) < end:
        raise ValueError("short frame: truncated payload")
    payload = json.loads(data[FRAME_HEADER.size : end].decode("utf-8"))
    return TelemetryFrame.from_jsonable(payload), data[end:]


def split_frames(buffer: bytes) -> Tuple[List[TelemetryFrame], bytes]:
    """Parse every complete frame out of ``buffer``; return the tail.

    The sideband reader accumulates socket chunks and calls this; a
    partial frame at the end stays in the returned remainder until more
    bytes arrive.
    """
    frames: List[TelemetryFrame] = []
    while len(buffer) >= FRAME_HEADER.size:
        (length,) = FRAME_HEADER.unpack_from(buffer)
        if length > MAX_FRAME_BYTES:
            raise ValueError(f"corrupt frame length {length}")
        end = FRAME_HEADER.size + length
        if len(buffer) < end:
            break
        frame, _ = _decode_one(buffer[:end])
        frames.append(frame)
        buffer = buffer[end:]
    return frames, buffer
