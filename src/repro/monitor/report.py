"""From online violation to replayable counterexample.

The monitor's job ends with a verdict; this module turns the verdict's
*window* into an artifact.  The replay window (the last ``window_ops``
operations per process, program order) is packaged as a
:class:`~repro.mc.program.ProgramSpec` and handed to the explorer: a
bounded random search re-reaches a violation of the same model, the
shrinker minimises it, and the result is a FORMAT_VERSION-2
:class:`~repro.mc.counterexample.Counterexample` with the causal trace
embedded — the exact artifact ``python -m repro.mc replay`` verifies.

The search is sound rather than miraculous: the window provably
contains a violating program (the monitor just watched it violate), but
the explorer must rediscover a schedule exhibiting it.  ``max_schedules``
bounds that search; a ``None`` return means the budget ran out, not
that the violation was spurious.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.monitor.monitor import CausalStreamMonitor

__all__ = ["violation_counterexample"]


def violation_counterexample(
    monitor: CausalStreamMonitor,
    protocol: str,
    owners: Optional[Dict[str, int]] = None,
    model: str = "causal",
    seed: int = 0,
    max_schedules: int = 2000,
    shrink_attempts: int = 200,
    with_trace: bool = True,
):
    """Search the monitor's replay window for a shrunk counterexample.

    Returns a replayable :class:`Counterexample` (format version 2, with
    the violating run's causal trace embedded when ``with_trace``), or
    ``None`` when the window's schedule space exhausts the budget
    without re-exhibiting a ``model`` violation.
    """
    from repro.mc.explore import ExploreConfig
    from repro.mc.program import make_spec
    from repro.mc.shrink import find_violation, shrink

    spec = make_spec(
        monitor.program_window(), protocol=protocol, owners=owners
    )
    config = ExploreConfig(
        strategy="random",
        seed=seed,
        max_schedules=max_schedules,
        expected_model=model,
        stop_on_violation=True,
    )
    found = find_violation(spec, config)
    if found is None or found.model != model:
        return None
    shrunk = shrink(found, config, max_attempts=shrink_attempts)
    return shrunk.with_causal_trace() if with_trace else shrunk
