"""Wiring the monitor onto live clusters, trace files, and histories.

Three ingestion paths, one monitor:

* :func:`attach_monitor` — subscribe to a live cluster's collector (the
  ``repro monitor`` CLI's live-attach mode).  The monitor sees each
  ``proto.op.commit`` the instant it is emitted; the cluster also gets
  the kernel's streaming hook pointed at the subscription so the
  events-per-second accounting covers kernel ticks, not just
  application ops.
* :func:`feed_trace` — replay an exported trace file (``repro trace
  --format json``) or an in-memory event list through the monitor.
* :func:`feed_history` — drive the monitor from an offline
  :class:`~repro.checker.history.History`, round-robin across processes
  (any per-process-ordered interleaving yields the same verdicts; the
  differential harness relies on this).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Optional, Union

from repro.monitor.monitor import CausalStreamMonitor, MonitorResult

__all__ = [
    "MonitorSubscription",
    "attach_monitor",
    "attach_plane_monitor",
    "feed_trace",
    "feed_history",
]


class MonitorSubscription:
    """A monitor attached to one live collector; detachable."""

    def __init__(self, monitor: CausalStreamMonitor, collector, sim=None):
        self.monitor = monitor
        self.collector = collector
        self._sim = sim
        self.kernel_events = 0
        collector.subscribe(monitor.observe, category="proto", name="op.commit")
        if sim is not None:
            sim.stream = self._on_kernel_event

    def _on_kernel_event(self, event) -> None:
        # The kernel streaming hook: every executed ScheduledEvent lands
        # here.  The monitor works purely from op.commit events, so this
        # only counts ticks (the bench's events/sec denominator).
        self.kernel_events += 1

    def detach(self) -> None:
        """Unsubscribe from the collector (and the kernel hook)."""
        self.collector.unsubscribe(self.monitor.observe)
        if self._sim is not None and self._sim.stream == self._on_kernel_event:
            self._sim.stream = None

    def result(self) -> MonitorResult:
        return self.monitor.result()


def attach_monitor(
    cluster,
    monitor: Optional[CausalStreamMonitor] = None,
    collector=None,
    **monitor_kwargs,
) -> MonitorSubscription:
    """Attach a streaming monitor to a live cluster.

    Uses the cluster's already-attached collector when it has one;
    otherwise attaches ``collector`` (or a fresh metrics-only one — the
    monitor does not need the event list, so ``keep_events=False``
    keeps long runs bounded).  Extra keyword arguments go to the
    :class:`CausalStreamMonitor` constructor.
    """
    if cluster.obs is not None:
        collector = cluster.obs
    else:
        if collector is None:
            from repro.obs.collector import TraceCollector

            collector = TraceCollector(keep_events=False)
        cluster.attach_obs(collector)
    if monitor is None:
        monitor = CausalStreamMonitor(
            cluster.n_nodes,
            metrics=monitor_kwargs.pop("metrics", collector.metrics),
            **monitor_kwargs,
        )
    return MonitorSubscription(monitor, collector, sim=cluster.sim)


def attach_plane_monitor(
    plane,
    monitor: Optional[CausalStreamMonitor] = None,
    **monitor_kwargs,
) -> MonitorSubscription:
    """Attach a streaming monitor to a telemetry plane's merged stream.

    The monitor subscribes to the plane's *output* collector — the
    causally ordered merge of every per-node shard — so its verdicts
    are computed from exactly what the aggregator reconstructed, gaps
    and all.  The soundness argument: the merge preserves each
    process's program order (per-source FIFO), and the monitor's
    parking resolves cross-process reads-from ordering, so any
    per-process-ordered interleaving — including the merged one —
    yields the same verdicts as a direct per-node attachment.

    Also registers the monitor with the plane (``watch_monitor``) so a
    violation verdict trips the flight recorder at the moment of the
    bad read.
    """
    if monitor is None:
        monitor = CausalStreamMonitor(
            plane.cluster.n_nodes,
            metrics=monitor_kwargs.pop("metrics", plane.out.metrics),
            **monitor_kwargs,
        )
    subscription = MonitorSubscription(monitor, plane.out, sim=None)
    plane.watch_monitor(monitor)
    return subscription


def feed_trace(
    monitor: CausalStreamMonitor,
    trace: Union[str, Path, Iterable],
) -> MonitorResult:
    """Replay a trace through the monitor and return its verdict.

    ``trace`` may be a path to a ``repro trace --format json`` export, a
    list of serialised event dicts (optionally wrapped in an object with
    an ``"events"`` key, the counterexample layout), or an iterable of
    :class:`~repro.obs.events.TraceEvent` objects.
    """
    from repro.obs.events import TraceEvent

    if isinstance(trace, (str, Path)):
        trace = json.loads(Path(trace).read_text())
    if isinstance(trace, dict):
        trace = trace.get("events", [])
    for item in trace:
        event = (
            TraceEvent.from_jsonable(item) if isinstance(item, dict) else item
        )
        monitor.observe(event)
    return monitor.result()


def feed_history(
    monitor: CausalStreamMonitor, history
) -> MonitorResult:
    """Drive the monitor from an offline history (the differential path).

    Feeds round-robin, one op per process per round, preserving program
    order within each process — the only ordering the live stream
    guarantees.  Parking resolves cross-process reads-from ordering, so
    any such interleaving produces identical verdicts.
    """
    queues: List[List] = [list(ops) for ops in history.processes]
    cursors = [0] * len(queues)
    remaining = sum(len(q) for q in queues)
    while remaining:
        for proc, queue in enumerate(queues):
            cursor = cursors[proc]
            if cursor >= len(queue):
                continue
            op = queue[cursor]
            cursors[proc] = cursor + 1
            remaining -= 1
            monitor.feed_op(
                proc=op.proc,
                kind=op.kind,
                location=op.location,
                value=op.value,
                source=op.write_id if op.is_write else op.read_from,
            )
    return monitor.result()
