"""The streaming causal-consistency monitor — Definition 2, online.

The offline checker (:mod:`repro.checker`) sees a complete history and
can afford global structures; this module answers the same question —
"is every read's value live for it?" — *while the execution runs*, from
the ``proto.op.commit`` event stream, in memory bounded by the causal
*window* rather than the history length.

How it works
------------

**Monitor clocks.**  The monitor assigns every operation its own vector
timestamp over the causality relation the paper defines: program order
union reads-from, transitively closed.  Protocol clocks are useless
here — they order operations by *message* paths the memory abstraction
does not expose, so two application-level concurrent writes can look
ordered.  Each op bumps its issuing process's component; a read then
joins its source's timestamp.  Over an acyclic causality relation these
timestamps characterise it exactly: ``o *-> o'`` iff ``vt(o) <=
vt(o')`` componentwise.

**Parking.**  Events arrive in *commit* order, which interleaves
processes arbitrarily and can even deliver a write's commit after a
commit of a read that used its value (an owner-protocol remote write
commits at the writer only when the W-REPLY lands).  Per-process queues
preserve program order; a write is always processable, a read parks
until its source write has been processed.  The processed sequence is
therefore a linearisation of causality, which is what makes
verdict-at-processing-time equal the offline verdict (DESIGN.md §4.8).
Reads parked forever (a causality cycle, or a truncated stream) are
reported as *unresolved* and fail the run, matching the offline
checker's cycle verdict.

**Verdict.**  For read ``r`` by process ``p`` from write ``w``:
``vt_excl = bump(frontier[p], p)`` is ``r``'s timestamp with its own
reads-from edge excluded (Definition 1 demands the exclusion).  ``w``
is live iff it is concurrent with ``r`` (``vt(w) !<= vt_excl``) or no
*notice* — a processed same-location operation carrying a different
write's value — sits causally between them.  The windowed live-set
computation is memoised in a :class:`~repro.checker.live_values.LiveSetCache`
keyed on the window fingerprint, so repeated windows (the schedule
explorer's dominated interleavings) are classified in O(1).

**Garbage collection.**  Every ``gc_interval`` processed operations the
monitor computes the *minimum frontier* (componentwise min over all
processes' last timestamps).  A notice at or below it has already been
seen by every process, so (a) every candidate write it excludes can
never be live for any future read — those candidates are retired, and a
later read naming one is flagged as a ``dead-source`` violation without
needing the evidence — and (b) the notice itself can never exclude a
future candidate, so it is retired too.  The soundness argument is
DESIGN.md §4.8; the short form is that every future read's
exclusion-timestamp dominates the minimum frontier, so dominated
exclusions keep holding after the evidence is gone.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from time import perf_counter
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    List,
    NamedTuple,
    Optional,
    Set,
    Tuple,
)

from repro.checker.live_values import LiveSetCache
from repro.clocks.arena import HAVE_NUMPY, resolve_backend
from repro.errors import ReproError

if HAVE_NUMPY:
    import numpy as _np
else:  # pragma: no cover - exercised via REPRO_ARENA_BACKEND=python
    _np = None

#: Below this many rows a numpy round trip costs more than the loop.
_VEC_MIN = 8

__all__ = [
    "MonitorOp",
    "MonitorVerdict",
    "MonitorResult",
    "MonitorViolationError",
    "CausalStreamMonitor",
]


def _bump(vt: Tuple[int, ...], proc: int) -> Tuple[int, ...]:
    return vt[:proc] + (vt[proc] + 1,) + vt[proc + 1:]


def _merge(a: Tuple[int, ...], b: Tuple[int, ...]) -> Tuple[int, ...]:
    return tuple(x if x >= y else y for x, y in zip(a, b))


def _leq(a: Tuple[int, ...], b: Tuple[int, ...]) -> bool:
    return all(x <= y for x, y in zip(a, b))


def _tuple_id(source: Any) -> Tuple:
    """Normalise a write identity (JSON turns tuples into lists)."""
    if isinstance(source, list):
        return tuple(source)
    return source


def _is_stamped(write_id: Tuple) -> bool:
    """True for protocol-shaped identities ``(writer, stamp)``.

    Writer stamps increase by one per write, so ``stamp <= max seen``
    decides "already processed" without remembering retired ids.
    Synthetic identities (``("val", loc, v)`` from parsed histories)
    lack the shape and fall back to an explicit killed set.
    """
    return (
        len(write_id) == 2
        and isinstance(write_id[0], int)
        and isinstance(write_id[1], int)
    )


class MonitorOp(NamedTuple):
    """One application-level operation as the monitor sees it.

    ``index`` is the arrival position within ``proc``'s stream — commit
    events arrive in per-process program order (operations block), so it
    coincides with the offline :class:`~repro.checker.history.Operation`
    index.  ``source`` is the write identity: the op's own for a write,
    the reads-from assignment for a read.  A NamedTuple, not a frozen
    dataclass: one is built per streamed op and frozen-dataclass
    ``__init__`` (one ``object.__setattr__`` per field) is measurably
    slower.
    """

    proc: int
    index: int
    kind: str  # "r" | "w"
    location: str
    value: Any
    source: Tuple

    def __str__(self) -> str:
        return f"P{self.proc + 1}.{self.kind}({self.location}){self.value}"


class _NoticeGroup:
    """One process's same-location notices, in processing order.

    Along one process's program order, monitor timestamps are
    componentwise nondecreasing (each op's vt dominates its
    predecessor's), so within a group both "vt <= bound" and
    "bound <= vt" are prefix/suffix properties and binary-searchable.
    That turns the per-read "is any notice causally between my source
    and me?" question from a linear scan over the window into
    O(log |group|) — the difference that keeps the monitor at line rate
    when low-communication phases legitimately grow the window
    (DESIGN.md §4.8: an idle process pins the min-frontier).

    ``last_other[k]`` is the largest index ``j <= k`` whose source
    differs from ``srcs[k]`` (-1 if none): after locating the in-range
    suffix, "does the range hold a notice with a *different* source?"
    is O(1) even when a process read the same write a thousand times.
    """

    __slots__ = ("vts", "srcs", "last_other")

    def __init__(self):
        self.vts: List[Tuple[int, ...]] = []
        self.srcs: List[Tuple] = []
        self.last_other: List[int] = []

    def __len__(self) -> int:
        return len(self.vts)

    def append(self, vt: Tuple[int, ...], src: Tuple) -> None:
        index = len(self.srcs)
        if index == 0:
            self.last_other.append(-1)
        elif self.srcs[index - 1] != src:
            self.last_other.append(index - 1)
        else:
            self.last_other.append(self.last_other[index - 1])
        self.vts.append(vt)
        self.srcs.append(src)

    def count_leq(self, bound: Tuple[int, ...]) -> int:
        """How many leading notices have vt <= bound (prefix property)."""
        vts = self.vts
        lo, hi = 0, len(vts)
        while lo < hi:
            mid = (lo + hi) // 2
            if _leq(vts[mid], bound):
                lo = mid + 1
            else:
                hi = mid
        return lo

    def first_geq(self, bound: Tuple[int, ...]) -> int:
        """First index whose vt >= bound (suffix property)."""
        vts = self.vts
        lo, hi = 0, len(vts)
        while lo < hi:
            mid = (lo + hi) // 2
            if _leq(bound, vts[mid]):
                hi = mid
            else:
                lo = mid + 1
        return lo

    def excludes(
        self,
        source: Tuple,
        source_vt: Tuple[int, ...],
        vt_excl: Tuple[int, ...],
        hi: Optional[int] = None,
    ) -> bool:
        """Any notice with source_vt <= vt <= vt_excl and src != source?

        ``hi`` caps the searched prefix (the GC passes its retirement
        boundary); by default the in-range prefix is located first.
        """
        if hi is None:
            hi = self.count_leq(vt_excl)
        if hi == 0:
            return False
        lo = self.first_geq(source_vt)
        if lo >= hi:
            return False
        # The range [lo, hi) is non-empty; all its vts are causally
        # between source and reader.  Its last entry either has another
        # source, or last_other jumps to the nearest one that does.
        j = hi - 1
        if self.srcs[j] != source:
            return True
        return self.last_other[j] >= lo

    def drop_prefix(self, count: int) -> None:
        """Retire the first ``count`` notices (GC)."""
        self.vts = self.vts[count:]
        srcs = self.srcs = self.srcs[count:]
        last_other = self.last_other = []
        for index, src in enumerate(srcs):
            if index == 0:
                last_other.append(-1)
            elif srcs[index - 1] != src:
                last_other.append(index - 1)
            else:
                last_other.append(last_other[index - 1])

    def items(self):
        """(vt, src) pairs in processing order (cold paths only)."""
        return zip(self.vts, self.srcs)

    def fingerprint(self) -> Tuple:
        """Content key for the live-set memo table."""
        return (tuple(self.vts), tuple(self.srcs))


@dataclass(frozen=True)
class MonitorVerdict:
    """The online liveness verdict of one read.

    ``vt`` is the read's monitor-assigned vector timestamp; ``live`` is
    the *windowed* live set (write identities still in the window —
    concurrent writes that have not committed yet are necessarily
    absent, which cannot change ``ok``: the verdict only needs the
    source's own liveness).  ``causal_past`` is populated on violations:
    the window's writes causally at or below the read, the evidence a
    human (or the shrinker) starts from.
    """

    op: MonitorOp
    ok: bool
    vt: Tuple[int, ...]
    live: Tuple[Tuple, ...]
    reason: str = ""  # "" | "stale-source" | "dead-source"
    causal_past: Tuple[Tuple, ...] = ()

    def explain(self) -> str:
        if self.ok:
            return f"{self.op}: ok"
        return (
            f"{self.op}: VIOLATION ({self.reason}) at vt={self.vt}; "
            f"windowed alpha = {list(self.live)!r}"
        )


class MonitorViolationError(ReproError):
    """Raised in strict mode on the first violating read."""

    def __init__(self, verdict: MonitorVerdict):
        super().__init__(verdict.explain())
        self.verdict = verdict


@dataclass
class MonitorResult:
    """What a finished (or running) monitor concluded."""

    ok: bool
    reads_checked: int
    ops_processed: int
    n_violations: int
    violations: List[MonitorVerdict]
    unresolved: List[MonitorOp]
    max_window: int
    gc_retired: int
    frontier: Tuple[Tuple[int, ...], ...]
    cache_hits: int
    cache_misses: int

    @property
    def first_violation(self) -> Optional[MonitorVerdict]:
        return self.violations[0] if self.violations else None

    def explain(self) -> str:
        if self.ok:
            return (
                f"causal: {self.reads_checked} reads checked, "
                f"window peaked at {self.max_window} ops"
            )
        lines = [v.explain() for v in self.violations]
        if self.unresolved:
            lines.append(
                f"{len(self.unresolved)} unresolved ops "
                f"(cyclic or truncated stream): "
                + ", ".join(str(op) for op in self.unresolved[:8])
            )
        return "\n".join(lines)


class CausalStreamMonitor:
    """Incremental Definition-2 checking over an operation stream.

    Parameters
    ----------
    n_procs:
        Number of application processes (vector-timestamp width).
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`; when given
        the monitor maintains ``monitor.*`` gauges (frontier width,
        window size, events/sec), counters (ops, GC retirements) and an
        ``observe`` latency histogram.  When ``None`` the monitor takes
        no timestamps at all.
    gc_interval:
        Processed-op period of the dominated-prefix collection.
    raise_on_violation:
        Strict mode: raise :class:`MonitorViolationError` on the first
        violating read instead of recording it.
    window_ops:
        Per-process length of the replay window handed to the shrinker
        (:func:`repro.monitor.report.violation_counterexample`).
    live_cache:
        Share a :class:`LiveSetCache` across monitors (the differential
        harness does); one is created when omitted.
    on_verdict:
        Optional callback receiving every read's :class:`MonitorVerdict`
        — the monitor itself only retains violations (bounded memory).
    """

    #: Violations retained in full; beyond this only the count grows.
    VIOLATION_LIMIT = 32

    def __init__(
        self,
        n_procs: int,
        metrics=None,
        gc_interval: int = 64,
        raise_on_violation: bool = False,
        window_ops: int = 64,
        live_cache: Optional[LiveSetCache] = None,
        cache_limit: int = 4096,
        on_verdict: Optional[Callable[[MonitorVerdict], None]] = None,
        backend: Optional[str] = None,
    ):
        if n_procs <= 0:
            raise ReproError(f"need at least one process, got {n_procs}")
        self.n_procs = n_procs
        #: "numpy" or "python" — picks the batched compare paths below.
        self.backend = resolve_backend(backend)
        self._vec = _np is not None and self.backend == "numpy"
        self.metrics = metrics
        self.gc_interval = gc_interval
        self.raise_on_violation = raise_on_violation
        self.window_ops = window_ops
        self.live_cache = live_cache if live_cache is not None else LiveSetCache()
        self.cache_limit = cache_limit
        self.on_verdict = on_verdict

        zero = (0,) * n_procs
        #: Last processed op's timestamp per process (the causal frontier).
        self.frontier: List[Tuple[int, ...]] = [zero] * n_procs
        # Metric objects resolved once: the per-op path must not pay a
        # string-keyed registry lookup per update.
        if metrics is not None:
            self._g_window = metrics.gauge("monitor.window_ops")
            self._g_frontier = metrics.gauge("monitor.frontier_width")
            self._g_rate = metrics.gauge("monitor.events_per_sec")
            self._c_ops = metrics.counter("monitor.ops")
            self._c_gc = metrics.counter("monitor.gc_retired")
            self._c_violations = metrics.counter("monitor.violations")
            self._h_observe = metrics.histogram("monitor.observe_us")
        self._pending: List[Deque[MonitorOp]] = [deque() for _ in range(n_procs)]
        #: location -> {write_id: vt}, insertion-ordered (the candidates).
        self._candidates: Dict[str, Dict[Tuple, Tuple[int, ...]]] = {}
        #: location -> {proc: _NoticeGroup} — processed ops serving
        #: notice, grouped by issuing process so the between-ness test
        #: binary-searches each totally-ordered group instead of
        #: scanning the whole window.
        self._notices: Dict[str, Dict[int, _NoticeGroup]] = {}
        #: Highest protocol stamp processed per writer (dead-source test).
        self._max_stamp: Dict[int, int] = {}
        #: GC-killed ids that lack the (writer, stamp) shape and so fall
        #: outside the _max_stamp test (synthetic histories only; the
        #: protocol stream never feeds these, keeping memory bounded).
        self._killed_odd: Set[Tuple] = set()
        self._init_killed: Set[str] = set()
        self._arrivals: List[int] = [0] * n_procs
        self._program_window: List[Deque[Tuple]] = [
            deque(maxlen=window_ops) for _ in range(n_procs)
        ]
        self._since_gc = 0
        self._obs_seconds = 0.0
        self._timing_tick = 0
        self._ops_synced = 0  # ops already folded into the metrics counter
        #: Incrementally maintained candidates + notices count;
        #: recounting per op would be O(locations).  Parked ops are
        #: counted separately in ``_n_pending``; the window is the sum.
        self._window = 0
        self._n_pending = 0

        self.ops_processed = 0
        self.reads_checked = 0
        self.gc_retired = 0
        self.max_window = 0
        self.n_violations = 0
        self.violations: List[MonitorVerdict] = []

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def observe(self, event) -> None:
        """Stream-subscriber entry point: filter and feed one TraceEvent.

        Register with ``collector.subscribe(monitor.observe)``; every
        event that is not a ``proto.op.commit`` is discarded with two
        string compares.
        """
        if event.category != "proto" or event.name != "op.commit":
            return
        args = event.args
        self.feed_op(
            proc=event.node,
            kind=args["kind"],
            location=args["location"],
            value=args["value"],
            source=_tuple_id(args["source"]),
        )

    #: One in this many feeds is wall-clock timed when metrics are on.
    #: Systematic sampling keeps the latency histogram and the
    #: events/sec estimate honest while keeping two ``perf_counter``
    #: calls per op off the hot path.
    TIMING_SAMPLE = 16

    def feed_op(
        self, proc: int, kind: str, location: str, value: Any, source: Tuple
    ) -> None:
        """Feed one committed operation (program order per process)."""
        if self.metrics is None:
            self._feed(proc, kind, location, value, source)
            return
        self._timing_tick += 1
        if self._timing_tick % self.TIMING_SAMPLE:
            self._feed(proc, kind, location, value, source)
            return
        started = perf_counter()
        try:
            self._feed(proc, kind, location, value, source)
        finally:
            elapsed = perf_counter() - started
            self._obs_seconds += elapsed
            self._h_observe.observe(elapsed * 1e6)

    def _feed(
        self, proc: int, kind: str, location: str, value: Any, source: Tuple
    ) -> None:
        index = self._arrivals[proc]
        self._arrivals[proc] = index + 1
        op = MonitorOp(
            proc=proc, index=index, kind=kind,
            location=location, value=value, source=source,
        )
        if kind == "w":
            self._program_window[proc].append(("w", location, value))
            # Fast path: nothing parked anywhere, so processing this op
            # cannot unblock anything — skip the queue round trip.
            if self._n_pending == 0:
                self._process_write(op)
                return
        else:
            self._program_window[proc].append(("r", location))
            if self._n_pending == 0:
                status = self._source_status(op)
                if status != "wait":
                    self._process_read(op, dead=status == "dead")
                    return
        self._pending[proc].append(op)
        self._n_pending += 1
        self._drain()

    # ------------------------------------------------------------------
    # Kahn-with-parking processing
    # ------------------------------------------------------------------
    def _drain(self) -> None:
        progress = True
        while progress:
            progress = False
            for queue in self._pending:
                while queue:
                    op = queue[0]
                    if op.kind == "w":
                        queue.popleft()
                        self._n_pending -= 1
                        self._process_write(op)
                        progress = True
                        continue
                    status = self._source_status(op)
                    if status == "wait":
                        break  # parks the whole process (program order)
                    queue.popleft()
                    self._n_pending -= 1
                    self._process_read(op, dead=status == "dead")
                    progress = True

    def _source_status(self, op: MonitorOp) -> str:
        source = op.source
        if source[0] == "init":
            return "dead" if op.location in self._init_killed else "ready"
        candidates = self._candidates.get(op.location)
        if candidates is not None and source in candidates:
            return "ready"
        if _is_stamped(source):
            writer, stamp = source
            if stamp <= self._max_stamp.get(writer, -1):
                # The writer has committed past this stamp, so the write
                # was processed and GC retired it: provably dead (§4.8).
                return "dead"
        elif source in self._killed_odd:
            return "dead"
        return "wait"

    def _process_write(self, op: MonitorOp) -> None:
        vt = _bump(self.frontier[op.proc], op.proc)
        self.frontier[op.proc] = vt
        self._touch_location(op.location)
        self._candidates[op.location][op.source] = vt
        self._notice_group(op.location, op.proc).append(vt, op.source)
        self._window += 2  # +candidate +notice
        if _is_stamped(op.source):
            writer, stamp = op.source
            if stamp > self._max_stamp.get(writer, -1):
                self._max_stamp[writer] = stamp
        self._after_process()

    def _process_read(self, op: MonitorOp, dead: bool) -> None:
        vt_excl = _bump(self.frontier[op.proc], op.proc)
        self._touch_location(op.location)
        if dead:
            # The source's timestamp is below every process's frontier
            # (that is why it was retired), so merging it in is a no-op:
            # vt_excl IS the read's exact timestamp.
            ok, vt = False, vt_excl
            reason = "dead-source"
        else:
            source_vt = self._candidates[op.location][op.source]
            ok = self._source_live(op.location, op.source, source_vt, vt_excl)
            vt = _merge(vt_excl, source_vt)
            reason = "" if ok else "stale-source"
        # Verdict objects are built only when someone will see them —
        # the per-read hot path stays allocation-light.  Evidence is
        # snapshotted before the read's own notice lands (the notice
        # would retire other candidates from the reported live set).
        verdict = None
        if not ok or self.on_verdict is not None:
            verdict = MonitorVerdict(
                op=op, ok=ok, vt=vt,
                live=self.windowed_live_set(op.location, vt_excl),
                reason=reason,
                causal_past=() if ok else self._causal_past(vt),
            )
        self.frontier[op.proc] = vt
        self._notice_group(op.location, op.proc).append(vt, op.source)
        self._window += 1  # +notice
        self.reads_checked += 1
        if verdict is not None:
            if self.on_verdict is not None:
                self.on_verdict(verdict)
            if not ok:
                self.n_violations += 1
                if len(self.violations) < self.VIOLATION_LIMIT:
                    self.violations.append(verdict)
                if self.metrics is not None:
                    self._c_violations.inc()
                if self.raise_on_violation:
                    self._after_process()
                    raise MonitorViolationError(verdict)
        self._after_process()

    def _source_live(
        self,
        location: str,
        source: Tuple,
        source_vt: Tuple[int, ...],
        vt_excl: Tuple[int, ...],
    ) -> bool:
        """Is the read's own source live?  The O(notices) fast path.

        Exactly :meth:`windowed_live_set` restricted to one candidate
        (the only one the Definition-2 verdict needs); the full set is
        materialised lazily for verdicts and evidence.  Per notice group
        this is two binary searches and an O(1) source check — the
        monitor's hottest code, deliberately sublinear in the window.
        """
        for own, excl in zip(source_vt, vt_excl):
            if own > excl:
                return True  # concurrent -> live (condition 1)
        groups = self._notices[location]
        for group in groups.values():
            if group.excludes(source, source_vt, vt_excl):
                return False
        return True

    def _touch_location(self, location: str) -> None:
        """Materialise the location: init candidate plus its notice list.

        The notice list persists (possibly empty) once created so the
        processing paths can index it directly instead of paying a
        ``setdefault`` with a fresh-list allocation per op.
        """
        if location not in self._candidates:
            self._candidates[location] = {}
            self._notices[location] = {}
            if location not in self._init_killed:
                self._candidates[location][("init", location)] = (
                    (0,) * self.n_procs
                )
                self._window += 1

    def _notice_group(self, location: str, proc: int) -> _NoticeGroup:
        groups = self._notices[location]
        group = groups.get(proc)
        if group is None:
            group = groups[proc] = _NoticeGroup()
        return group

    # ------------------------------------------------------------------
    # Windowed live sets (Definition 1 over the window, memoised)
    # ------------------------------------------------------------------
    def _live_positions(
        self, location: str, vt_excl: Tuple[int, ...]
    ) -> Tuple[int, ...]:
        candidates = self._candidates.get(location) or {}
        groups = self._notices.get(location) or {}
        key = (
            location,
            vt_excl,
            tuple(candidates.items()),
            tuple(
                (proc, group.fingerprint())
                for proc, group in sorted(groups.items())
            ),
        )
        table = self.live_cache._table
        positions = table.get(key)
        if positions is not None:
            self.live_cache.hits += 1
            return positions
        self.live_cache.misses += 1
        dominated = None
        if self._vec and len(candidates) >= _VEC_MIN:
            # Condition 1 in one batched compare: a candidate is live
            # outright unless its timestamp is componentwise below the
            # exclusion bound.  Only dominated rows go on to the notice
            # query, so the scalar leq disappears from the common case.
            matrix = _np.array(list(candidates.values()), dtype=_np.uint64)
            bound = _np.array(vt_excl, dtype=_np.uint64)
            dominated = (matrix <= bound).all(axis=1)
        live: List[int] = []
        for position, (write_id, write_vt) in enumerate(candidates.items()):
            below = (
                bool(dominated[position]) if dominated is not None
                else _leq(write_vt, vt_excl)
            )
            if not below:
                live.append(position)  # concurrent -> live (condition 1)
                continue
            # Condition 2: any notice strictly between write and read
            # carrying a different write's value kills liveness.  The
            # leq tests are effectively strict: timestamps are unique,
            # the write's own notice is excluded by the source check,
            # and no processed op's timestamp can equal vt_excl (it
            # bumps a component no processed op has reached).
            excluded = any(
                group.excludes(write_id, write_vt, vt_excl)
                for group in groups.values()
            )
            if not excluded:
                live.append(position)
        positions = tuple(live)
        if len(table) >= self.cache_limit:
            self.live_cache.clear()
        table[key] = positions
        return positions

    def windowed_live_set(
        self, location: str, vt_excl: Tuple[int, ...]
    ) -> Tuple[Tuple, ...]:
        """The window's live write identities for an exclusion timestamp."""
        candidates = self._candidates.get(location)
        if not candidates:
            return ()
        ids = list(candidates.keys())
        return tuple(
            ids[p] for p in self._live_positions(location, vt_excl)
        )

    def _causal_past(self, vt: Tuple[int, ...]) -> Tuple[Tuple, ...]:
        """Window writes causally at-or-below ``vt`` (violation evidence)."""
        past = []
        bound = (
            _np.array(vt, dtype=_np.uint64) if self._vec else None
        )
        for location, candidates in self._candidates.items():
            if bound is not None and len(candidates) >= _VEC_MIN:
                matrix = _np.array(
                    list(candidates.values()), dtype=_np.uint64
                )
                mask = (matrix <= bound).all(axis=1)
                for position, (write_id, write_vt) in enumerate(
                    candidates.items()
                ):
                    if mask[position]:
                        past.append((location, write_id, write_vt))
                continue
            for write_id, write_vt in candidates.items():
                if _leq(write_vt, vt):
                    past.append((location, write_id, write_vt))
        return tuple(past)

    # ------------------------------------------------------------------
    # GC of causally-dominated prefixes
    # ------------------------------------------------------------------
    def _after_process(self) -> None:
        self.ops_processed += 1
        window = self._window + self._n_pending
        if window > self.max_window:
            self.max_window = window
        self._since_gc += 1
        if self._since_gc >= self.gc_interval:
            self._since_gc = 0
            self._collect()
            if self.metrics is not None:
                self._sync_metrics()

    def _sync_metrics(self) -> None:
        """Fold current state into the gauges (GC cadence, and on result).

        Gauges are point-in-time samples; refreshing them every op would
        put registry work on the hot path for values nobody reads that
        often.  They are exact as of the last GC boundary or
        :meth:`result` call.
        """
        self._c_ops.inc(self.ops_processed - self._ops_synced)
        self._ops_synced = self.ops_processed
        self._g_window.set(self._window + self._n_pending)
        self._g_frontier.set(self.frontier_width())
        if self._obs_seconds > 0.0:
            # _obs_seconds holds the 1-in-TIMING_SAMPLE sampled feeds.
            self._g_rate.set(
                self.ops_processed
                / (self._obs_seconds * self.TIMING_SAMPLE)
            )

    def _collect(self) -> None:
        """Retire notices below the min-frontier and the writes they kill."""
        if self._vec and self.n_procs >= _VEC_MIN:
            min_frontier = tuple(
                int(v)
                for v in _np.asarray(
                    self.frontier, dtype=_np.uint64
                ).min(axis=0)
            )
        else:
            min_frontier = tuple(
                min(vt[c] for vt in self.frontier)
                for c in range(self.n_procs)
            )
        retired = 0
        for location, groups in self._notices.items():
            # Within each group the retirable notices (vt <= minf) are a
            # prefix; its length is one binary search.
            boundaries = {
                proc: boundary
                for proc, group in groups.items()
                if (boundary := group.count_leq(min_frontier))
            }
            if not boundaries:
                continue
            # A candidate killed by a retirable notice is itself below
            # the min-frontier (w <= n <= minf), so only frontier-
            # dominated candidates need the exclusion query at all.
            candidates = self._candidates.get(location)
            if candidates:
                if self._vec and len(candidates) >= _VEC_MIN:
                    matrix = _np.array(
                        list(candidates.values()), dtype=_np.uint64
                    )
                    bound = _np.array(min_frontier, dtype=_np.uint64)
                    mask = (matrix <= bound).all(axis=1)
                    dominated = [
                        pair
                        for position, pair in enumerate(candidates.items())
                        if mask[position]
                    ]
                else:
                    dominated = [
                        (write_id, write_vt)
                        for write_id, write_vt in candidates.items()
                        if _leq(write_vt, min_frontier)
                    ]
                for write_id, write_vt in dominated:
                    if any(
                        groups[proc].excludes(
                            write_id, write_vt, min_frontier, hi=boundary
                        )
                        for proc, boundary in boundaries.items()
                    ):
                        del candidates[write_id]
                        if write_id[0] == "init":
                            self._init_killed.add(location)
                        elif not _is_stamped(write_id):
                            self._killed_odd.add(write_id)
                        retired += 1
            for proc, boundary in boundaries.items():
                groups[proc].drop_prefix(boundary)
                retired += boundary
            for proc in [p for p, g in groups.items() if not g.vts]:
                del groups[proc]
        if retired:
            self.gc_retired += retired
            self._window -= retired
            if self.metrics is not None:
                self._c_gc.inc(retired)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def window_size(self) -> int:
        """Ops currently held: candidates + notices + parked."""
        return self._window + self._n_pending

    def frontier_width(self) -> int:
        """Total componentwise spread between process frontiers."""
        width = 0
        for c in range(self.n_procs):
            column = [vt[c] for vt in self.frontier]
            width += max(column) - min(column)
        return width

    def program_window(self) -> List[List[Tuple]]:
        """The replay window: recent ops per process, program order."""
        return [list(window) for window in self._program_window]

    def result(self) -> MonitorResult:
        """The verdict so far (final once the stream has ended)."""
        if self.metrics is not None:
            self._sync_metrics()
        unresolved = [op for queue in self._pending for op in queue]
        return MonitorResult(
            ok=self.n_violations == 0 and not unresolved,
            reads_checked=self.reads_checked,
            ops_processed=self.ops_processed,
            n_violations=self.n_violations,
            violations=list(self.violations),
            unresolved=unresolved,
            max_window=self.max_window,
            gc_retired=self.gc_retired,
            frontier=tuple(self.frontier),
            cache_hits=self.live_cache.hits,
            cache_misses=self.live_cache.misses,
        )
