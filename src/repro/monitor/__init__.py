"""Streaming online causal-consistency monitoring (DESIGN.md §4.8).

The observability layer records what happened; this package judges it
*while it happens*: :class:`CausalStreamMonitor` consumes the
``proto.op.commit`` event stream and maintains a bounded causal window
— per-process frontiers, candidate writes, exclusion notices — over
which every read is checked against Definition 2 the moment it commits.
On the full explorer corpus its verdicts coincide with the offline
:func:`repro.checker.check_causal` (the differential property test pins
this), and on a violation it hands its replay window to the
:mod:`repro.mc` shrinker for a replayable counterexample.
"""

from repro.monitor.monitor import (
    CausalStreamMonitor,
    MonitorOp,
    MonitorResult,
    MonitorVerdict,
    MonitorViolationError,
)
from repro.monitor.report import violation_counterexample
from repro.monitor.stream import (
    MonitorSubscription,
    attach_monitor,
    attach_plane_monitor,
    feed_history,
    feed_trace,
)

__all__ = [
    "CausalStreamMonitor",
    "MonitorOp",
    "MonitorResult",
    "MonitorVerdict",
    "MonitorViolationError",
    "MonitorSubscription",
    "attach_monitor",
    "attach_plane_monitor",
    "feed_history",
    "feed_trace",
    "violation_counterexample",
]
