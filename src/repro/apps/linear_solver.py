"""The synchronous iterative linear solver of Figure 6 / Section 4.1.

``n`` worker processes plus one coordinator solve ``Ax = b`` by Jacobi
iteration over shared memory.  Worker ``P_i`` owns ``x[i]`` and its two
handshake flags ``complete[i]`` / ``changed[i]``; the constant inputs
``A`` and ``b`` live at the coordinator and are declared read-only (the
paper's footnote-2 enhancement), so they are fetched once and never
invalidated.

The per-phase protocol is the paper's verbatim:

    worker ``P_i``:                      coordinator:
      t_i := compute from cached x         for all i: wait complete_i = T
      complete_i := T                      for all i: complete_i := F
      wait complete_i = F                  for all i: wait changed_i = T
      x_i := t_i                           for all i: changed_i := F
      changed_i := T
      wait changed_i = F

The same program text runs unchanged on the causal, atomic and
central-server memories — the paper's Section 4.1 claim — and the
harness records messages per phase so the ``2n + 6`` versus
``>= 3n + 5`` comparison can be measured rather than asserted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from repro.apps.waiting import oracle_wait, polling_wait
from repro.errors import ReproError
from repro.memory import Namespace, location_array
from repro.protocols.base import DSMCluster
from repro.sim.latency import LatencyModel
from repro.sim.trace import CounterSnapshot

__all__ = ["LinearSystem", "SolverResult", "SynchronousSolver", "solver_namespace"]


@dataclass(frozen=True)
class LinearSystem:
    """A dense linear system ``Ax = b`` with a known exact solution."""

    a: np.ndarray
    b: np.ndarray

    def __post_init__(self) -> None:
        n = self.a.shape[0]
        if self.a.shape != (n, n) or self.b.shape != (n,):
            raise ReproError(
                f"shape mismatch: A{self.a.shape} b{self.b.shape}"
            )

    @property
    def n(self) -> int:
        """Dimension of the system."""
        return self.a.shape[0]

    @classmethod
    def random(cls, n: int, seed: int = 0, dominance: float = 1.5) -> "LinearSystem":
        """A random strictly diagonally dominant system.

        Diagonal dominance guarantees Jacobi convergence — and, for the
        asynchronous solver, Chazan–Miranker chaotic-relaxation
        convergence.
        """
        rng = np.random.default_rng(seed)
        a = rng.uniform(-1.0, 1.0, size=(n, n))
        row_sums = np.abs(a).sum(axis=1) - np.abs(np.diag(a))
        np.fill_diagonal(a, dominance * row_sums + 1.0)
        b = rng.uniform(-1.0, 1.0, size=n)
        return cls(a=a, b=b)

    def exact_solution(self) -> np.ndarray:
        """The reference solution via ``numpy.linalg.solve``."""
        return np.linalg.solve(self.a, self.b)

    def residual(self, x: np.ndarray) -> float:
        """Infinity-norm residual ``||Ax - b||``."""
        return float(np.max(np.abs(self.a @ x - self.b)))


@dataclass
class SolverResult:
    """Everything a solver run measured."""

    protocol: str
    n: int
    iterations: int
    solution: np.ndarray
    exact: np.ndarray
    max_error: float
    residual: float
    total_messages: int
    per_phase_messages: List[int]
    steady_messages_per_processor: float
    messages_by_kind: Dict[str, int]
    wait_mode: str
    elapsed_sim_time: float
    #: Labelled cumulative counter snapshots, one per Jacobi iteration
    #: (``label="iteration=k"``) — feed :func:`repro.analysis.snapshot_table`.
    phase_snapshots: List = field(default_factory=list)

    def summary(self) -> str:
        """One-line result for reports."""
        return (
            f"{self.protocol:9s} n={self.n:3d} iters={self.iterations:3d} "
            f"err={self.max_error:.2e} msgs/proc/iter="
            f"{self.steady_messages_per_processor:.1f}"
        )


def solver_namespace(n: int, read_only_inputs: bool = True) -> Namespace:
    """The solver's ownership map.

    Worker ``i`` owns ``x[i]``, ``complete[i]`` and ``changed[i]``; the
    coordinator (node ``n``) owns the inputs ``A``/``b`` and the startup
    flag.  ``read_only_inputs=False`` is the E8 ablation: without the
    exemption, the causal protocol's invalidation sweeps evict the
    cached inputs every phase.
    """

    def owner_fn(unit: str) -> int:
        base = unit.split("[", 1)[0].split("@", 1)[0]
        if base in ("x", "complete", "changed"):
            index = int(unit.split("[", 1)[1].split("]", 1)[0])
            return index
        return n  # A, b, ready live at the coordinator

    read_only = ("A[", "b[") if read_only_inputs else ()
    return Namespace(n + 1, owner_fn=owner_fn, read_only=read_only)


class SynchronousSolver:
    """Runs Figure 6 on a chosen memory model and measures it.

    Parameters
    ----------
    system:
        The linear system to solve.
    protocol:
        ``"causal"``, ``"atomic"`` or ``"central"``.
    iterations:
        Number of Jacobi phases (the paper's loop bound).
    wait_mode:
        ``"oracle"`` reproduces the paper's idealised message accounting
        (one remote read per handshake step); ``"polling"`` uses the
        literal discard-and-retry loop with ``poll_period``.
    read_only_inputs:
        The footnote-2 enhancement (see :func:`solver_namespace`).
    batching / delta_stamps:
        The wire-level fast path knobs, passed through to
        :class:`~repro.protocols.base.DSMCluster` (causal protocol).
    """

    def __init__(
        self,
        system: LinearSystem,
        protocol: str = "causal",
        iterations: int = 10,
        seed: int = 0,
        wait_mode: str = "oracle",
        poll_period: float = 1.0,
        read_only_inputs: bool = True,
        record_history: bool = False,
        latency: Optional[LatencyModel] = None,
        batching: bool = False,
        delta_stamps: bool = False,
    ):
        if protocol not in ("causal", "atomic", "central"):
            raise ReproError(
                f"synchronous solver supports causal/atomic/central, "
                f"not {protocol!r}"
            )
        if wait_mode not in ("oracle", "polling"):
            raise ReproError(f"unknown wait mode {wait_mode!r}")
        self.system = system
        self.protocol = protocol
        self.iterations = iterations
        self.wait_mode = wait_mode
        self.poll_period = poll_period
        self.n = system.n
        self.cluster = DSMCluster(
            n_nodes=self.n + 1,
            protocol=protocol,
            seed=seed,
            latency=latency,
            namespace=solver_namespace(self.n, read_only_inputs),
            record_history=record_history,
            batching=batching,
            delta_stamps=delta_stamps,
        )
        self._phase_snapshots: List[CounterSnapshot] = []

    # ------------------------------------------------------------------
    # Processes
    # ------------------------------------------------------------------
    def _wait(self, api, location, predicate):
        if self.wait_mode == "oracle":
            return oracle_wait(self.cluster, api, location, predicate)
        return polling_wait(api, location, predicate, period=self.poll_period)

    def _worker(self, api, i: int):
        n = self.n
        yield from self._wait(api, "ready", lambda v: bool(v))
        for _ in range(self.iterations):
            xs: Dict[int, float] = {}
            for j in range(n):
                if j != i:
                    xs[j] = yield api.read(location_array("x", j))
            row: List[float] = []
            for j in range(n):
                row.append((yield api.read(location_array("A", i, j))))
            b_i = yield api.read(location_array("b", i))
            acc = b_i
            for j in range(n):
                if j != i:
                    acc -= row[j] * xs[j]
            t_i = acc / row[i]
            yield api.write(location_array("complete", i), True)
            yield from self._wait(
                api, location_array("complete", i), lambda v: not v
            )
            yield api.write(location_array("x", i), t_i)
            yield api.write(location_array("changed", i), True)
            yield from self._wait(
                api, location_array("changed", i), lambda v: not v
            )

    def _coordinator(self, api):
        n = self.n
        for i in range(n):
            for j in range(n):
                yield api.write(location_array("A", i, j), float(self.system.a[i, j]))
            yield api.write(location_array("b", i), float(self.system.b[i]))
        yield api.write("ready", True)
        for k in range(self.iterations):
            for i in range(n):
                yield from self._wait(
                    api, location_array("complete", i), lambda v: bool(v)
                )
            for i in range(n):
                yield api.write(location_array("complete", i), False)
            for i in range(n):
                yield from self._wait(
                    api, location_array("changed", i), lambda v: bool(v)
                )
            for i in range(n):
                yield api.write(location_array("changed", i), False)
            self._phase_snapshots.append(
                self.cluster.stats.snapshot(
                    self.cluster.sim.now, label=f"iteration={k}"
                )
            )

    # ------------------------------------------------------------------
    # Running / measuring
    # ------------------------------------------------------------------
    def run(self) -> SolverResult:
        """Execute the solver and gather all measurements."""
        for i in range(self.n):
            self.cluster.spawn(i, self._worker, i, name=f"worker-{i}")
        self.cluster.spawn(self.n, self._coordinator, name="coordinator")
        self.cluster.run()
        solution = self._read_back_solution()
        exact = self.system.exact_solution()
        per_phase = self._per_phase_totals()
        steady = self._steady_messages_per_processor(per_phase)
        return SolverResult(
            protocol=self.protocol,
            n=self.n,
            iterations=self.iterations,
            solution=solution,
            exact=exact,
            max_error=float(np.max(np.abs(solution - exact))),
            residual=self.system.residual(solution),
            total_messages=self.cluster.stats.total,
            per_phase_messages=per_phase,
            steady_messages_per_processor=steady,
            messages_by_kind=dict(self.cluster.stats.by_kind),
            wait_mode=self.wait_mode,
            elapsed_sim_time=self.cluster.sim.now,
            phase_snapshots=list(self._phase_snapshots),
        )

    def _read_back_solution(self) -> np.ndarray:
        values = np.zeros(self.n)
        for j in range(self.n):
            location = location_array("x", j)
            if self.protocol == "central":
                node = self.cluster.server
            else:
                node = self.cluster.nodes[j]
            assert node is not None
            entry = node.store.get(location)
            assert entry is not None
            values[j] = entry.value
        return values

    def _per_phase_totals(self) -> List[int]:
        totals: List[int] = []
        previous_total = 0
        for snapshot in self._phase_snapshots:
            totals.append(snapshot.total - previous_total)
            previous_total = snapshot.total
        return totals

    def _steady_messages_per_processor(self, per_phase: List[int]) -> float:
        # Skip the first two phases (cold caches, input distribution) and
        # the final phase (no successor phase to absorb its prefetches).
        steady = per_phase[2:-1] if len(per_phase) > 3 else per_phase
        if not steady:
            return 0.0
        return sum(steady) / len(steady) / self.n
