"""The paper's applications, programmed against the DSM API.

:mod:`repro.apps.waiting`
    The ``wait(B)`` primitive of Figure 6 under a cache: oracle waiting
    (reproduces the paper's idealised message counts) and periodic
    polling with ``discard`` (the liveness mechanism of Section 3.1).
:mod:`repro.apps.linear_solver`
    The synchronous iterative solver of Figure 6 / Section 4.1, runnable
    unchanged on causal, atomic and central-server memories.
:mod:`repro.apps.async_solver`
    The asynchronous (chaotic relaxation) variant the paper delegates to
    its companion TR — no handshakes at all.
:mod:`repro.apps.dictionary`
    The distributed dictionary of Section 4.2 with owner-favoured
    resolution of concurrent writes.
:mod:`repro.apps.bulletin`
    A causal bulletin board (body-then-announce reply threads) — a third
    application beyond the paper, the classic causal-consistency
    workload.
:mod:`repro.apps.workload`
    Random read/write workload generation for property-based protocol
    safety tests.
"""

from repro.apps.linear_solver import (
    LinearSystem,
    SolverResult,
    SynchronousSolver,
)
from repro.apps.async_solver import AsynchronousSolver
from repro.apps.bulletin import BoardView, BulletinBoard, Post
from repro.apps.dictionary import (
    FREE,
    DictionaryCluster,
    DictionaryView,
)
from repro.apps.waiting import oracle_wait, polling_wait
from repro.apps.workload import WorkloadConfig, run_random_execution

__all__ = [
    "LinearSystem",
    "SynchronousSolver",
    "SolverResult",
    "AsynchronousSolver",
    "FREE",
    "DictionaryCluster",
    "DictionaryView",
    "BulletinBoard",
    "BoardView",
    "Post",
    "oracle_wait",
    "polling_wait",
    "WorkloadConfig",
    "run_random_execution",
]
