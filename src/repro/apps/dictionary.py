"""The distributed dictionary of Section 4.2 (the Fischer–Michael problem).

An association table maintained cooperatively by ``n`` processes with
*no synchronization*: ``insert``, ``delete`` and ``lookup`` never lock
or handshake.  The representation is the paper's: a two-dimensional
array ``dict`` with one row per process and ``m`` columns; the
distinguished value ``FREE`` (the paper's lambda) marks an empty slot.

* ``insert_i(x)`` writes ``x`` into a free slot of *row i* — row ``i``
  is owned by ``P_i`` and only ``P_i`` writes non-free values there, so
  concurrent inserts never conflict;
* ``lookup_i(x)`` scans all rows (ensuring knowledge monotonicity:
  reading any slot written by ``P_j`` pulls ``P_j``'s causal past into
  ``P_i``'s view);
* ``delete_i(x)`` scans for ``x`` and overwrites it with ``FREE`` —
  possibly in *another process's row*.

The one race — a stale delete writing ``FREE`` over a slot the owner has
since reused for a new item — is resolved by the paper's policy:
"writes by the owner are always favored when resolving concurrent
writes" (:class:`repro.protocols.policies.OwnerFavoured`).  The stale
delete arrives at the owner with a stamp concurrent to the owner's
newer insert and is rejected; the dictionary stays correct.

The paper's standing restrictions are the workload's responsibility:
(R1) inserted items are unique; (R2) a delete follows its corresponding
insert in the deleter's view.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.errors import ReproError
from repro.memory import Namespace, location_array
from repro.protocols.base import DSMCluster, WriteOutcome
from repro.protocols.policies import ConflictPolicy, OwnerFavoured
from repro.sim.latency import LatencyModel

__all__ = [
    "FREE",
    "DictionaryView",
    "DictionaryCluster",
    "RandomDictionaryRun",
    "run_random_dictionary",
]

#: The paper's distinguished free marker (lambda).
FREE = "λ"


@dataclass(frozen=True)
class DictionaryView:
    """One process's view of the dictionary at some instant."""

    proc: int
    items: FrozenSet[Any]
    slots: Tuple[Tuple[int, int, Any], ...]

    def __contains__(self, item: Any) -> bool:
        return item in self.items


class DictionaryCluster:
    """``n`` dictionary processes over a causal DSM.

    All operation methods are *generators*: drive them from application
    processes with ``yield from`` (e.g. ``found = yield from
    dictionary.lookup(api, "k")``).

    Parameters
    ----------
    n, m:
        Rows (processes) and columns (capacity per process).
    policy:
        Owner-side concurrent-write resolution; defaults to the paper's
        :class:`OwnerFavoured`.  Passing
        :class:`~repro.protocols.policies.LastWriterWins` reproduces the
        anomaly the policy exists to prevent (a stale delete destroying
        a newer insert) — used by tests and the E10 benchmark.
    """

    def __init__(
        self,
        n: int,
        m: int,
        seed: int = 0,
        policy: Optional[ConflictPolicy] = None,
        latency: Optional[LatencyModel] = None,
        record_history: bool = True,
    ):
        if n <= 0 or m <= 0:
            raise ReproError(f"need positive dimensions, got n={n} m={m}")
        self.n = n
        self.m = m
        self.policy = policy if policy is not None else OwnerFavoured()
        self.cluster = DSMCluster(
            n_nodes=n,
            protocol="causal",
            seed=seed,
            latency=latency,
            namespace=Namespace.by_first_index(n),
            policy=self.policy,
            initial_value=FREE,
            record_history=record_history,
        )

    # ------------------------------------------------------------------
    # Locations
    # ------------------------------------------------------------------
    def slot(self, row: int, column: int) -> str:
        """The location name of one dictionary slot."""
        return location_array("dict", row, column)

    # ------------------------------------------------------------------
    # Operations (generators; paper Section 4.2)
    # ------------------------------------------------------------------
    def insert(self, api, item: Any):
        """Insert ``item`` into a free slot of the caller's own row.

        Only local reads and one local write — zero messages, zero
        synchronization.  Returns the (row, column) used.
        """
        if item == FREE:
            raise ReproError("cannot insert the free marker itself")
        row = api.node_id
        for column in range(self.m):
            value = yield api.read(self.slot(row, column))
            if value == FREE:
                yield api.write(self.slot(row, column), item)
                return (row, column)
        raise ReproError(f"row {row} is full (m={self.m})")

    def lookup(self, api, item: Any):
        """Scan every row; True iff ``item`` is visible in this view."""
        for row in range(self.n):
            for column in range(self.m):
                value = yield api.read(self.slot(row, column))
                if value == item:
                    return True
        return False

    def delete(self, api, item: Any):
        """Delete ``item`` wherever this view sees it.

        Writes ``FREE`` over every slot currently holding ``item`` in
        the caller's view.  A write into another process's row may be
        rejected by the owner-favoured policy if the owner concurrently
        reused the slot — exactly the safe outcome.  Returns the number
        of slots this process freed (0 if the item was not visible).
        """
        freed = 0
        for row in range(self.n):
            for column in range(self.m):
                value = yield api.read(self.slot(row, column))
                if value == item:
                    outcome: WriteOutcome = yield api.write(
                        self.slot(row, column), FREE
                    )
                    if outcome.applied:
                        freed += 1
        return freed

    def view(self, api):
        """The caller's complete current view of the dictionary."""
        slots: List[Tuple[int, int, Any]] = []
        items: Set[Any] = set()
        for row in range(self.n):
            for column in range(self.m):
                value = yield api.read(self.slot(row, column))
                if value != FREE:
                    slots.append((row, column, value))
                    items.add(value)
        return DictionaryView(
            proc=api.node_id, items=frozenset(items), slots=tuple(slots)
        )

    def refresh(self, api) -> None:
        """Discard every cached slot so the next scan fetches fresh copies.

        This is the paper's ``discard``-for-liveness: without it, two
        processes that cache the whole table and only write their own
        rows would never see each other's updates.
        """
        for row in range(self.n):
            if row == api.node_id:
                continue
            for column in range(self.m):
                api.discard(self.slot(row, column))

    # ------------------------------------------------------------------
    # Ground truth (harness-side, not part of the distributed program)
    # ------------------------------------------------------------------
    def authoritative_items(self) -> FrozenSet[Any]:
        """The owners' current rows — the converged contents."""
        items: Set[Any] = set()
        for row in range(self.n):
            node = self.cluster.nodes[row]
            for column in range(self.m):
                entry = node.store.get(self.slot(row, column))
                assert entry is not None
                if entry.value != FREE:
                    items.add(entry.value)
        return frozenset(items)

    # ------------------------------------------------------------------
    # Cluster passthroughs
    # ------------------------------------------------------------------
    def spawn(self, node_id: int, process, *args, name: str = ""):
        """Spawn an application process on one dictionary node."""
        return self.cluster.spawn(node_id, process, *args, name=name)

    def run(self, **kwargs) -> None:
        """Run the simulation to completion."""
        self.cluster.run(**kwargs)

    @property
    def stats(self):
        """Network message statistics."""
        return self.cluster.stats

    def history(self):
        """The recorded operation history (checker-ready)."""
        return self.cluster.history()


@dataclass
class RandomDictionaryRun:
    """Outcome of :func:`run_random_dictionary`."""

    converged: bool
    final_views: List[DictionaryView]
    authoritative: FrozenSet[Any]
    total_messages: int
    rejected_writes: int
    inserts: int
    deletes: int
    lookups: int
    history_is_causal: Optional[bool] = None


def run_random_dictionary(
    n: int = 4,
    m: int = 6,
    ops_per_proc: int = 12,
    seed: int = 0,
    policy: Optional[ConflictPolicy] = None,
    check_history: bool = True,
) -> RandomDictionaryRun:
    """Drive a random mixed workload and check eventual convergence.

    Each process performs a random sequence of inserts (unique items,
    R1), lookups, and deletes of items it has seen (R2), then quiesces:
    it refreshes its cache and takes a final view.  The run *converges*
    if every final view equals the authoritative owner-row contents.
    """
    dictionary = DictionaryCluster(
        n=n, m=m, seed=seed, policy=policy, record_history=check_history
    )
    counters = {"inserts": 0, "deletes": 0, "lookups": 0}
    final_views: Dict[int, DictionaryView] = {}

    def process(api, proc: int):
        rng = dictionary.cluster.sim.derived_rng(f"dict-proc-{proc}")
        next_item = 0
        seen: List[Any] = []
        inserted = 0
        for _ in range(ops_per_proc):
            choice = rng.random()
            if choice < 0.45 and inserted < m - 1:
                item = f"p{proc}k{next_item}"
                next_item += 1
                yield from dictionary.insert(api, item)
                seen.append(item)
                inserted += 1
                counters["inserts"] += 1
            elif choice < 0.75 or not seen:
                dictionary.refresh(api)
                probe = (
                    rng.choice(seen)
                    if seen and rng.random() < 0.5
                    else f"p{rng.randrange(n)}k{rng.randrange(max(next_item, 1))}"
                )
                found = yield from dictionary.lookup(api, probe)
                if found and probe not in seen:
                    seen.append(probe)
                counters["lookups"] += 1
            else:
                victim = rng.choice(seen)
                seen.remove(victim)
                yield from dictionary.delete(api, victim)
                if victim == f"p{proc}k{next_item - 1}":
                    inserted -= 1
                counters["deletes"] += 1
    def snapshot(api, proc: int):
        # Quiescence: fetch fresh copies of everything and snapshot.
        dictionary.refresh(api)
        final_views[proc] = yield from dictionary.view(api)

    for proc in range(n):
        dictionary.spawn(proc, process, proc, name=f"dict-{proc}")
    dictionary.run()
    # All mutators have finished; now every process takes a fresh view.
    for proc in range(n):
        dictionary.spawn(proc, snapshot, proc, name=f"dict-view-{proc}")
    dictionary.run()

    authoritative = dictionary.authoritative_items()
    views = [final_views[proc] for proc in range(n)]
    converged = all(view.items == authoritative for view in views)
    rejected = sum(
        node.stats.rejected_writes for node in dictionary.cluster.nodes
    )
    history_ok: Optional[bool] = None
    if check_history:
        from repro.checker import check_causal

        history_ok = check_causal(dictionary.history()).ok
    return RandomDictionaryRun(
        converged=converged,
        final_views=views,
        authoritative=authoritative,
        total_messages=dictionary.stats.total,
        rejected_writes=rejected,
        inserts=counters["inserts"],
        deletes=counters["deletes"],
        lookups=counters["lookups"],
        history_is_causal=history_ok,
    )
