"""Random read/write workloads for protocol safety testing.

The paper proves its protocol correct on paper; the reproduction proves
it mechanically: every execution the simulator can produce must satisfy
Definition 2.  This module generates seeded random workloads — mixed
reads, writes, and discards over a shared location pool, under jittery
latencies — runs them on a chosen protocol, and returns the recorded
history for the checkers.  Property-based tests drive this across many
seeds; the benchmark suite uses it for throughput measurements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.checker.history import History
from repro.memory import Namespace
from repro.protocols.base import DSMCluster
from repro.protocols.policies import ConflictPolicy
from repro.sim.latency import JitteredLatency, LatencyModel
from repro.sim.tasks import sleep

__all__ = ["WorkloadConfig", "WorkloadOutcome", "run_random_execution"]


@dataclass(frozen=True)
class WorkloadConfig:
    """Shape of a random workload."""

    n_nodes: int = 3
    n_locations: int = 4
    ops_per_proc: int = 20
    read_fraction: float = 0.55
    discard_fraction: float = 0.1
    think_time: float = 0.0
    protocol: str = "causal"
    no_cache: bool = False
    batching: bool = False
    delta_stamps: bool = False
    #: With delta_stamps: route stampless/write-batch frames through the
    #: codec's specialised encode lanes (False = generic walk; the
    #: lockstep suite asserts both produce identical runs).
    wire_fast_lanes: bool = True
    #: Writestamp-arena backend (None = auto; "python" | "numpy").
    arena_backend: Optional[str] = None
    #: Coalesce same-instant deliveries into one scheduler entry.
    batch_delivery: bool = False
    seed: int = 0

    def location(self, index: int) -> str:
        """The name of the ``index``-th shared location."""
        return f"loc{index}"


@dataclass
class WorkloadOutcome:
    """A finished random execution, ready for checking."""

    config: WorkloadConfig
    history: History
    total_messages: int
    rejected_writes: int
    invalidations: int
    elapsed_sim_time: float


def run_random_execution(
    config: WorkloadConfig,
    latency: Optional[LatencyModel] = None,
    policy: Optional[ConflictPolicy] = None,
    namespace: Optional[Namespace] = None,
) -> WorkloadOutcome:
    """Run one seeded random workload and capture its history.

    Write values are globally unique (``n<node>v<counter>``) so the
    resulting histories are also valid under the paper's unique-writes
    assumption, though the checkers rely on recorded identities anyway.
    """
    cluster = DSMCluster(
        n_nodes=config.n_nodes,
        protocol=config.protocol,
        seed=config.seed,
        latency=latency or JitteredLatency(base=1.0, jitter_mean=0.5),
        namespace=namespace,
        policy=policy,
        record_history=True,
        no_cache=config.no_cache,
        batching=config.batching,
        delta_stamps=config.delta_stamps,
        wire_fast_lanes=config.wire_fast_lanes,
        arena_backend=config.arena_backend,
        batch_delivery=config.batch_delivery,
    )

    def process(api, proc: int):
        rng = cluster.sim.derived_rng(f"workload-{proc}")
        counter = 0
        for _ in range(config.ops_per_proc):
            location = config.location(rng.randrange(config.n_locations))
            roll = rng.random()
            if roll < config.discard_fraction:
                api.discard(location)
                # A discard alone is not an operation; follow with a read
                # so the slot's fresh value actually enters the history.
                yield api.read(location)
            elif roll < config.discard_fraction + config.read_fraction:
                yield api.read(location)
            else:
                counter += 1
                yield api.write(location, f"n{proc}v{counter}")
            if config.think_time > 0:
                yield sleep(cluster.sim, rng.uniform(0, config.think_time))

    for proc in range(config.n_nodes):
        cluster.spawn(proc, process, proc, name=f"wl-{proc}")
    cluster.run()
    rejected = sum(node.stats.rejected_writes for node in cluster.nodes)
    invalidations = sum(node.store.invalidation_count for node in cluster.nodes)
    return WorkloadOutcome(
        config=config,
        history=cluster.history(),
        total_messages=cluster.stats.total,
        rejected_writes=rejected,
        invalidations=invalidations,
        elapsed_sim_time=cluster.sim.now,
    )
