"""The asynchronous (chaotic relaxation) solver.

Section 4.1 closes: "It is possible to eliminate the synchronization
entirely by using an *asynchronous* algorithm [4]" — the companion TR.
This module implements that variant: every worker iterates at its own
pace, reading whatever values of ``x`` it can see and publishing its own
component with no handshakes at all.

On causal memory a worker's cached copies of ``x[j]`` stay valid until
an invalidation sweep happens to evict them, so a literal port would
iterate on frozen inputs forever.  The paper's ``discard`` is again the
liveness mechanism: each worker discards its cached ``x`` copies every
``refresh`` iterations and re-reads them from the owners.  ``refresh=1``
is Jacobi-with-no-barrier; larger values trade staleness for messages.

Convergence is guaranteed for strictly diagonally dominant systems by
the Chazan–Miranker theorem on chaotic relaxation (the asynchronous
iteration contracts in the infinity norm regardless of interleaving or
staleness bounds met here).

Message cost: ``2 (n - 1) / refresh`` messages per worker per iteration
— strictly below the synchronous solver's ``2n + 6``, the E9 claim.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.errors import ReproError
from repro.memory import Namespace, location_array
from repro.protocols.base import DSMCluster
from repro.sim.latency import LatencyModel

from repro.apps.linear_solver import LinearSystem, SolverResult

__all__ = ["AsynchronousSolver", "async_namespace"]


def async_namespace(n: int) -> Namespace:
    """Ownership for the asynchronous solver.

    Worker ``i`` owns ``x[i]`` *and* its own rows ``A[i][*]``/``b[i]``
    (it writes them at startup and reads them locally ever after).
    """

    def owner_fn(unit: str) -> int:
        index = int(unit.split("[", 1)[1].split("]", 1)[0])
        return index

    return Namespace(n, owner_fn=owner_fn)


class AsynchronousSolver:
    """Chaotic relaxation over causal DSM, no synchronization at all."""

    def __init__(
        self,
        system: LinearSystem,
        iterations: int = 30,
        refresh: int = 1,
        protocol: str = "causal",
        seed: int = 0,
        latency: Optional[LatencyModel] = None,
        record_history: bool = False,
    ):
        if refresh < 1:
            raise ReproError(f"refresh must be >= 1, got {refresh}")
        if protocol not in ("causal", "atomic", "central"):
            raise ReproError(f"unsupported protocol {protocol!r}")
        self.system = system
        self.iterations = iterations
        self.refresh = refresh
        self.protocol = protocol
        self.n = system.n
        self.cluster = DSMCluster(
            n_nodes=self.n,
            protocol=protocol,
            seed=seed,
            latency=latency,
            namespace=async_namespace(self.n),
            record_history=record_history,
        )

    def _worker(self, api, i: int):
        n = self.n
        # Publish my rows of the inputs (all local writes).
        for j in range(n):
            yield api.write(
                location_array("A", i, j), float(self.system.a[i, j])
            )
        yield api.write(location_array("b", i), float(self.system.b[i]))
        row = [float(self.system.a[i, j]) for j in range(n)]
        b_i = float(self.system.b[i])
        for iteration in range(self.iterations):
            if iteration % self.refresh == 0:
                for j in range(n):
                    if j != i:
                        api.discard(location_array("x", j))
            acc = b_i
            for j in range(n):
                if j != i:
                    x_j = yield api.read(location_array("x", j))
                    acc -= row[j] * x_j
            t_i = acc / row[i]
            yield api.write(location_array("x", i), t_i)

    def run(self) -> SolverResult:
        """Execute all workers to completion and measure."""
        for i in range(self.n):
            self.cluster.spawn(i, self._worker, i, name=f"async-worker-{i}")
        self.cluster.run()
        solution = np.zeros(self.n)
        for j in range(self.n):
            node = (
                self.cluster.server
                if self.protocol == "central"
                else self.cluster.nodes[j]
            )
            assert node is not None
            entry = node.store.get(location_array("x", j))
            assert entry is not None
            solution[j] = entry.value
        exact = self.system.exact_solution()
        per_processor = (
            self.cluster.stats.total / (self.n * self.iterations)
            if self.iterations
            else 0.0
        )
        return SolverResult(
            protocol=f"async-{self.protocol}",
            n=self.n,
            iterations=self.iterations,
            solution=solution,
            exact=exact,
            max_error=float(np.max(np.abs(solution - exact))),
            residual=self.system.residual(solution),
            total_messages=self.cluster.stats.total,
            per_phase_messages=[],
            steady_messages_per_processor=per_processor,
            messages_by_kind=dict(self.cluster.stats.by_kind),
            wait_mode="none",
            elapsed_sim_time=self.cluster.sim.now,
        )
