"""A causal bulletin board — a third application beyond the paper's two.

The classic motivating workload for causal consistency (and the one the
ISIS lineage used): a shared board where *replies must never be visible
before the posts they answer*.  Programs:

* ``post`` — write the post body into a slot of the shared board, then
  *announce* it by appending its id to the author's announcement cell
  (a different location, generally with a different owner);
* ``read_board`` — read announcement cells, then fetch announced posts.

On causal memory the pattern is safe by construction: the body write
causally precedes the announcement write, so a reader that sees the
announcement can never fetch a stale/empty body — the Figure 4
invalidation sweep evicts any stale cached body the moment the
announcement value is introduced.  With the unsafe write-behind mode
(experiment E13) the announcement can overtake the in-flight body write
and readers observe dangling announcements; tests use the contrast.

Posts may name a ``reply_to`` id the author has read, giving the
transitive invariant: any view containing a reply also contains every
ancestor post.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.memory import Namespace, location_array
from repro.protocols.base import DSMCluster
from repro.sim.latency import LatencyModel

__all__ = ["Post", "BoardView", "BulletinBoard"]

#: Body value marking a slot that has not been written yet.
EMPTY = None


@dataclass(frozen=True)
class Post:
    """One post: globally unique id, author, text, optional parent id."""

    post_id: str
    author: int
    text: str
    reply_to: Optional[str] = None


@dataclass(frozen=True)
class BoardView:
    """One reader's snapshot of the board."""

    reader: int
    posts: Tuple[Post, ...]
    dangling: Tuple[str, ...]  # announced ids whose body was unreadable

    def ids(self) -> set:
        """The post ids visible in this view."""
        return {post.post_id for post in self.posts}

    def missing_parents(self) -> List[str]:
        """Reply parents not visible in the same view (must be empty on
        causal memory)."""
        visible = self.ids()
        return [
            post.reply_to
            for post in self.posts
            if post.reply_to is not None and post.reply_to not in visible
        ]


class BulletinBoard:
    """A shared board over causal DSM.

    Parameters
    ----------
    n:
        Number of author/reader processes.
    slots_per_author:
        Capacity of each author's announcement log.
    unsafe_write_behind:
        Propagated to the cluster — used by tests to demonstrate the
        dangling-announcement anomaly.
    """

    def __init__(
        self,
        n: int,
        slots_per_author: int = 8,
        seed: int = 0,
        latency: Optional[LatencyModel] = None,
        unsafe_write_behind: bool = False,
        record_history: bool = True,
    ):
        if n <= 0 or slots_per_author <= 0:
            raise ReproError("need positive dimensions")
        self.n = n
        self.slots = slots_per_author
        # Announcement cells live with their author; bodies are spread
        # over all nodes by hash, so announcing crosses owners — the
        # pattern causal memory exists to protect.
        self.cluster = DSMCluster(
            n_nodes=n,
            protocol="causal",
            seed=seed,
            latency=latency,
            namespace=Namespace(
                n,
                owner_fn=self._owner_fn,
            ),
            initial_value=EMPTY,
            unsafe_write_behind=unsafe_write_behind,
            record_history=record_history,
        )
        self._post_counters = [0] * n

    def _owner_fn(self, unit: str) -> int:
        if unit.startswith("ann["):
            return int(unit.split("[", 1)[1].split("]", 1)[0])
        import zlib

        return zlib.crc32(unit.encode()) % self.n

    # ------------------------------------------------------------------
    # Locations
    # ------------------------------------------------------------------
    def body_location(self, post_id: str) -> str:
        """Where a post body lives."""
        return f"body[{post_id}]"

    def announcement_location(self, author: int, index: int) -> str:
        """One cell of an author's announcement log."""
        return location_array("ann", author, index)

    # ------------------------------------------------------------------
    # Operations (generators)
    # ------------------------------------------------------------------
    def post(self, api, text: str, reply_to: Optional[str] = None):
        """Publish a post: body first, then the announcement."""
        author = api.node_id
        index = self._post_counters[author]
        if index >= self.slots:
            raise ReproError(f"author {author} exhausted the board")
        self._post_counters[author] += 1
        post_id = f"p{author}.{index}"
        body = Post(
            post_id=post_id, author=author, text=text, reply_to=reply_to
        )
        yield api.write(self.body_location(post_id), body)
        yield api.write(self.announcement_location(author, index), post_id)
        return post_id

    def read_board(self, api, refresh: bool = True):
        """Scan all announcement logs, then fetch announced bodies."""
        if refresh:
            self.refresh(api)
        announced: List[str] = []
        for author in range(self.n):
            for index in range(self.slots):
                cell = yield api.read(
                    self.announcement_location(author, index)
                )
                if cell is EMPTY:
                    break
                announced.append(cell)
        posts: List[Post] = []
        dangling: List[str] = []
        for post_id in announced:
            body = yield api.read(self.body_location(post_id))
            if isinstance(body, Post):
                posts.append(body)
            else:
                dangling.append(post_id)
        return BoardView(
            reader=api.node_id, posts=tuple(posts), dangling=tuple(dangling)
        )

    def refresh(self, api) -> None:
        """Discard cached board state (the paper's liveness discard)."""
        for author in range(self.n):
            for index in range(self.slots):
                api.discard(self.announcement_location(author, index))

    def find(self, api, post_id: str):
        """Fetch one post body (None if not yet visible)."""
        api.discard(self.body_location(post_id))
        body = yield api.read(self.body_location(post_id))
        return body if isinstance(body, Post) else None

    # ------------------------------------------------------------------
    # Cluster passthroughs
    # ------------------------------------------------------------------
    def spawn(self, node_id: int, process, *args, name: str = ""):
        """Spawn an application process on one node."""
        return self.cluster.spawn(node_id, process, *args, name=name)

    def run(self, **kwargs) -> None:
        """Run the simulation to completion."""
        self.cluster.run(**kwargs)

    @property
    def stats(self):
        """Network message statistics."""
        return self.cluster.stats

    def history(self):
        """The recorded operation history."""
        return self.cluster.history()
