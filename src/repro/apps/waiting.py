"""The ``wait(B)`` primitive of Figure 6, implemented under a cache.

The paper writes the solver's synchronisation as ``wait(B)``, meaning
"while (not B) skip".  On a cached causal DSM a naive busy-wait on a
*cached* flag spins forever — the cache keeps returning the stale copy.
The paper's own remedy is ``discard``: "occasional execution of discard
can also be used to ensure eventual communication and to provide
liveness" (Section 3.1).  Two implementations are provided:

:func:`oracle_wait`
    An idealised scheduler hint: a zero-message watch on the
    authoritative copy wakes the waiter exactly when the flag changes;
    one ``discard`` + one read then fetches the new value.  This
    reproduces the paper's Section 4.1 message accounting, which charges
    exactly one remote read per handshake step.

:func:`polling_wait`
    The literal mechanism: read; if the predicate fails, ``discard`` the
    cached copy, sleep one period, retry.  Costs extra message pairs per
    retry — the overhead the paper's idealised count omits, quantified
    by the solver benchmark's polling sweep.

Both are generators to be driven with ``yield from`` inside application
processes; both return the satisfying value.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.protocols.base import DSMCluster, DSMNode
from repro.sim.tasks import sleep

__all__ = ["oracle_wait", "polling_wait"]

Predicate = Callable[[Any], bool]


def oracle_wait(
    cluster: DSMCluster,
    api: DSMNode,
    location: str,
    predicate: Predicate,
):
    """Wait until the authoritative copy satisfies ``predicate``.

    Exchanges zero messages while waiting; on wake-up performs one
    ``discard`` and one read (two messages when ``location`` is remote,
    zero when ``api`` owns it).
    """
    while True:
        yield cluster.watch(location, predicate)
        api.discard(location)
        value = yield api.read(location)
        if predicate(value):
            return value


def polling_wait(
    api: DSMNode,
    location: str,
    predicate: Predicate,
    period: float = 1.0,
):
    """Poll ``location`` every ``period`` until ``predicate`` holds.

    Each failed poll of a remote location costs a discard plus a remote
    read (two messages); owned locations poll locally for free.
    """
    while True:
        value = yield api.read(location)
        if predicate(value):
            return value
        api.discard(location)
        yield sleep(api.sim, period)
