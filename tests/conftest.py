"""Shared fixtures and helpers for the test suite.

Live-runtime deflake guard
--------------------------
Tests marked ``@pytest.mark.live`` exercise the asyncio/socket driver
and therefore real wall-clock time.  Tier-1 (`pytest -x -q`) excludes
them by default via ``addopts = -m "not live"`` in pyproject.toml, so
the default suite stays fully deterministic; run them explicitly with
``pytest -m live``.  Two autouse fixtures keep the live suite honest:

* the event-loop policy is pinned to :class:`asyncio.DefaultEventLoopPolicy`
  so a uvloop-style plugin installed in some environment cannot change
  scheduling behaviour between runs;
* each live test gets a hard SIGALRM wall-clock deadline (independent
  of the runtime's own ``timeout=``), so a wedged socket can never hang
  CI — it fails loudly with a timeout message instead.
"""

from __future__ import annotations

import asyncio
import signal

import pytest

from repro.checker.history import History

#: Hard per-test wall-clock ceiling for ``@pytest.mark.live`` tests.
LIVE_TEST_TIMEOUT_S = 120


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "live: exercises the asyncio/socket runtime (wall-clock time; "
        "excluded from the default deterministic run, select with -m live)",
    )


@pytest.fixture(autouse=True)
def _live_guard(request):
    """Pin the loop policy and arm a wall-clock alarm for live tests."""
    if request.node.get_closest_marker("live") is None:
        yield
        return
    previous_policy = asyncio.get_event_loop_policy()
    asyncio.set_event_loop_policy(asyncio.DefaultEventLoopPolicy())

    def _expired(signum, frame):
        raise TimeoutError(
            f"live test exceeded the {LIVE_TEST_TIMEOUT_S}s wall-clock guard"
        )

    previous_handler = signal.signal(signal.SIGALRM, _expired)
    signal.alarm(LIVE_TEST_TIMEOUT_S)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous_handler)
        asyncio.set_event_loop_policy(previous_policy)

FIGURE_1 = """
P1: w(x)1 w(y)2 r(y)2 r(x)1
P2: w(z)1 r(y)2 r(x)1
"""

FIGURE_2 = """
P1: w(x)2 w(y)2 w(y)3 r(z)5 w(x)4
P2: w(x)1 r(y)3 w(x)7 w(z)5 r(x)4 r(x)9
P3: r(z)5 w(x)9
"""

FIGURE_3 = """
P1: w(x)5 w(y)3
P2: w(x)2 r(y)3 r(x)5 w(z)4
P3: r(z)4 r(x)2
"""

FIGURE_5 = """
P1: r(y)0 w(x)1 r(y)0
P2: r(x)0 w(y)1 r(x)0
"""


@pytest.fixture
def figure1() -> History:
    """Figure 1 of the paper, parsed."""
    return History.parse(FIGURE_1)


@pytest.fixture
def figure2() -> History:
    """Figure 2 of the paper, parsed."""
    return History.parse(FIGURE_2)


@pytest.fixture
def figure3() -> History:
    """Figure 3 of the paper, parsed."""
    return History.parse(FIGURE_3)


@pytest.fixture
def figure5() -> History:
    """Figure 5 of the paper, parsed."""
    return History.parse(FIGURE_5)


def drive(cluster, node_id, generator_fn, *args, name=""):
    """Spawn a process and return its task (test shorthand)."""
    return cluster.spawn(node_id, generator_fn, *args, name=name)
