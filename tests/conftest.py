"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.checker.history import History

FIGURE_1 = """
P1: w(x)1 w(y)2 r(y)2 r(x)1
P2: w(z)1 r(y)2 r(x)1
"""

FIGURE_2 = """
P1: w(x)2 w(y)2 w(y)3 r(z)5 w(x)4
P2: w(x)1 r(y)3 w(x)7 w(z)5 r(x)4 r(x)9
P3: r(z)5 w(x)9
"""

FIGURE_3 = """
P1: w(x)5 w(y)3
P2: w(x)2 r(y)3 r(x)5 w(z)4
P3: r(z)4 r(x)2
"""

FIGURE_5 = """
P1: r(y)0 w(x)1 r(y)0
P2: r(x)0 w(y)1 r(x)0
"""


@pytest.fixture
def figure1() -> History:
    """Figure 1 of the paper, parsed."""
    return History.parse(FIGURE_1)


@pytest.fixture
def figure2() -> History:
    """Figure 2 of the paper, parsed."""
    return History.parse(FIGURE_2)


@pytest.fixture
def figure3() -> History:
    """Figure 3 of the paper, parsed."""
    return History.parse(FIGURE_3)


@pytest.fixture
def figure5() -> History:
    """Figure 5 of the paper, parsed."""
    return History.parse(FIGURE_5)


def drive(cluster, node_id, generator_fn, *args, name=""):
    """Spawn a process and return its task (test shorthand)."""
    return cluster.spawn(node_id, generator_fn, *args, name=name)
