"""Write-behind batching semantics and the 2n+6 regression bound."""

import pytest

from repro.apps.linear_solver import LinearSystem, SynchronousSolver
from repro.errors import ProtocolError
from repro.memory import Namespace
from repro.protocols.base import DSMCluster


def two_node_cluster(**kwargs):
    namespace = Namespace.explicit(2, {"x": 0, "y": 1})
    return DSMCluster(
        2, protocol="causal", namespace=namespace, batching=True, **kwargs
    )


class TestBatchingSemantics:
    def test_batched_writes_complete_immediately(self):
        cluster = two_node_cluster()
        times = []

        def writer(api):
            yield api.write("x", 1)
            times.append(cluster.sim.now)
            yield api.write("x", 2)
            times.append(cluster.sim.now)

        cluster.spawn(1, writer)
        cluster.run()
        assert times == [0.0, 0.0]  # no blocking round-trips

    def test_read_your_writes(self):
        cluster = two_node_cluster()
        seen = []

        def writer(api):
            yield api.write("x", 1)
            yield api.write("x", 2)
            seen.append((yield api.read("x")))

        cluster.spawn(1, writer)
        cluster.run()
        assert seen == [2]

    def test_write_burst_coalesces_into_one_batch(self):
        cluster = two_node_cluster()

        def writer(api):
            for i in range(6):
                yield api.write("x", i)

        cluster.spawn(1, writer)
        cluster.run()
        node = cluster.nodes[1]
        assert node.wb_coalesced >= 1
        assert node.wb_batches < 6
        # Certified state converged to the last write.
        assert cluster.nodes[0].store.get("x").value == 5

    def test_multi_location_burst_stays_in_program_order(self):
        """Coalescing must not reorder a run's surviving sub-writes:
        the survivor of a coalesced location moves behind intermediate
        writes to other locations (strictly increasing own components)."""
        namespace = Namespace.explicit(2, {"a": 0, "b": 0})
        cluster = DSMCluster(
            2, protocol="causal", namespace=namespace, batching=True
        )

        def writer(api):
            yield api.write("a", 1)
            yield api.write("b", 2)
            yield api.write("a", 3)  # coalesces with the first write

        cluster.spawn(1, writer)
        cluster.run()
        owner = cluster.nodes[0]
        a, b = owner.store.get("a"), owner.store.get("b")
        assert (a.value, b.value) == (3, 2)
        # a's surviving write (3rd, component 3) certified after b's (2nd).
        assert a.stamp[1] == 3 and b.stamp[1] == 2

    def test_dirty_lines_refuse_discard(self):
        cluster = two_node_cluster()
        outcomes = []

        def writer(api):
            yield api.write("x", 1)          # tentative, uncertified
            outcomes.append(api.discard("x"))
            outcomes.append((yield api.read("x")))

        cluster.spawn(1, writer)
        cluster.run()
        assert outcomes == [False, 1]  # eviction refused; RYW preserved

    def test_incoming_reads_deferred_while_uncertified(self):
        cluster = two_node_cluster()
        seen = []

        def writer(api):
            yield api.write("y", 7)   # local (owned): visible at once
            yield api.write("x", 1)   # remote: uncertified for a while

        def reader(api):
            seen.append((yield api.read("y")))

        cluster.spawn(1, writer)
        cluster.spawn(0, reader)
        cluster.run()
        assert seen == [7]
        assert cluster.nodes[1].wb_deferred_read_count >= 1

    def test_batching_rejects_no_cache(self):
        with pytest.raises(ProtocolError):
            DSMCluster(2, protocol="causal", batching=True, no_cache=True)

    def test_batching_rejects_unsafe_write_behind(self):
        with pytest.raises(ProtocolError):
            DSMCluster(
                2, protocol="causal", batching=True, unsafe_write_behind=True
            )

    @pytest.mark.parametrize("protocol", ["atomic", "central", "li"])
    def test_batching_limited_to_causal_protocols(self, protocol):
        with pytest.raises(ProtocolError):
            DSMCluster(2, protocol=protocol, batching=True)


class TestBroadcastBatching:
    def test_coalesced_window_converges(self):
        cluster = DSMCluster(3, protocol="broadcast", batching=True)

        def writer(api):
            for i in range(5):
                yield api.write("x", i)

        cluster.spawn(0, writer)
        cluster.run()
        for node in cluster.nodes:
            assert node.replica_value("x") == 4
        sender = cluster.nodes[0]
        assert sender.wb_coalesced >= 1
        assert sender.wb_batches < 5
        # Coalesced-away broadcasts never hit the wire: fewer CB frames
        # than writes * (n - 1).
        assert cluster.stats.total < 5 * 2

    def test_interleaved_locations_all_delivered(self):
        cluster = DSMCluster(2, protocol="broadcast", batching=True)

        def writer(api):
            yield api.write("x", 1)
            yield api.write("y", 2)
            yield api.write("x", 3)

        cluster.spawn(0, writer)
        cluster.run()
        other = cluster.nodes[1]
        assert other.replica_value("x") == 3
        assert other.replica_value("y") == 2
        assert other.held_back_count == 0


class TestSolverMessageBound:
    """Section 4.1's 2n+6 bound must survive the batched fast path."""

    @pytest.mark.parametrize("batching,delta", [
        (False, False), (True, False), (True, True),
    ])
    def test_steady_state_bound_holds(self, batching, delta):
        n = 4
        system = LinearSystem.random(n, seed=7)
        solver = SynchronousSolver(
            system,
            protocol="causal",
            iterations=6,
            batching=batching,
            delta_stamps=delta,
        )
        result = solver.run()
        assert result.steady_messages_per_processor <= 2 * n + 6

    def test_batching_does_not_change_convergence(self):
        n = 4
        system = LinearSystem.random(n, seed=7)
        plain = SynchronousSolver(system, iterations=6).run()
        fast = SynchronousSolver(
            system, iterations=6, batching=True, delta_stamps=True
        ).run()
        assert fast.max_error == pytest.approx(plain.max_error)
