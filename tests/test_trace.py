"""Unit tests for message tracing and counters."""

from repro.sim.trace import (
    MessageRecord,
    MessageTrace,
    NetworkStats,
    per_node_counts,
)


def record(seq=1, src=0, dst=1, kind="READ", sent=0.0, delivered=1.0,
           dropped=False):
    return MessageRecord(
        seq=seq, src=src, dst=dst, kind=kind, payload=None,
        sent_at=sent, delivered_at=delivered, dropped=dropped,
    )


class TestNetworkStats:
    def test_counters_accumulate(self):
        stats = NetworkStats()
        stats.record(record(kind="READ"))
        stats.record(record(seq=2, kind="READ", src=1, dst=0))
        stats.record(record(seq=3, kind="WRITE"))
        assert stats.total == 3
        assert stats.count("READ") == 2
        assert stats.count() == 3
        assert stats.by_pair[(0, 1)] == 2

    def test_dropped_not_counted_as_delivered(self):
        stats = NetworkStats()
        stats.record(record(dropped=True))
        assert stats.total == 0
        assert stats.dropped == 1

    def test_mean_latency(self):
        stats = NetworkStats()
        stats.record(record(sent=0.0, delivered=1.0))
        stats.record(record(seq=2, sent=0.0, delivered=3.0))
        assert stats.mean_latency == 2.0

    def test_mean_latency_empty_is_zero(self):
        assert NetworkStats().mean_latency == 0.0

    def test_snapshot_and_delta(self):
        stats = NetworkStats()
        stats.record(record(kind="READ"))
        before = stats.snapshot(time=1.0)
        stats.record(record(seq=2, kind="WRITE"))
        stats.record(record(seq=3, kind="WRITE", src=1, dst=0))
        after = stats.snapshot(time=2.0)
        delta = after.delta(before)
        assert delta.total == 2
        assert delta.by_kind == {"WRITE": 2}
        assert "READ" not in delta.by_kind  # unchanged keys removed

    def test_snapshot_is_immutable_copy(self):
        stats = NetworkStats()
        stats.record(record())
        snap = stats.snapshot(time=0.0)
        stats.record(record(seq=2))
        assert snap.total == 1


class TestMessageTrace:
    def test_records_in_order(self):
        trace = MessageTrace()
        trace.record(record(seq=1))
        trace.record(record(seq=2))
        assert [r.seq for r in trace] == [1, 2]
        assert len(trace) == 2

    def test_disabled_trace_ignores_records(self):
        trace = MessageTrace(enabled=False)
        trace.record(record())
        assert len(trace) == 0

    def test_of_kind_filter(self):
        trace = MessageTrace()
        trace.record(record(seq=1, kind="READ"))
        trace.record(record(seq=2, kind="WRITE"))
        assert [r.seq for r in trace.of_kind("WRITE")] == [2]

    def test_between_filter(self):
        trace = MessageTrace()
        trace.record(record(seq=1, src=0, dst=1))
        trace.record(record(seq=2, src=1, dst=0))
        assert [r.seq for r in trace.between(1, 0)] == [2]

    def test_kinds_first_seen_order(self):
        trace = MessageTrace()
        trace.record(record(seq=1, kind="B"))
        trace.record(record(seq=2, kind="A"))
        trace.record(record(seq=3, kind="B"))
        assert trace.kinds() == ["B", "A"]

    def test_summarize_mentions_counts(self):
        trace = MessageTrace()
        trace.record(record(kind="READ"))
        trace.record(record(seq=2, kind="READ"))
        summary = trace.summarize()
        assert "2 messages" in summary
        assert "READ=2" in summary


class TestHelpers:
    def test_per_node_counts_includes_silent_nodes(self):
        stats = NetworkStats()
        stats.record(record(src=0))
        counts = per_node_counts(stats, [0, 1, 2])
        assert counts == {0: 1, 1: 0, 2: 0}

    def test_record_latency_property(self):
        assert record(sent=1.0, delivered=4.0).latency == 3.0

    def test_dropped_record_latency_is_nan(self):
        import math

        latency = record(sent=1.0, delivered=4.0, dropped=True).latency
        assert math.isnan(latency)

    def test_snapshot_label_survives_delta(self):
        stats = NetworkStats()
        stats.record(record())
        before = stats.snapshot(time=1.0, label="iteration=0")
        stats.record(record(seq=2))
        after = stats.snapshot(time=2.0, label="iteration=1")
        interval = after.delta(before)
        assert interval.label == "iteration=1"
        assert interval.total == 1
        assert stats.snapshot(time=3.0).label is None
