"""Tests for the causal bulletin board application."""

import pytest

from repro.apps.bulletin import BulletinBoard, Post
from repro.checker import check_causal
from repro.errors import ReproError
from repro.sim.latency import PerLinkLatency
from repro.sim.tasks import sleep


class TestPosting:
    def test_post_and_read_back(self):
        board = BulletinBoard(n=2)

        def author(api):
            post_id = yield from board.post(api, "hello world")
            view = yield from board.read_board(api)
            return (post_id, view)

        task = board.spawn(0, author)
        board.run()
        post_id, view = task.result()
        assert post_id == "p0.0"
        assert [p.text for p in view.posts] == ["hello world"]
        assert view.dangling == ()

    def test_capacity_enforced(self):
        board = BulletinBoard(n=1, slots_per_author=2)

        def author(api):
            yield from board.post(api, "one")
            yield from board.post(api, "two")
            yield from board.post(api, "three")

        board.spawn(0, author)
        with pytest.raises(ReproError, match="exhausted"):
            board.run()

    def test_ids_unique_across_authors(self):
        board = BulletinBoard(n=3)
        ids = []

        def author(api):
            ids.append((yield from board.post(api, f"by {api.node_id}")))

        for node in range(3):
            board.spawn(node, author)
        board.run()
        assert len(set(ids)) == 3


class TestCausalSafety:
    def test_announcement_never_dangles(self):
        """A reader that sees the announcement always sees the body."""
        board = BulletinBoard(n=3, seed=4)
        views = {}

        def author(api):
            yield from board.post(api, "root")

        def reader(api, me):
            yield sleep(board.cluster.sim, 20.0)
            views[me] = yield from board.read_board(api)

        board.spawn(0, author)
        board.spawn(1, reader, 1)
        board.spawn(2, reader, 2)
        board.run()
        for view in views.values():
            assert view.dangling == ()
            assert len(view.posts) == 1

    def test_reply_parents_always_visible(self):
        board = BulletinBoard(n=3, seed=5)
        views = {}

        def original_poster(api):
            yield from board.post(api, "question")

        def replier(api):
            yield sleep(board.cluster.sim, 10.0)
            view = yield from board.read_board(api)
            assert view.posts, "replier must see the question"
            parent = view.posts[0].post_id
            yield from board.post(api, "answer", reply_to=parent)

        def reader(api):
            yield sleep(board.cluster.sim, 30.0)
            views["reader"] = yield from board.read_board(api)

        board.spawn(0, original_poster)
        board.spawn(1, replier)
        board.spawn(2, reader)
        board.run()
        view = views["reader"]
        assert view.missing_parents() == []
        assert {p.text for p in view.posts} == {"question", "answer"}

    def test_history_is_causal(self):
        board = BulletinBoard(n=3, seed=6)

        def chatter(api, me):
            yield from board.post(api, f"hi from {me}")
            yield sleep(board.cluster.sim, 15.0)
            view = yield from board.read_board(api)
            if view.posts:
                yield from board.post(
                    api, "re", reply_to=view.posts[0].post_id
                )

        for node in range(3):
            board.spawn(node, chatter, node)
        board.run()
        assert check_causal(board.history()).ok


class TestWriteBehindAnomaly:
    def _run(self, unsafe: bool):
        # Slow the author->body-owner link so the announcement can
        # overtake the in-flight body write under write-behind.
        board = BulletinBoard(n=3, seed=7, unsafe_write_behind=unsafe)
        body_owner = board.cluster.namespace.owner(board.body_location("p0.0"))
        ann_owner = board.cluster.namespace.owner(
            board.announcement_location(0, 0)
        )
        if body_owner == 0 or body_owner == ann_owner:
            pytest.skip("hash layout does not cross owners for this seed")
        latency = PerLinkLatency(default=1.0, links={(0, body_owner): 30.0})
        board.cluster.network.latency = latency
        result = {}

        def author(api):
            yield from board.post(api, "root")

        def reader(api):
            yield board.cluster.watch(
                board.announcement_location(0, 0), lambda v: v == "p0.0"
            )
            result["view"] = yield from board.read_board(api)

        board.spawn(0, author)
        board.spawn(1, reader)
        board.run()
        return result["view"]

    def test_blocking_writes_no_dangling(self):
        view = self._run(unsafe=False)
        assert view.dangling == ()

    def test_write_behind_dangles(self):
        view = self._run(unsafe=True)
        assert view.dangling == ("p0.0",)
