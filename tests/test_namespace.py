"""Unit tests for ownership namespaces and paging."""

import pytest

from repro.errors import OwnershipError
from repro.memory.namespace import Namespace, location_array


class TestLocationArray:
    def test_single_index(self):
        assert location_array("x", 3) == "x[3]"

    def test_multi_index(self):
        assert location_array("dict", 2, 5) == "dict[2][5]"


class TestHashedNamespace:
    def test_owner_stable_across_instances(self):
        a = Namespace.hashed(4).owner("x")
        b = Namespace.hashed(4).owner("x")
        assert a == b

    def test_owner_in_range(self):
        ns = Namespace.hashed(3)
        for loc in ("x", "y", "z", "a[0]", "a[1]"):
            assert 0 <= ns.owner(loc) < 3

    def test_owns(self):
        ns = Namespace.hashed(3)
        owner = ns.owner("x")
        assert ns.owns(owner, "x")
        assert not ns.owns((owner + 1) % 3, "x")

    def test_zero_nodes_rejected(self):
        with pytest.raises(OwnershipError):
            Namespace(0)


class TestExplicitNamespace:
    def test_table_respected(self):
        ns = Namespace.explicit(3, {"x": 0, "y": 2})
        assert ns.owner("x") == 0
        assert ns.owner("y") == 2

    def test_default_owner(self):
        ns = Namespace.explicit(3, {"x": 0}, default=1)
        assert ns.owner("anything-else") == 1

    def test_fallback_to_hash_without_default(self):
        ns = Namespace.explicit(3, {"x": 0})
        assert 0 <= ns.owner("unlisted") < 3

    def test_out_of_range_owner_rejected(self):
        ns = Namespace.explicit(2, {"x": 5})
        with pytest.raises(OwnershipError):
            ns.owner("x")


class TestByFirstIndex:
    def test_row_ownership(self):
        ns = Namespace.by_first_index(4)
        assert ns.owner("dict[0][3]") == 0
        assert ns.owner("dict[3][0]") == 3

    def test_index_beyond_nodes_falls_back(self):
        ns = Namespace.by_first_index(2)
        assert 0 <= ns.owner("dict[7][0]") < 2

    def test_non_array_falls_back(self):
        ns = Namespace.by_first_index(2)
        assert 0 <= ns.owner("plain") < 2


class TestPaging:
    def test_unit_groups_by_page(self):
        ns = Namespace.array_paged(2, page_size=4)
        assert ns.unit("x[0]") == ns.unit("x[3]") == "x@page0"
        assert ns.unit("x[4]") == "x@page1"

    def test_same_page_same_owner(self):
        ns = Namespace.array_paged(3, page_size=4)
        assert ns.owner("x[0]") == ns.owner("x[3]")

    def test_different_bases_different_units(self):
        ns = Namespace.array_paged(2, page_size=4)
        assert ns.unit("x[0]") != ns.unit("y[0]")

    def test_non_array_location_is_own_unit(self):
        ns = Namespace.array_paged(2, page_size=4)
        assert ns.unit("flag") == "flag"

    def test_multi_index_not_paged(self):
        ns = Namespace.array_paged(2, page_size=4)
        assert ns.unit("dict[1][2]") == "dict[1][2]"

    def test_zero_page_size_rejected(self):
        with pytest.raises(OwnershipError):
            Namespace.array_paged(2, page_size=0)

    def test_default_unit_is_identity(self):
        ns = Namespace.hashed(2)
        assert ns.unit("x[7]") == "x[7]"


class TestReadOnly:
    def test_prefix_match(self):
        ns = Namespace.hashed(2, read_only=("A[", "b["))
        assert ns.is_read_only("A[1][2]")
        assert ns.is_read_only("b[0]")
        assert not ns.is_read_only("x[0]")

    def test_no_prefixes_nothing_read_only(self):
        assert not Namespace.hashed(2).is_read_only("A[0][0]")

    def test_read_only_follows_unit_not_location(self):
        ns = Namespace.array_paged(2, page_size=2, read_only=("A@",))
        assert ns.is_read_only("A[1]")
