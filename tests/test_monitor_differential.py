"""Differential property test: streaming monitor vs offline checker.

The monitor's correctness anchor (DESIGN.md §4.8): on every history the
explorer can produce — random schedules over random programs, with and
without message drops, plus broadcast clusters under timed partition
faults — the online verdict must coincide with the offline
:func:`repro.checker.check_causal`, read for read.  A cyclic history has
no per-read offline verdicts (the offline checker reports the cycle);
there the monitor must agree on the overall verdict via its unresolved
(parked-forever) reads.
"""

import random

from repro.checker import check_causal
from repro.errors import HistoryError
from repro.checker.live_values import LiveSetCache
from repro.mc.program import random_program
from repro.mc.scheduler import ControlledRun
from repro.monitor import CausalStreamMonitor, feed_history, feed_trace
from repro.obs.collector import TraceCollector
from repro.protocols.base import DSMCluster
from repro.sim.faults import FaultSchedule

#: 100 random programs x 10 random schedules each (alternating drop
#: budgets) = 1000 explorer histories, before the fault-schedule corpus.
N_SPECS = 100
SCHEDULES_PER_SPEC = 10
N_FAULT_RUNS = 32


def _compare_one(history, n_procs, cache):
    """Assert online == offline on one history; returns 1 (counted)."""
    offline = check_causal(history)
    online = {}
    monitor = CausalStreamMonitor(
        n_procs,
        gc_interval=8,
        live_cache=cache,
        on_verdict=lambda v: online.__setitem__((v.op.proc, v.op.index), v.ok),
    )
    result = feed_history(monitor, history)
    if offline.cycle is not None:
        # Offline sees a causality cycle: no per-read verdicts exist.
        # Online, the cycle's reads park forever and fail the run.
        assert not result.ok, f"monitor missed cycle:\n{history.to_text()}"
        assert result.unresolved
    else:
        assert result.ok == offline.ok, (
            f"verdict drift:\n{history.to_text()}\n"
            f"offline={offline.explain()}\nonline={result.explain()}"
        )
        for verdict in offline.verdicts:
            proc, index = verdict.read.op_id
            assert online[(proc, index)] == verdict.ok, (
                f"per-read drift at P{proc + 1} op {index}:\n"
                f"{history.to_text()}"
            )
    # The window never exceeds what is actually alive: each write is a
    # candidate plus a notice, each read a notice, plus the lazily
    # materialised per-location initial writes.
    writes = sum(1 for p in history.processes for op in p if op.is_write)
    ops = sum(len(p) for p in history.processes)
    locations = len({op.location for p in history.processes for op in p})
    assert result.max_window <= ops + writes + locations
    return 1


def _random_run(spec, seed, max_drops):
    """One random-chooser controlled run of ``spec`` (explorer-style)."""
    rng = random.Random(f"monitor-diff/{seed}")
    run = ControlledRun(
        spec, max_drops=max_drops, collector=TraceCollector(keep_events=True)
    )
    for _ in range(5000):
        if run.crashed is not None:
            break
        actions = run.actions()
        if not actions:
            break
        run.apply(actions[rng.randrange(len(actions))])
    return run


def test_monitor_matches_offline_checker_on_explorer_corpus():
    cache = LiveSetCache()
    checked = 0
    crashed = 0
    truncated = 0
    for spec_seed in range(N_SPECS):
        spec = random_program(
            spec_seed,
            protocol="causal" if spec_seed % 2 else "broadcast",
            n_procs=3,
            n_locations=2,
            ops_per_proc=3,
        )
        for index in range(SCHEDULES_PER_SPEC):
            max_drops = 2 if index % 2 else 0
            run = _random_run(
                spec, seed=spec_seed * 1000 + index, max_drops=max_drops
            )
            try:
                outcome = run.outcome()
            except HistoryError:
                # A dropped W-REPLY left a read observing a write whose
                # writer never committed: the offline History refuses the
                # record outright.  Online this is a truncated stream —
                # the read's source never commits, so it must park
                # forever and fail the run.
                monitor = CausalStreamMonitor(spec.n_procs)
                result = feed_trace(monitor, run.cluster.obs.events)
                assert not result.ok and result.unresolved
                truncated += 1
                checked += 1
                continue
            if outcome.crashed is not None:
                crashed += 1
                continue
            checked += _compare_one(outcome.history, spec.n_procs, cache)
    assert checked >= 1000, f"corpus too small: {checked} ({crashed} crashed)"
    # The shared live-set cache earned its keep across the corpus
    # (repeated windows from dominated interleavings).
    assert cache.hits > 0


def test_monitor_matches_offline_checker_under_partition_faults():
    """Broadcast clusters with timed partitions: drops lose updates, the
    histories get stranger, and the verdicts must still coincide."""
    cache = LiveSetCache()
    for seed in range(N_FAULT_RUNS):
        spec = random_program(
            seed + 7000,
            protocol="broadcast",
            n_procs=3,
            n_locations=2,
            ops_per_proc=4,
        )
        cluster = DSMCluster(n_nodes=3, protocol="broadcast", seed=seed)
        rng = random.Random(f"monitor-faults/{seed}")
        faults = FaultSchedule(cluster.sim, cluster.network)
        for _ in range(2):
            src, dst = rng.sample(range(3), 2)
            start = rng.uniform(0.0, 5.0)
            faults.partition_between(
                src, dst, start=start, end=start + rng.uniform(1.0, 10.0)
            )
        faults.install()
        for proc, ops in enumerate(spec.processes):
            def program(api, ops=ops):
                for op in ops:
                    if op[0] == "w":
                        yield api.write(op[1], op[2])
                    else:
                        yield api.read(op[1])
            cluster.spawn(proc, program)
        cluster.run()
        _compare_one(cluster.history(), 3, cache)
