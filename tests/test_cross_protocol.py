"""Differential testing: one workload, five memory systems.

The same seeded program runs on every protocol engine; each execution
is held to its own model's checker, and the economics (message counts,
blocking) are compared pairwise.  This is the closest the reproduction
gets to the paper's thesis in one test file: all five systems "work",
they differ exactly in what they charge for it.
"""

import pytest

from repro.checker import check_causal, check_sequential, check_slow, classify
from repro.memory import Namespace
from repro.protocols.base import DSMCluster

PROTOCOLS = ("causal", "atomic", "li", "central", "broadcast")


def run_workload(protocol, seed=3, n_nodes=3, ops=15):
    namespace = Namespace.hashed(n_nodes)
    cluster = DSMCluster(
        n_nodes, protocol=protocol, seed=seed, namespace=namespace
    )

    def process(api, proc):
        rng = cluster.sim.derived_rng(f"x-{proc}")
        counter = 0
        for _ in range(ops):
            location = f"loc{rng.randrange(4)}"
            roll = rng.random()
            if roll < 0.15:
                api.discard(location)
                yield api.read(location)
            elif roll < 0.6:
                yield api.read(location)
            else:
                counter += 1
                yield api.write(location, f"n{proc}v{counter}")

    for proc in range(n_nodes):
        cluster.spawn(proc, process, proc)
    cluster.run()
    return cluster


class TestEveryProtocolMeetsItsModel:
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_runs_to_completion(self, protocol):
        cluster = run_workload(protocol)
        history = cluster.history()
        assert len(history) > 0

    @pytest.mark.parametrize("protocol", ("causal", "atomic", "li", "central"))
    def test_meets_causal_memory_at_least(self, protocol):
        # Strong memories are causal a fortiori.
        cluster = run_workload(protocol)
        assert check_causal(cluster.history()).ok

    @pytest.mark.parametrize("protocol", ("atomic", "li", "central"))
    def test_strong_protocols_are_sequential(self, protocol):
        cluster = run_workload(protocol)
        assert check_sequential(cluster.history(), want_witness=False).ok

    def test_broadcast_is_at_least_slow(self):
        cluster = run_workload("broadcast")
        assert check_slow(cluster.history()).ok


class TestEconomics:
    def test_causal_is_cheapest_consistent_memory(self):
        """Causal pays no invalidation traffic and keeps its caches, so
        on a mixed workload it undercuts every strongly consistent
        engine.  (Atomic vs central vs migrating ordering is workload-
        dependent — write-heavy sharing makes invalidations and
        ownership thrash expensive — so no order is asserted among
        them.)"""
        totals = {
            protocol: run_workload(protocol).stats.total
            for protocol in PROTOCOLS
        }
        for strong in ("atomic", "li", "central"):
            assert totals["causal"] < totals[strong], totals

    def test_broadcast_writes_cost_n_minus_1_each(self):
        cluster = run_workload("broadcast", n_nodes=4)
        writes = sum(node.stats.writes for node in cluster.nodes)
        assert cluster.stats.total == writes * 3

    def test_causal_blocking_no_worse_than_atomic(self):
        causal = run_workload("causal")
        atomic = run_workload("atomic")
        causal_blocked = sum(
            node.stats.blocked_time for node in causal.nodes
        )
        atomic_blocked = sum(
            node.stats.blocked_time for node in atomic.nodes
        )
        assert causal_blocked <= atomic_blocked

    def test_broadcast_reads_never_block(self):
        cluster = run_workload("broadcast")
        assert all(node.stats.blocked_time == 0 for node in cluster.nodes)


class TestClassifierOnProtocolOutputs:
    @pytest.mark.parametrize("protocol", ("atomic", "li", "central"))
    def test_strong_protocols_classify_sequential(self, protocol):
        cluster = run_workload(protocol, ops=8)
        assert classify(cluster.history()).strongest() == "sequential"

    def test_causal_protocol_classifies_causal_or_better(self):
        cluster = run_workload("causal", ops=8)
        assert classify(cluster.history()).strongest() in (
            "sequential", "causal",
        )

    def test_determinism_across_protocols(self):
        for protocol in PROTOCOLS:
            first = run_workload(protocol).history().to_text()
            second = run_workload(protocol).history().to_text()
            assert first == second, f"{protocol} is nondeterministic"
