"""Property-based tests for vector clocks (hypothesis)."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.clocks import CONCURRENT, EQUAL, GREATER, LESS, VectorClock

DIM = 4

components = st.lists(
    st.integers(min_value=0, max_value=50), min_size=DIM, max_size=DIM
)
clocks = components.map(VectorClock)


@given(clocks)
def test_order_is_irreflexive(clock):
    assert not clock < clock


@given(clocks, clocks)
def test_order_is_antisymmetric(a, b):
    assert not (a < b and b < a)


@given(clocks, clocks, clocks)
def test_order_is_transitive(a, b, c):
    if a < b and b < c:
        assert a < c


@given(clocks, clocks)
def test_exactly_one_of_lt_gt_concurrent_or_equal(a, b):
    relations = [a < b, b < a, a.concurrent_with(b), a == b]
    assert sum(relations) == 1


@given(clocks, clocks)
def test_update_is_least_upper_bound(a, b):
    merged = a.update(b)
    assert a <= merged and b <= merged
    # least: every other common upper bound dominates the merge
    assert all(
        merged[i] == max(a[i], b[i]) for i in range(DIM)
    )


@given(clocks, clocks)
def test_update_commutative(a, b):
    assert a.update(b) == b.update(a)


@given(clocks, clocks, clocks)
def test_update_associative(a, b, c):
    assert a.update(b).update(c) == a.update(b.update(c))


@given(clocks)
def test_update_idempotent(clock):
    assert clock.update(clock) == clock


@given(clocks, st.integers(min_value=0, max_value=DIM - 1))
def test_increment_strictly_increases(clock, index):
    assert clock < clock.increment(index)


@given(clocks, st.integers(min_value=0, max_value=DIM - 1))
def test_increment_changes_only_one_component(clock, index):
    bumped = clock.increment(index)
    assert bumped[index] == clock[index] + 1
    assert all(bumped[i] == clock[i] for i in range(DIM) if i != index)


@given(clocks, clocks)
def test_concurrency_is_symmetric(a, b):
    assert a.concurrent_with(b) == b.concurrent_with(a)


@given(clocks, clocks)
def test_hash_consistent_with_equality(a, b):
    if a == b:
        assert hash(a) == hash(b)


@given(clocks, clocks, st.integers(min_value=0, max_value=DIM - 1))
def test_merge_then_increment_dominates_both(a, b, index):
    """The owner's WRITE-handler stamp dominates writer and owner pasts."""
    merged = a.update(b).increment(index)
    assert a < merged or a <= merged
    assert b <= merged


# ----------------------------------------------------------------------
# compare(): the single-pass classifier must agree with the operators
# ----------------------------------------------------------------------
@given(clocks, clocks)
def test_compare_agrees_with_operators(a, b):
    verdict = a.compare(b)
    if a == b:
        assert verdict == EQUAL
    elif a < b:
        assert verdict == LESS
    elif b < a:
        assert verdict == GREATER
    else:
        assert a.concurrent_with(b)
        assert verdict == CONCURRENT


@given(clocks, clocks)
def test_compare_is_antisymmetric(a, b):
    flipped = {LESS: GREATER, GREATER: LESS, EQUAL: EQUAL, CONCURRENT: CONCURRENT}
    assert b.compare(a) == flipped[a.compare(b)]


@pytest.mark.parametrize("seed", range(25))
def test_compare_agrees_with_operators_seeded(seed):
    """The ISSUE acceptance sweep: 200 random pairs per seed, >=20 seeds."""
    rng = random.Random(seed)
    for _ in range(200):
        a = VectorClock([rng.randrange(0, 4) for _ in range(DIM)])
        b = VectorClock([rng.randrange(0, 4) for _ in range(DIM)])
        expected = (
            EQUAL if a == b
            else LESS if a < b
            else GREATER if a > b
            else CONCURRENT
        )
        assert a.compare(b) == expected
        assert a.concurrent_with(b) == (expected == CONCURRENT)


# ----------------------------------------------------------------------
# Hash stability across the fast-path constructors
# ----------------------------------------------------------------------
@given(clocks, clocks, st.integers(min_value=0, max_value=DIM - 1))
def test_hash_stable_across_update_increment_round_trips(a, b, index):
    """Derived clocks hash identically to freshly validated equals."""
    derived = a.update(b).increment(index)
    rebuilt = VectorClock(list(derived.components))
    assert derived == rebuilt
    assert hash(derived) == hash(rebuilt)
    # Hash is cached: repeated hashing never drifts.
    assert hash(derived) == hash(derived)
    again = VectorClock(list(a.components)).update(b).increment(index)
    assert hash(again) == hash(derived)
