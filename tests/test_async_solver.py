"""Unit tests for the asynchronous (chaotic relaxation) solver."""

import pytest

from repro.apps.async_solver import AsynchronousSolver, async_namespace
from repro.apps.linear_solver import LinearSystem, SynchronousSolver
from repro.errors import ReproError


class TestNamespace:
    def test_worker_owns_component_and_rows(self):
        ns = async_namespace(4)
        assert ns.owner("x[2]") == 2
        assert ns.owner("A[3][1]") == 3
        assert ns.owner("b[1]") == 1


class TestConvergence:
    def test_converges_with_fresh_reads(self):
        system = LinearSystem.random(4, seed=1)
        result = AsynchronousSolver(system, iterations=40, seed=1).run()
        assert result.max_error < 1e-8

    def test_converges_with_lazy_refresh(self):
        system = LinearSystem.random(4, seed=1)
        result = AsynchronousSolver(
            system, iterations=80, refresh=4, seed=1
        ).run()
        assert result.max_error < 1e-8

    def test_deterministic_per_seed(self):
        system = LinearSystem.random(4, seed=1)
        a = AsynchronousSolver(system, iterations=20, seed=3).run()
        b = AsynchronousSolver(system, iterations=20, seed=3).run()
        assert a.total_messages == b.total_messages
        assert a.max_error == b.max_error


class TestMessageEconomy:
    def test_fewer_messages_than_synchronous(self):
        system = LinearSystem.random(5, seed=2)
        sync = SynchronousSolver(
            system, protocol="causal", iterations=10, seed=1
        ).run()
        async_result = AsynchronousSolver(
            system, iterations=10, seed=1
        ).run()
        assert (
            async_result.steady_messages_per_processor
            < sync.steady_messages_per_processor
        )

    def test_refresh_reduces_messages(self):
        system = LinearSystem.random(5, seed=2)
        fresh = AsynchronousSolver(system, iterations=20, refresh=1, seed=1).run()
        lazy = AsynchronousSolver(system, iterations=20, refresh=5, seed=1).run()
        assert lazy.total_messages < fresh.total_messages

    def test_message_rate_matches_model(self):
        # 2 (n - 1) messages per worker per iteration at refresh=1,
        # ignoring the handful of startup writes.
        n = 5
        system = LinearSystem.random(n, seed=2)
        result = AsynchronousSolver(system, iterations=50, seed=1).run()
        assert result.steady_messages_per_processor == pytest.approx(
            2 * (n - 1), rel=0.1
        )


class TestValidation:
    def test_zero_refresh_rejected(self):
        system = LinearSystem.random(3, seed=1)
        with pytest.raises(ReproError):
            AsynchronousSolver(system, refresh=0)

    def test_unknown_protocol_rejected(self):
        system = LinearSystem.random(3, seed=1)
        with pytest.raises(ReproError):
            AsynchronousSolver(system, protocol="broadcast")
