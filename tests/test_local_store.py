"""Unit tests for the local memory M_i (owned entries, cache, sweeps)."""

import pytest

from repro.clocks import VectorClock
from repro.errors import MemoryError_
from repro.memory.local_store import INITIAL_WRITER, LocalStore, MemoryEntry
from repro.memory.namespace import Namespace


def make_store(node=0, n=2, namespace=None, initial=0):
    ns = namespace or Namespace.explicit(n, {"mine": node, "theirs": 1 - node})
    return LocalStore(node, ns, n_nodes=n, initial_value=initial)


def entry(value, components, writer=1):
    return MemoryEntry(value=value, stamp=VectorClock(components), writer=writer)


class TestOwnedLocations:
    def test_owned_location_synthesizes_initial_entry(self):
        store = make_store()
        initial = store.get("mine")
        assert initial.value == 0
        assert initial.writer == INITIAL_WRITER
        assert initial.stamp == VectorClock.zero(2)

    def test_custom_initial_value(self):
        store = make_store(initial="λ")
        assert store.get("mine").value == "λ"

    def test_unowned_absent_location_is_bottom(self):
        store = make_store()
        assert store.get("theirs") is None
        assert not store.is_valid("theirs")

    def test_owned_always_valid(self):
        store = make_store()
        assert store.is_valid("mine")
        assert "mine" in store

    def test_cannot_invalidate_owned(self):
        store = make_store()
        with pytest.raises(MemoryError_):
            store.invalidate("mine")

    def test_cannot_discard_owned(self):
        store = make_store()
        with pytest.raises(MemoryError_):
            store.discard("mine")


class TestCacheManagement:
    def test_put_and_get(self):
        store = make_store()
        store.put("theirs", entry(5, (0, 1)))
        assert store.get("theirs").value == 5
        assert store.is_valid("theirs")

    def test_cached_locations_excludes_owned(self):
        store = make_store()
        store.put("mine", entry(1, (1, 0), writer=0))
        store.put("theirs", entry(2, (0, 1)))
        assert store.cached_locations() == {"theirs"}
        assert store.owned_locations() == {"mine"}

    def test_invalidate_removes_entry(self):
        store = make_store()
        store.put("theirs", entry(5, (0, 1)))
        store.invalidate("theirs")
        assert store.get("theirs") is None
        assert store.invalidation_count == 1

    def test_invalidate_absent_is_noop(self):
        store = make_store()
        store.invalidate("theirs")
        assert store.invalidation_count == 0

    def test_discard_returns_presence(self):
        store = make_store()
        store.put("theirs", entry(5, (0, 1)))
        assert store.discard("theirs") is True
        assert store.discard("theirs") is False
        assert store.discard_count == 1

    def test_discard_all(self):
        ns = Namespace.explicit(2, {"a": 1, "b": 1, "mine": 0})
        store = LocalStore(0, ns, n_nodes=2)
        store.put("a", entry(1, (0, 1)))
        store.put("b", entry(2, (0, 2)))
        assert store.discard_all() == 2
        assert store.cached_locations() == set()


class TestInvalidationSweep:
    """Figure 4's `forall y in C_i : M_i[y].VT < VT' => invalidate`."""

    def make(self):
        ns = Namespace.explicit(
            2, {"old": 1, "new": 1, "conc": 1, "mine": 0},
        )
        store = LocalStore(0, ns, n_nodes=2)
        store.put("old", entry(1, (0, 1)))
        store.put("conc", entry(2, (3, 0), writer=0))
        return store

    def test_strictly_older_swept(self):
        store = self.make()
        swept = store.invalidate_older_than(VectorClock((1, 2)))
        assert swept == ["old"]
        assert store.get("old") is None

    def test_concurrent_survives(self):
        store = self.make()
        store.invalidate_older_than(VectorClock((1, 2)))
        assert store.get("conc") is not None

    def test_equal_stamp_survives(self):
        store = self.make()
        store.invalidate_older_than(VectorClock((0, 1)))
        assert store.get("old") is not None  # equal, not strictly less

    def test_owned_never_swept(self):
        store = self.make()
        store.put("mine", entry(9, (1, 0), writer=0))
        store.invalidate_older_than(VectorClock((9, 9)))
        assert store.get("mine").value == 9

    def test_keep_set_respected(self):
        store = self.make()
        store.invalidate_older_than(VectorClock((9, 9)), keep=["old"])
        assert store.get("old") is not None
        assert store.get("conc") is None

    def test_read_only_survives_sweep(self):
        ns = Namespace.explicit(2, {"A[0]": 1, "x": 1}, read_only=("A[",))
        store = LocalStore(0, ns, n_nodes=2)
        store.put("A[0]", entry(1.5, (0, 1)))
        store.put("x", entry(2, (0, 1)))
        swept = store.invalidate_older_than(VectorClock((5, 5)))
        assert swept == ["x"]
        assert store.get("A[0]") is not None


class TestPageGranularitySweep:
    def test_whole_unit_invalidated_together(self):
        ns = Namespace.array_paged(2, page_size=2)
        # force ownership away from node 0 for the page
        ns_explicit = Namespace(
            2,
            owner_fn=lambda unit: 1,
            unit_fn=ns._unit_fn,
        )
        store = LocalStore(0, ns_explicit, n_nodes=2)
        store.put("x[0]", entry(1, (0, 1)))   # old
        store.put("x[1]", entry(2, (5, 5)))   # fresh, same page
        store.put("y[0]", entry(3, (5, 5)))   # fresh, other page
        swept = store.invalidate_older_than(VectorClock((2, 2)))
        # the whole x page goes because x[0] was older
        assert set(swept) == {"x[0]", "x[1]"}
        assert store.get("y[0]") is not None

    def test_locations_in_unit(self):
        ns = Namespace(2, owner_fn=lambda u: 1,
                       unit_fn=lambda loc: loc.split("[")[0])
        store = LocalStore(0, ns, n_nodes=2)
        store.put("x[0]", entry(1, (0, 1)))
        store.put("x[1]", entry(2, (0, 2)))
        store.put("y[0]", entry(3, (0, 3)))
        assert sorted(store.locations_in_unit("x")) == ["x[0]", "x[1]"]


class TestEntry:
    def test_older_than_is_strict_vector_order(self):
        e = entry(1, (1, 1))
        assert e.older_than(VectorClock((2, 2)))
        assert not e.older_than(VectorClock((1, 1)))
        assert not e.older_than(VectorClock((0, 5)))
