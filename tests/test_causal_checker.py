"""Unit tests for the causal-memory correctness checker (Definition 2)."""

import pytest

from repro.checker.causal_checker import check_causal
from repro.checker.history import History


class TestPaperFigures:
    def test_figure1_is_causal(self, figure1):
        assert check_causal(figure1).ok

    def test_figure2_is_causal(self, figure2):
        result = check_causal(figure2)
        assert result.ok
        assert result.violations == []

    def test_figure3_is_not_causal(self, figure3):
        result = check_causal(figure3)
        assert not result.ok
        violating = [v.read.op_id for v in result.violations]
        assert (2, 1) in violating  # r3(x)2

    def test_figure3_violation_live_set(self, figure3):
        # 2 is not in alpha(r3(x)2): the read of x=5 served notice.
        result = check_causal(figure3)
        assert result.alpha(2, 1) == {5}

    def test_figure5_is_causal(self, figure5):
        assert check_causal(figure5).ok


class TestViolationsAndCycles:
    def test_stale_read_after_notice_is_violation(self):
        history = History.parse("""
            P1: w(x)1 w(x)2
            P2: r(x)2 r(x)1
        """)
        result = check_causal(history)
        assert not result.ok
        assert result.violations[0].read.op_id == (1, 1)

    def test_cycle_reported_not_raised(self):
        history = History.parse("P1: r(x)1 w(x)1")
        result = check_causal(history)
        assert not result.ok
        assert result.cycle is not None
        assert "cyclic" in result.explain()

    def test_reading_own_writes_in_order_is_causal(self):
        history = History.parse("P1: w(x)1 r(x)1 w(x)2 r(x)2")
        assert check_causal(history).ok

    def test_monotone_reads_of_concurrent_writes(self):
        # Different readers may order concurrent writes differently.
        history = History.parse("""
            P1: w(x)1
            P2: w(x)2
            P3: r(x)1 r(x)2
            P4: r(x)2 r(x)1
        """)
        assert check_causal(history).ok

    def test_flip_flop_between_concurrent_writes_is_violation(self):
        # But one reader flip-flopping back violates the notice rule.
        history = History.parse("""
            P1: w(x)1
            P2: w(x)2
            P3: r(x)1 r(x)2 r(x)1
        """)
        assert not check_causal(history).ok

    def test_empty_history_is_causal(self):
        assert check_causal(History.parse("P1: w(x)1")).ok


class TestResultAPI:
    def test_alpha_accessor(self, figure2):
        result = check_causal(figure2)
        assert result.alpha(0, 3) == {0, 5}

    def test_verdict_for_unknown_read(self, figure2):
        result = check_causal(figure2)
        with pytest.raises(KeyError):
            result.verdict_for(0, 0)  # a write, not a read

    def test_explain_lists_every_read(self, figure2):
        text = check_causal(figure2).explain()
        assert text.count("alpha") == len(figure2.reads())
        assert "execution is causal" in text

    def test_explain_flags_violations(self, figure3):
        text = check_causal(figure3).explain()
        assert "NOT causal" in text
        assert "VIOLATION" in text

    def test_verdict_explain_format(self, figure2):
        verdict = check_causal(figure2).verdict_for(0, 3)
        assert "alpha" in verdict.explain()
        assert "ok" in verdict.explain()
